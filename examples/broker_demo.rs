//! Serve a whole batch of wire negotiations through the session broker:
//! thousands of independent pairs multiplexed over framed in-memory
//! transports on a handful of worker threads — with one deliberately
//! corrupted session to show fault isolation, a rerun on a different
//! worker count to show the outcomes don't move, and a lossy rerun
//! under the ARQ reliability layer to show transient faults healing.
//!
//! ```sh
//! cargo run --release --example broker_demo
//! ```

use nexit::broker::{Broker, BrokerConfig, ReliableConfig, SessionSpec};
use nexit::core::NexitConfig;
use nexit::proto::FaultConfig;
use nexit::sim::experiments::broker::{synthetic_specs, SeededTableMapper, ALTS, FLOWS};

fn batch(pairs: usize) -> Vec<SessionSpec<'static>> {
    synthetic_specs(pairs, FLOWS, ALTS, 42)
}

fn main() {
    let pairs = 2_000;

    // Serve the batch on all available cores.
    let broker = Broker::new(BrokerConfig::default());
    let run = broker.run_pairs(batch(pairs));
    println!(
        "served {} sessions: {} completed, {} failed; {} frames / {} bytes on the wire, peak {} active per worker",
        run.stats.sessions,
        run.stats.completed,
        run.stats.failed,
        run.stats.frames,
        run.stats.bytes,
        run.stats.peak_active,
    );

    // Worker count is a throughput knob, never an outcome knob: rerun
    // the identical batch serially and compare every result.
    let serial = Broker::new(BrokerConfig::with_workers(1)).run_pairs(batch(pairs));
    let identical = run
        .results
        .iter()
        .zip(serial.results.iter())
        .all(|(x, y)| x == y);
    println!("serial rerun produced identical outcomes: {identical}");

    // Fault isolation: corrupt every frame of one session; it fails
    // alone, and its shard siblings finish with unchanged outcomes.
    let mut specs = batch(pairs);
    let victim = pairs / 2;
    specs[victim] = SessionSpec::honest(
        // Rebuild the victim's session, then break its links.
        nexit::core::SessionInput {
            flow_ids: (0..FLOWS).map(nexit::routing::FlowId::new).collect(),
            defaults: vec![nexit::topology::IcxId(0); FLOWS],
            volumes: vec![1.0; FLOWS],
            num_alternatives: ALTS,
        },
        nexit::routing::Assignment::uniform(FLOWS, nexit::topology::IcxId(0)),
        SeededTableMapper::new(FLOWS, ALTS, 42 ^ (2 * victim as u64)),
        SeededTableMapper::new(FLOWS, ALTS, 42 ^ (2 * victim as u64 + 1)),
        NexitConfig::win_win(),
    )
    .with_faults(
        FaultConfig {
            corrupt_chance: 1.0,
            ..FaultConfig::RELIABLE
        },
        7,
    );
    let faulty = Broker::new(BrokerConfig::with_workers(2)).run_pairs(specs);
    match faulty.results[victim].failure() {
        Some(failure) => println!("victim session failed alone -> {}", failure.error),
        None => println!("victim session survived (unexpected)"),
    }
    let siblings_unchanged = faulty
        .results
        .iter()
        .zip(run.results.iter())
        .enumerate()
        .filter(|(i, _)| *i != victim)
        .all(|(_, (f, r))| f.is_negotiated() && f == r);
    println!(
        "remaining {} sessions completed with unchanged outcomes: {}",
        pairs - 1,
        siblings_unchanged
    );

    // Fault recovery: the same batch over links dropping, corrupting,
    // duplicating and reordering 5% of frames each — but through the
    // ARQ layer, so every session heals and outcomes still match the
    // fault-free run exactly.
    let lossy = FaultConfig {
        drop_chance: 0.05,
        corrupt_chance: 0.05,
        duplicate_chance: 0.05,
        reorder_chance: 0.05,
    };
    let specs: Vec<_> = batch(pairs)
        .into_iter()
        .enumerate()
        .map(|(i, spec)| spec.with_faults(lossy, 1000 + i as u64))
        .collect();
    let reliable_config = BrokerConfig::default()
        .with_reliability(ReliableConfig::default())
        .with_degradation();
    let recovered = Broker::new(reliable_config).run_pairs(specs);
    let outcomes_unchanged = recovered
        .results
        .iter()
        .zip(run.results.iter())
        .all(|(f, r)| f == r);
    println!(
        "lossy rerun under ARQ: {} negotiated ({} recovered from faults, {} degraded, \
         {} retransmits); outcomes identical to fault-free run: {}",
        recovered.stats.completed,
        recovered.stats.recovered,
        recovered.stats.degraded,
        recovered.stats.retransmits,
        outcomes_unchanged
    );
}
