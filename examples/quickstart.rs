//! Quickstart: generate a universe, pick a peering pair, negotiate the
//! distance objective in both directions, and compare against default
//! (early-exit) and globally optimal routing.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nexit::baselines::optimal_distance;
use nexit::core::{NexitConfig, Party, SessionBuilder, Side};
use nexit::metrics::percent_gain;
use nexit::sim::twoway::{
    twoway_side_distance, twoway_total_distance, TwoWayDistanceMapper, TwoWaySession,
};
use nexit::sim::PairData;
use nexit::topology::{GeneratorConfig, TopologyGenerator};
use nexit::workload::WorkloadModel;

fn main() {
    // A deterministic 20-ISP universe (the paper-scale default is 65).
    let universe = TopologyGenerator::new(GeneratorConfig {
        num_isps: 20,
        num_mesh_isps: 2,
        ..GeneratorConfig::default()
    })
    .generate();
    let idx = universe.eligible_pairs(2, true)[2];
    let pair = &universe.pairs[idx];
    let a = &universe.isps[pair.isp_a.index()];
    let b = &universe.isps[pair.isp_b.index()];
    println!(
        "pair: {} ({} PoPs) <-> {} ({} PoPs), {} interconnections",
        a.name,
        a.num_pops(),
        b.name,
        b.num_pops(),
        pair.num_interconnections()
    );

    // Both traffic directions on the table, as the paper prescribes.
    let fwd = PairData::build(a, b, pair.clone(), WorkloadModel::Identical);
    let rev = PairData::build(b, a, fwd.mirrored_pair(), WorkloadModel::Identical);
    let session = TwoWaySession::build(&fwd, &rev);
    println!("flows on the table: {}", session.input.len());

    // Negotiate: each ISP maps its own internal distance to opaque
    // preference classes; neither sees the other's kilometres.
    let outcome = SessionBuilder::new()
        .input(session.input.clone())
        .default_assignment(session.default.clone())
        .config(NexitConfig::win_win())
        .party_a(Party::honest(
            a.name.clone(),
            TwoWayDistanceMapper::new(Side::A, &fwd.flows, &rev.flows, session.n_fwd),
        ))
        .party_b(Party::honest(
            b.name.clone(),
            TwoWayDistanceMapper::new(Side::B, &fwd.flows, &rev.flows, session.n_fwd),
        ))
        .run()
        .expect("valid session");
    let (neg_fwd, neg_rev) = session.split(&outcome.assignment);

    // Compare default / negotiated / optimal.
    let d = twoway_total_distance(&fwd.flows, &rev.flows, &fwd.default, &rev.default);
    let n = twoway_total_distance(&fwd.flows, &rev.flows, &neg_fwd, &neg_rev);
    let opt_f = optimal_distance(&fwd.flows);
    let opt_r = optimal_distance(&rev.flows);
    let o = twoway_total_distance(&fwd.flows, &rev.flows, &opt_f, &opt_r);
    println!(
        "total distance gain: negotiated {:+.2}%  optimal {:+.2}%",
        percent_gain(d, n),
        percent_gain(d, o)
    );
    for side in [Side::A, Side::B] {
        let ds = twoway_side_distance(side, &fwd.flows, &rev.flows, &fwd.default, &rev.default);
        let ns = twoway_side_distance(side, &fwd.flows, &rev.flows, &neg_fwd, &neg_rev);
        println!(
            "  {side}: individual gain {:+.2}% (win-win: never negative)",
            percent_gain(ds, ns)
        );
    }
    println!(
        "rounds: {}, flows moved off default: {}",
        outcome.transcript.len(),
        outcome.assignment.diff(&session.default).len()
    );
}
