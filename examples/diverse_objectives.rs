//! §5.3: negotiation between ISPs with *different* objectives. The
//! upstream fights overload (bandwidth objective) while the downstream
//! shortens paths (distance objective) — opaque preference classes let
//! them trade without sharing metrics or even metric *types*.
//!
//! ```sh
//! cargo run --release --example diverse_objectives
//! ```

use nexit::core::{BandwidthMapper, DistanceMapper, NexitConfig, Party, SessionBuilder, Side};
use nexit::metrics::percent_gain;
use nexit::sim::experiments::bandwidth::failure_scenarios;
use nexit::sim::ExpConfig;
use nexit::topology::{GeneratorConfig, TopologyGenerator};
use nexit::workload::CapacityModel;

fn main() {
    let universe = TopologyGenerator::new(GeneratorConfig {
        num_isps: 20,
        num_mesh_isps: 2,
        ..GeneratorConfig::default()
    })
    .generate();
    let cfg = ExpConfig::smoke();
    let eligible = universe.eligible_pairs(3, false);
    let scenario_pair = eligible[0];
    let scenarios = failure_scenarios(&universe, scenario_pair, &cfg, &CapacityModel::default());
    let scenario = &scenarios[0];
    println!(
        "failure scenario: {} impacted flows, {} surviving interconnections",
        scenario.impacted.len(),
        scenario.data.pair.num_interconnections()
    );

    let input = scenario.session_input();
    // Upstream: avoid overload. Downstream: shorten its carry distance.
    let outcome = SessionBuilder::new()
        .input(input)
        .default_assignment(scenario.data.default.clone())
        .config(NexitConfig::win_win_bandwidth())
        .party_a(Party::honest(
            "upstream (bandwidth)",
            BandwidthMapper::new(
                Side::A,
                &scenario.data.flows,
                &scenario.data.paths,
                &scenario.caps_up,
            ),
        ))
        .party_b(Party::honest(
            "downstream (distance)",
            DistanceMapper::new(Side::B, &scenario.data.flows),
        ))
        .run()
        .expect("valid session");

    let (def_up, _) = scenario.default_mels;
    let (neg_up, _) = scenario.mels(&outcome.assignment);
    println!("upstream max-excess-load: default {def_up:.3} -> negotiated {neg_up:.3}");

    let down_km = |asg: &nexit::routing::Assignment| -> f64 {
        scenario
            .impacted
            .iter()
            .map(|&f| {
                scenario.data.flows.flows[f.index()].volume
                    * scenario.data.flows.metrics[f.index()].down_km[asg.choice(f).index()]
            })
            .sum()
    };
    let d = down_km(&scenario.data.default);
    let n = down_km(&outcome.assignment);
    println!(
        "downstream carry distance on impacted flows: {:.0} km -> {:.0} km ({:+.1}%)",
        d,
        n,
        -percent_gain(d, n)
    );
    println!(
        "both objectives improved through opaque classes alone: gains (pref units) up={} down={}",
        outcome.gain_a, outcome.gain_b
    );
}
