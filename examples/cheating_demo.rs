//! §5.4: lying about preferences backfires. One ISP inflates the class of
//! its favorite alternative for every flow (with perfect knowledge of the
//! other's list). The negotiation still terminates and the honest ISP is
//! protected, but the *cheater's own* realized gain usually drops too.
//!
//! ```sh
//! cargo run --release --example cheating_demo
//! ```

use nexit::core::{DisclosurePolicy, NexitConfig, Party, SessionBuilder, Side};
use nexit::metrics::percent_gain;
use nexit::sim::experiments::distance::build_pair_run;
use nexit::sim::twoway::{twoway_side_distance, twoway_total_distance, TwoWayDistanceMapper};
use nexit::topology::{GeneratorConfig, TopologyGenerator};

fn main() {
    let universe = TopologyGenerator::new(GeneratorConfig {
        num_isps: 20,
        num_mesh_isps: 2,
        ..GeneratorConfig::default()
    })
    .generate();
    println!(
        "{:>6} {:>18} {:>18} {:>12}",
        "pair", "truthful (A/B %)", "cheating (A/B %)", "cheater delta"
    );
    for &idx in universe.eligible_pairs(2, true).iter().take(8) {
        let run = build_pair_run(&universe, idx);
        let session = &run.session;
        let mapper =
            |side| TwoWayDistanceMapper::new(side, &run.fwd.flows, &run.rev.flows, session.n_fwd);
        let side_gain = |assignment: &nexit::routing::Assignment, s: Side| {
            let (f, r) = session.split(assignment);
            let d = twoway_side_distance(
                s,
                &run.fwd.flows,
                &run.rev.flows,
                &run.fwd.default,
                &run.rev.default,
            );
            let n = twoway_side_distance(s, &run.fwd.flows, &run.rev.flows, &f, &r);
            percent_gain(d, n)
        };

        let run_with = |party_b: Party<'_>| {
            SessionBuilder::new()
                .input(session.input.clone())
                .default_assignment(session.default.clone())
                .config(NexitConfig::win_win())
                .party_a(Party::honest("A", mapper(Side::A)))
                .party_b(party_b)
                .run()
                .expect("valid session")
        };
        let truthful = run_with(Party::honest("B", mapper(Side::B)));

        // ISP-B cheats with the paper's inflate-best strategy.
        let cheated = run_with(Party::cheating(
            "B",
            mapper(Side::B),
            DisclosurePolicy::InflateBest,
        ));

        let (ta, tb) = (
            side_gain(&truthful.assignment, Side::A),
            side_gain(&truthful.assignment, Side::B),
        );
        let (ca, cb) = (
            side_gain(&cheated.assignment, Side::A),
            side_gain(&cheated.assignment, Side::B),
        );
        println!(
            "{:>6} {:>8.2}/{:<8.2} {:>8.2}/{:<8.2} {:>+11.2}%",
            idx,
            ta,
            tb,
            ca,
            cb,
            cb - tb
        );
        let _ = twoway_total_distance(
            &run.fwd.flows,
            &run.rev.flows,
            &run.fwd.default,
            &run.rev.default,
        );
    }
    println!(
        "\n(cheater delta < 0 means lying made the cheater worse off — the paper's disincentive)"
    );
}
