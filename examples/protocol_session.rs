//! Drive a full negotiation over the *wire protocol*: two sans-io agents
//! exchange framed binary messages (Hello, FlowAnnounce, PrefList,
//! Propose/Response, Bye) over an in-memory link — then the same session
//! again with each agent on its own thread, as two negotiation-agent
//! daemons would run (paper §6, Figure 12).
//!
//! ```sh
//! cargo run --release --example protocol_session
//! ```

use nexit::core::{DisclosurePolicy, DistanceMapper, NexitConfig, SessionInput, Side};
use nexit::proto::{run_session, run_session_threaded, Agent, FaultConfig, FaultyLink};
use nexit::routing::{Assignment, FlowId, PairFlows, ShortestPaths};
use nexit::sim::scenarios::ladder;
use nexit::topology::PairView;

fn build_session() -> (SessionInput, Assignment, PairFlows) {
    let s = ladder(400.0);
    let view = PairView::new(&s.a, &s.b, &s.pair);
    let sp_a = ShortestPaths::compute(&s.a);
    let sp_b = ShortestPaths::compute(&s.b);
    let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
    let default = Assignment::early_exit(&view, &sp_a, &flows);
    let input = SessionInput {
        flow_ids: (0..flows.len()).map(FlowId::new).collect(),
        defaults: default.choices().to_vec(),
        volumes: flows.flows.iter().map(|f| f.volume).collect(),
        num_alternatives: s.pair.num_interconnections(),
    };
    (input, default, flows)
}

fn main() {
    let (input, default, flows) = build_session();
    let config = NexitConfig::win_win();

    // Synchronous in-memory session.
    let mut agent_a = Agent::new(
        Side::A,
        "ISP-A agent",
        input.clone(),
        default.clone(),
        DistanceMapper::new(Side::A, &flows),
        DisclosurePolicy::Truthful,
        config,
    )
    .expect("agent A");
    let mut agent_b = Agent::new(
        Side::B,
        "ISP-B agent",
        input.clone(),
        default.clone(),
        DistanceMapper::new(Side::B, &flows),
        DisclosurePolicy::Truthful,
        config,
    )
    .expect("agent B");
    let mut link_ab = FaultyLink::new(FaultConfig::RELIABLE, 1);
    let mut link_ba = FaultyLink::new(FaultConfig::RELIABLE, 2);
    let (out_a, out_b) =
        run_session(&mut agent_a, &mut agent_b, &mut link_ab, &mut link_ba).expect("session");
    println!(
        "in-memory session: {} rounds, gains A={} B={}, assignments agree: {}",
        out_a.rounds,
        out_a.my_gain,
        out_b.my_gain,
        out_a.assignment == out_b.assignment
    );

    // The same session, threaded — 'static mappers required, so fresh
    // flow data is leaked for the demo's lifetime.
    let (input, default, flows2) = build_session();
    let flows_static: &'static PairFlows = Box::leak(Box::new(flows2));
    let agent_a = Agent::new(
        Side::A,
        "ISP-A daemon",
        input.clone(),
        default.clone(),
        DistanceMapper::new(Side::A, flows_static),
        DisclosurePolicy::Truthful,
        config,
    )
    .expect("agent A");
    let agent_b = Agent::new(
        Side::B,
        "ISP-B daemon",
        input,
        default,
        DistanceMapper::new(Side::B, flows_static),
        DisclosurePolicy::Truthful,
        config,
    )
    .expect("agent B");
    let (ta, tb) = run_session_threaded(agent_a, agent_b).expect("threaded session");
    println!(
        "threaded session:  {} rounds, gains A={} B={}, same outcome: {}",
        ta.rounds,
        ta.my_gain,
        tb.my_gain,
        ta.assignment == out_a.assignment && tb.assignment == out_b.assignment
    );

    // Corruption on the wire is detected, not silently accepted.
    let (input, default, flows) = build_session();
    let mut agent_a = Agent::new(
        Side::A,
        "A",
        input.clone(),
        default.clone(),
        DistanceMapper::new(Side::A, &flows),
        DisclosurePolicy::Truthful,
        config,
    )
    .unwrap();
    let mut agent_b = Agent::new(
        Side::B,
        "B",
        input,
        default,
        DistanceMapper::new(Side::B, &flows),
        DisclosurePolicy::Truthful,
        config,
    )
    .unwrap();
    let mut bad_ab = FaultyLink::new(
        FaultConfig {
            corrupt_chance: 0.5,
            ..FaultConfig::RELIABLE
        },
        7,
    );
    let mut ok_ba = FaultyLink::new(FaultConfig::RELIABLE, 8);
    match run_session(&mut agent_a, &mut agent_b, &mut bad_ab, &mut ok_ba) {
        Ok(_) => println!("faulty link: session survived (no frame happened to be corrupted)"),
        Err(e) => println!("faulty link: cleanly detected -> {e}"),
    }
}
