//! The paper's Figure 2 scenario: an interconnection fails, selfish
//! re-routing oscillates, negotiation finds the stable mutually
//! acceptable solution (Figure 2e) that BGP cannot discover.
//!
//! ```sh
//! cargo run --release --example failure_negotiation
//! ```

use nexit::core::BandwidthMapper;
use nexit::core::{NexitConfig, Party, SessionBuilder, SessionInput, Side};
use nexit::routing::{Assignment, FlowId, PairFlows, ShortestPaths};
use nexit::sim::scenarios::{icx, ladder};
use nexit::topology::PairView;
use nexit::workload::{assign_capacities, link_loads, CapacityModel, PathTable};

fn main() {
    // Two ISPs joined by top/middle/bottom interconnections (Fig. 2a).
    let s = ladder(500.0);
    let view = PairView::new(&s.a, &s.b, &s.pair);
    let sp_a = ShortestPaths::compute(&s.a);
    let sp_b = ShortestPaths::compute(&s.b);
    let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
    let paths = PathTable::build(&view, &sp_a, &sp_b, &flows);
    let default = Assignment::early_exit(&view, &sp_a, &flows);

    // Capacities matched to the healthy traffic (paper §5.2).
    let pre = link_loads(&view, &paths, &flows, &default);
    let caps_a = assign_capacities(&CapacityModel::default(), &pre.up);
    let caps_b = assign_capacities(&CapacityModel::default(), &pre.down);

    // The middle interconnection fails.
    let (reduced, _) = s.pair.without_interconnection(icx::MIDDLE);
    println!(
        "middle interconnection failed; {} remain",
        reduced.num_interconnections()
    );
    let rview = PairView::new(&s.a, &s.b, &reduced);
    let rflows = PairFlows::build(&rview, &sp_a, &sp_b, |_, _| 1.0);
    let rpaths = PathTable::build(&rview, &sp_a, &sp_b, &rflows);
    let rdefault = Assignment::early_exit(&rview, &sp_a, &rflows);

    // Flows that used the failed middle link are on the table.
    let impacted: Vec<FlowId> = default
        .iter()
        .filter(|(_, c)| *c == icx::MIDDLE)
        .map(|(f, _)| f)
        .collect();
    println!("impacted flows: {}", impacted.len());
    let input = SessionInput {
        defaults: impacted.iter().map(|&f| rdefault.choice(f)).collect(),
        volumes: impacted
            .iter()
            .map(|&f| rflows.flows[f.index()].volume)
            .collect(),
        flow_ids: impacted,
        num_alternatives: reduced.num_interconnections(),
    };

    // Default (hot-potato) response overloads links; negotiation with
    // bandwidth preferences finds the balanced split of Figure 2e.
    let loads_def = link_loads(&rview, &rpaths, &rflows, &rdefault);
    println!(
        "default after failure: max load A {:.2} / B {:.2}",
        nexit::metrics::mel(&loads_def.up, &caps_a),
        nexit::metrics::mel(&loads_def.down, &caps_b)
    );

    let outcome = SessionBuilder::new()
        .input(input)
        .default_assignment(rdefault.clone())
        .config(NexitConfig::win_win_bandwidth())
        .party_a(Party::honest(
            "ISP-A",
            BandwidthMapper::new(Side::A, &rflows, &rpaths, &caps_a),
        ))
        .party_b(Party::honest(
            "ISP-B",
            BandwidthMapper::new(Side::B, &rflows, &rpaths, &caps_b),
        ))
        .run()
        .expect("valid session");
    let loads_neg = link_loads(&rview, &rpaths, &rflows, &outcome.assignment);
    println!(
        "negotiated:            max load A {:.2} / B {:.2}  (rounds: {}, reassignments: {})",
        nexit::metrics::mel(&loads_neg.up, &caps_a),
        nexit::metrics::mel(&loads_neg.down, &caps_b),
        outcome.transcript.len(),
        outcome.reassignments,
    );
    for (flow, choice) in outcome
        .assignment
        .diff(&rdefault)
        .iter()
        .map(|&f| (f, outcome.assignment.choice(f)))
    {
        println!("  flow {flow} re-routed to interconnection {choice:?}");
    }
}
