//! # Nexit — negotiation-based routing between neighboring ISPs
//!
//! A comprehensive reproduction of *"Negotiation-Based Routing Between
//! Neighboring ISPs"* (Mahajan, Wetherall, Anderson — NSDI 2005) as a
//! Rust workspace. This facade crate re-exports the public API of every
//! member crate; depend on it for the one-stop experience or on
//! individual crates for narrower builds.
//!
//! ## Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`topology`] | PoP-level ISP topologies, Rocketfuel-like synthesis, ISP pairs |
//! | [`routing`] | intradomain shortest paths, early/late exit, flows, assignments |
//! | [`workload`] | gravity traffic matrices, link loads, capacity models |
//! | [`metrics`] | distance gains, MEL, Fortz–Thorup cost |
//! | [`lp`] | dense two-phase simplex (substrate for the bandwidth optimum) |
//! | [`baselines`] | global optima, flow filters, grouped & unilateral strategies |
//! | [`core`] | **the Nexit negotiation core**: the sans-IO `NegotiationMachine`, the in-process driver, preferences, policies, cheating |
//! | [`proto`] | wire protocol + sans-io negotiation agents (codec shells around the same machine) |
//! | [`broker`] | multiplexed session broker: thousands of concurrent wire negotiations on M workers |
//! | [`sim`] | the full experiment harness reproducing every paper figure |
//!
//! Every turn/propose/accept/stop decision lives in exactly one place —
//! [`core::machine::NegotiationMachine`](machine). The in-process driver
//! ([`core::negotiate`] / [`core::SessionBuilder`]) and the wire agents
//! ([`proto::Agent`]) are thin shells around it, so simulated and
//! deployed negotiations agree by construction.
//!
//! [machine]: crate::core::machine::NegotiationMachine
//!
//! ## Quickstart
//!
//! ```
//! use nexit::topology::{GeneratorConfig, TopologyGenerator};
//! use nexit::sim::PairData;
//! use nexit::sim::twoway::{TwoWayDistanceMapper, TwoWaySession};
//! use nexit::core::{NexitConfig, Party, SessionBuilder, Side};
//! use nexit::workload::WorkloadModel;
//!
//! // Generate a small universe and pick a peering pair.
//! let universe = TopologyGenerator::new(GeneratorConfig {
//!     num_isps: 10,
//!     num_mesh_isps: 0,
//!     seed: 42,
//!     ..GeneratorConfig::default()
//! })
//! .generate();
//! let idx = universe.eligible_pairs(2, true)[0];
//! let pair = &universe.pairs[idx];
//! let a = &universe.isps[pair.isp_a.index()];
//! let b = &universe.isps[pair.isp_b.index()];
//!
//! // Build both directions and a combined negotiation session.
//! let fwd = PairData::build(a, b, pair.clone(), WorkloadModel::Identical);
//! let rev = PairData::build(b, a, fwd.mirrored_pair(), WorkloadModel::Identical);
//! let session = TwoWaySession::build(&fwd, &rev);
//!
//! // Negotiate with the distance objective on both sides.
//! let outcome = SessionBuilder::new()
//!     .input(session.input.clone())
//!     .default_assignment(session.default.clone())
//!     .config(NexitConfig::win_win())
//!     .party_a(Party::honest(
//!         "ISP-A",
//!         TwoWayDistanceMapper::new(Side::A, &fwd.flows, &rev.flows, session.n_fwd),
//!     ))
//!     .party_b(Party::honest(
//!         "ISP-B",
//!         TwoWayDistanceMapper::new(Side::B, &fwd.flows, &rev.flows, session.n_fwd),
//!     ))
//!     .run()
//!     .expect("structurally valid session");
//! assert!(outcome.gain_a >= 0 && outcome.gain_b >= 0, "win-win");
//! ```

pub use nexit_baselines as baselines;
pub use nexit_broker as broker;
pub use nexit_core as core;
pub use nexit_lp as lp;
pub use nexit_metrics as metrics;
pub use nexit_proto as proto;
pub use nexit_routing as routing;
pub use nexit_sim as sim;
pub use nexit_topology as topology;
pub use nexit_workload as workload;
