//! End-to-end checks of the paper's headline claims on a small universe.

use nexit::baselines::optimal_distance;
use nexit::core::{negotiate, NexitConfig, Party, Side};
use nexit::metrics::percent_gain;
use nexit::sim::experiments::{bandwidth, distance};
use nexit::sim::twoway::{twoway_side_distance, twoway_total_distance, TwoWayDistanceMapper};
use nexit::sim::ExpConfig;
use nexit::topology::{GeneratorConfig, TopologyGenerator, Universe};
use nexit::workload::CapacityModel;

fn small_universe() -> Universe {
    TopologyGenerator::new(GeneratorConfig {
        num_isps: 16,
        num_mesh_isps: 2,
        ..GeneratorConfig::default()
    })
    .generate()
}

#[test]
fn negotiation_is_win_win_on_every_pair() {
    // Paper §5.1 / Fig. 4b: "individual ISPs do not lose with negotiated
    // routing".
    let u = small_universe();
    for &idx in u.eligible_pairs(2, true).iter().take(8) {
        let run = distance::build_pair_run(&u, idx);
        let session = &run.session;
        let mut a = Party::honest(
            "A",
            TwoWayDistanceMapper::new(Side::A, &run.fwd.flows, &run.rev.flows, session.n_fwd),
        );
        let mut b = Party::honest(
            "B",
            TwoWayDistanceMapper::new(Side::B, &run.fwd.flows, &run.rev.flows, session.n_fwd),
        );
        let out = negotiate(
            &session.input,
            &session.default,
            &mut a,
            &mut b,
            &NexitConfig::win_win(),
        );
        let (f, r) = session.split(&out.assignment);
        for side in [Side::A, Side::B] {
            let d = twoway_side_distance(
                side,
                &run.fwd.flows,
                &run.rev.flows,
                &run.fwd.default,
                &run.rev.default,
            );
            let n = twoway_side_distance(side, &run.fwd.flows, &run.rev.flows, &f, &r);
            let gain = percent_gain(d, n);
            assert!(
                gain >= -1e-9,
                "pair {idx}: {side} lost {gain:.3}% under negotiation"
            );
        }
    }
}

#[test]
fn negotiated_close_to_optimal_distance() {
    // Paper Fig. 4a: negotiated total gain tracks the global optimum.
    let u = small_universe();
    let mut captured = 0.0;
    let mut possible = 0.0;
    for &idx in u.eligible_pairs(2, true).iter().take(8) {
        let run = distance::build_pair_run(&u, idx);
        let session = &run.session;
        let mut a = Party::honest(
            "A",
            TwoWayDistanceMapper::new(Side::A, &run.fwd.flows, &run.rev.flows, session.n_fwd),
        );
        let mut b = Party::honest(
            "B",
            TwoWayDistanceMapper::new(Side::B, &run.fwd.flows, &run.rev.flows, session.n_fwd),
        );
        let out = negotiate(
            &session.input,
            &session.default,
            &mut a,
            &mut b,
            &NexitConfig::win_win(),
        );
        let (f, r) = session.split(&out.assignment);
        let d = twoway_total_distance(
            &run.fwd.flows,
            &run.rev.flows,
            &run.fwd.default,
            &run.rev.default,
        );
        let n = twoway_total_distance(&run.fwd.flows, &run.rev.flows, &f, &r);
        let o = twoway_total_distance(
            &run.fwd.flows,
            &run.rev.flows,
            &optimal_distance(&run.fwd.flows),
            &optimal_distance(&run.rev.flows),
        );
        captured += d - n;
        possible += d - o;
    }
    assert!(possible > 0.0, "degenerate universe");
    let share = captured / possible;
    assert!(
        share > 0.7,
        "negotiation captured only {:.0}% of the optimal gain",
        100.0 * share
    );
}

#[test]
fn negotiated_mel_close_to_optimal() {
    // Paper Fig. 7: negotiated MEL tracks the fractional optimum while
    // default routing overshoots.
    let u = small_universe();
    let cfg = ExpConfig::smoke();
    let mut neg_ratios = Vec::new();
    let mut def_ratios = Vec::new();
    for &idx in u.eligible_pairs(3, false).iter().take(4) {
        for scenario in bandwidth::failure_scenarios(&u, idx, &cfg, &CapacityModel::default()) {
            let Ok(opt) = scenario.optimum(cfg.max_lp_variables) else {
                continue;
            };
            let opt_up = opt.side_mel(&scenario.caps_up, true);
            if opt_up < 1e-9 {
                continue;
            }
            let negotiated = scenario.negotiate_bandwidth();
            let (neg_up, _) = scenario.mels(&negotiated);
            neg_ratios.push(neg_up / opt_up);
            def_ratios.push(scenario.default_mels.0 / opt_up);
        }
    }
    assert!(!neg_ratios.is_empty(), "no scenarios evaluated");
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&neg_ratios) <= mean(&def_ratios) + 1e-9,
        "negotiation should not be worse than default: {} vs {}",
        mean(&neg_ratios),
        mean(&def_ratios)
    );
    // Negotiated must sit near the optimum on average (paper: "most of
    // the MELs are one").
    assert!(
        mean(&neg_ratios) < 1.8,
        "negotiated MEL ratio too high: {}",
        mean(&neg_ratios)
    );
}

#[test]
fn fig3_reassignment_walkthrough_holds_end_to_end() {
    // The §4.1 worked example through the real topology machinery: see
    // also the unit test in the engine; here the ladder scenario drives
    // the bandwidth mapper and reassignment discovers the f3-top move.
    use nexit::core::BandwidthMapper;
    use nexit::routing::{Assignment, FlowId, PairFlows, ShortestPaths};
    use nexit::sim::scenarios::{icx, ladder};
    use nexit::topology::PairView;
    use nexit::workload::{assign_capacities, link_loads, PathTable};

    let s = ladder(500.0);
    let view = PairView::new(&s.a, &s.b, &s.pair);
    let sp_a = ShortestPaths::compute(&s.a);
    let sp_b = ShortestPaths::compute(&s.b);
    let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
    let paths = PathTable::build(&view, &sp_a, &sp_b, &flows);
    let default = Assignment::early_exit(&view, &sp_a, &flows);
    let pre = link_loads(&view, &paths, &flows, &default);
    let caps_a = assign_capacities(&CapacityModel::default(), &pre.up);
    let caps_b = assign_capacities(&CapacityModel::default(), &pre.down);

    let (reduced, _) = s.pair.without_interconnection(icx::MIDDLE);
    let rview = PairView::new(&s.a, &s.b, &reduced);
    let rflows = PairFlows::build(&rview, &sp_a, &sp_b, |_, _| 1.0);
    let rpaths = PathTable::build(&rview, &sp_a, &sp_b, &rflows);
    let rdefault = Assignment::early_exit(&rview, &sp_a, &rflows);
    let impacted: Vec<FlowId> = default
        .iter()
        .filter(|(_, c)| *c == icx::MIDDLE)
        .map(|(f, _)| f)
        .collect();
    assert!(!impacted.is_empty());
    let input = nexit::core::SessionInput {
        defaults: impacted.iter().map(|&f| rdefault.choice(f)).collect(),
        volumes: impacted
            .iter()
            .map(|&f| rflows.flows[f.index()].volume)
            .collect(),
        flow_ids: impacted,
        num_alternatives: reduced.num_interconnections(),
    };
    let mut a = Party::honest(
        "A",
        BandwidthMapper::new(Side::A, &rflows, &rpaths, &caps_a),
    );
    let mut b = Party::honest(
        "B",
        BandwidthMapper::new(Side::B, &rflows, &rpaths, &caps_b),
    );
    let out = negotiate(
        &input,
        &rdefault,
        &mut a,
        &mut b,
        &NexitConfig::win_win_bandwidth(),
    );
    // Negotiation must strictly reduce the worst overload vs hot-potato.
    let before = link_loads(&rview, &rpaths, &rflows, &rdefault);
    let after = link_loads(&rview, &rpaths, &rflows, &out.assignment);
    let mel = |l: &nexit::workload::LinkLoads| {
        nexit::metrics::mel(&l.up, &caps_a).max(nexit::metrics::mel(&l.down, &caps_b))
    };
    assert!(
        mel(&after) < mel(&before) - 1e-9,
        "negotiation failed to relieve the overload: {} -> {}",
        mel(&before),
        mel(&after)
    );
}
