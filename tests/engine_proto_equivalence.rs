//! Cross-crate invariant: the in-process engine and the wire-protocol
//! agents must reach identical outcomes from identical inputs — they
//! share the selection logic (`nexit_core::selection`) by construction,
//! and this test pins the equivalence end to end, bytes included.

use nexit::core::{
    negotiate, DisclosurePolicy, DistanceMapper, NexitConfig, Party, SessionInput, Side,
};
use nexit::proto::{run_session, Agent, FaultyLink};
use nexit::routing::{Assignment, FlowId, PairFlows, ShortestPaths};
use nexit::topology::{GeneratorConfig, PairView, TopologyGenerator};
use nexit::workload::WorkloadModel;

fn directed_session(
    seed: u64,
) -> (
    SessionInput,
    Assignment,
    nexit::topology::Universe,
    usize,
) {
    let u = TopologyGenerator::new(GeneratorConfig {
        num_isps: 12,
        num_mesh_isps: 0,
        seed,
        ..GeneratorConfig::default()
    })
    .generate();
    let idx = u.eligible_pairs(2, true)[0];
    (SessionInput { flow_ids: vec![], defaults: vec![], volumes: vec![], num_alternatives: 1 }, Assignment::from_choices(vec![]), u, idx)
}

fn run_both(seed: u64, config: NexitConfig) {
    let (_, _, u, idx) = directed_session(seed);
    let pair = &u.pairs[idx];
    let a = &u.isps[pair.isp_a.index()];
    let b = &u.isps[pair.isp_b.index()];
    let view = PairView::new(a, b, pair);
    let sp_a = ShortestPaths::compute(a);
    let sp_b = ShortestPaths::compute(b);
    let vol = nexit::workload::volume_fn(WorkloadModel::Identical, a, b);
    let flows = PairFlows::build(&view, &sp_a, &sp_b, vol);
    let default = Assignment::early_exit(&view, &sp_a, &flows);
    let input = SessionInput {
        flow_ids: (0..flows.len()).map(FlowId::new).collect(),
        defaults: default.choices().to_vec(),
        volumes: flows.flows.iter().map(|f| f.volume).collect(),
        num_alternatives: pair.num_interconnections(),
    };

    // Engine outcome.
    let mut pa = Party::honest("A", DistanceMapper::new(Side::A, &flows));
    let mut pb = Party::honest("B", DistanceMapper::new(Side::B, &flows));
    let engine = negotiate(&input, &default, &mut pa, &mut pb, &config);

    // Wire-protocol outcome over framed binary messages.
    let mut agent_a = Agent::new(
        Side::A,
        "A",
        input.clone(),
        default.clone(),
        DistanceMapper::new(Side::A, &flows),
        DisclosurePolicy::Truthful,
        config,
    )
    .unwrap();
    let mut agent_b = Agent::new(
        Side::B,
        "B",
        input,
        default,
        DistanceMapper::new(Side::B, &flows),
        DisclosurePolicy::Truthful,
        config,
    )
    .unwrap();
    let mut ab = FaultyLink::reliable();
    let mut ba = FaultyLink::reliable();
    let (out_a, out_b) = run_session(&mut agent_a, &mut agent_b, &mut ab, &mut ba).unwrap();

    assert_eq!(
        engine.assignment.choices(),
        out_a.assignment.choices(),
        "engine and protocol agents disagree (seed {seed})"
    );
    assert_eq!(out_a.assignment, out_b.assignment, "agents disagree with each other");
    assert_eq!(engine.gain_a, out_a.my_gain, "A gain mismatch");
    assert_eq!(engine.gain_b, out_b.my_gain, "B gain mismatch");
}

#[test]
fn equivalence_default_config() {
    for seed in [1, 2, 3] {
        run_both(seed, NexitConfig::default());
    }
}

#[test]
fn equivalence_win_win_config() {
    for seed in [4, 5, 6] {
        run_both(seed, NexitConfig::win_win());
    }
}

#[test]
fn equivalence_with_cheating_downstream() {
    // A cheating B (InflateBest discloses second in both settings).
    let u = TopologyGenerator::new(GeneratorConfig {
        num_isps: 12,
        num_mesh_isps: 0,
        seed: 9,
        ..GeneratorConfig::default()
    })
    .generate();
    let idx = u.eligible_pairs(2, true)[1];
    let pair = &u.pairs[idx];
    let a = &u.isps[pair.isp_a.index()];
    let b = &u.isps[pair.isp_b.index()];
    let view = PairView::new(a, b, pair);
    let sp_a = ShortestPaths::compute(a);
    let sp_b = ShortestPaths::compute(b);
    let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
    let default = Assignment::early_exit(&view, &sp_a, &flows);
    let input = SessionInput {
        flow_ids: (0..flows.len()).map(FlowId::new).collect(),
        defaults: default.choices().to_vec(),
        volumes: flows.flows.iter().map(|f| f.volume).collect(),
        num_alternatives: pair.num_interconnections(),
    };
    let config = NexitConfig::win_win();

    let mut pa = Party::honest("A", DistanceMapper::new(Side::A, &flows));
    let mut pb = Party::cheating(
        "B",
        DistanceMapper::new(Side::B, &flows),
        DisclosurePolicy::InflateBest,
    );
    let engine = negotiate(&input, &default, &mut pa, &mut pb, &config);

    let mut agent_a = Agent::new(
        Side::A, "A", input.clone(), default.clone(),
        DistanceMapper::new(Side::A, &flows), DisclosurePolicy::Truthful, config,
    ).unwrap();
    let mut agent_b = Agent::new(
        Side::B, "B", input, default,
        DistanceMapper::new(Side::B, &flows), DisclosurePolicy::InflateBest, config,
    ).unwrap();
    let mut ab = FaultyLink::reliable();
    let mut ba = FaultyLink::reliable();
    let (out_a, _) = run_session(&mut agent_a, &mut agent_b, &mut ab, &mut ba).unwrap();
    assert_eq!(engine.assignment.choices(), out_a.assignment.choices());
}

#[test]
fn cheating_upstream_is_rejected_in_protocol() {
    let input = SessionInput {
        flow_ids: vec![FlowId(0)],
        defaults: vec![nexit::topology::IcxId(0)],
        volumes: vec![1.0],
        num_alternatives: 2,
    };
    struct Null;
    impl nexit::core::PreferenceMapper for Null {
        fn gains(&mut self, i: &SessionInput, _c: &Assignment) -> Vec<Vec<f64>> {
            vec![vec![0.0; i.num_alternatives]; i.len()]
        }
    }
    let err = Agent::new(
        Side::A,
        "A",
        input,
        Assignment::from_choices(vec![nexit::topology::IcxId(0)]),
        Null,
        DisclosurePolicy::InflateBest,
        NexitConfig::default(),
    )
    .err()
    .expect("side-A InflateBest must be rejected");
    assert!(matches!(err, nexit::proto::ProtoError::UnsupportedDisclosure));
}
