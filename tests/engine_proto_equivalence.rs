//! Cross-crate invariant: the in-process engine and the wire-protocol
//! agents must reach identical outcomes from identical inputs. Since the
//! `NegotiationMachine` refactor both paths execute the same state
//! machine, so this suite is no longer guarding against drift between
//! two implementations — it pins the *shells* (engine pump, frame codec,
//! handshake, link) end to end, bytes included, and checks that
//! injected transport faults can only fail a session cleanly, never
//! silently change its outcome.

use nexit::core::{
    negotiate, DisclosurePolicy, DistanceMapper, GainTable, NexitConfig, Party, PreferenceMapper,
    SessionInput, Side,
};
use nexit::proto::{
    run_reliable_session, run_session, Agent, FaultConfig, FaultyLink, ProtoError, ReliableConfig,
};
use nexit::routing::{Assignment, FlowId, PairFlows, ShortestPaths};
use nexit::topology::{GeneratorConfig, IcxId, PairView, TopologyGenerator};
use nexit::workload::WorkloadModel;
use proptest::prelude::*;

fn run_both(seed: u64, config: NexitConfig) {
    let u = TopologyGenerator::new(GeneratorConfig {
        num_isps: 12,
        num_mesh_isps: 0,
        seed,
        ..GeneratorConfig::default()
    })
    .generate();
    let idx = u.eligible_pairs(2, true)[0];
    let pair = &u.pairs[idx];
    let a = &u.isps[pair.isp_a.index()];
    let b = &u.isps[pair.isp_b.index()];
    let view = PairView::new(a, b, pair);
    let sp_a = ShortestPaths::compute(a);
    let sp_b = ShortestPaths::compute(b);
    let vol = nexit::workload::volume_fn(WorkloadModel::Identical, a, b);
    let flows = PairFlows::build(&view, &sp_a, &sp_b, vol);
    let default = Assignment::early_exit(&view, &sp_a, &flows);
    let input = SessionInput {
        flow_ids: (0..flows.len()).map(FlowId::new).collect(),
        defaults: default.choices().to_vec(),
        volumes: flows.flows.iter().map(|f| f.volume).collect(),
        num_alternatives: pair.num_interconnections(),
    };

    // Engine outcome.
    let mut pa = Party::honest("A", DistanceMapper::new(Side::A, &flows));
    let mut pb = Party::honest("B", DistanceMapper::new(Side::B, &flows));
    let engine = negotiate(&input, &default, &mut pa, &mut pb, &config);

    // Wire-protocol outcome over framed binary messages.
    let mut agent_a = Agent::new(
        Side::A,
        "A",
        input.clone(),
        default.clone(),
        DistanceMapper::new(Side::A, &flows),
        DisclosurePolicy::Truthful,
        config,
    )
    .unwrap();
    let mut agent_b = Agent::new(
        Side::B,
        "B",
        input,
        default,
        DistanceMapper::new(Side::B, &flows),
        DisclosurePolicy::Truthful,
        config,
    )
    .unwrap();
    let mut ab = FaultyLink::reliable();
    let mut ba = FaultyLink::reliable();
    let (out_a, out_b) = run_session(&mut agent_a, &mut agent_b, &mut ab, &mut ba).unwrap();

    assert_eq!(
        engine.assignment.choices(),
        out_a.assignment.choices(),
        "engine and protocol agents disagree (seed {seed})"
    );
    assert_eq!(
        out_a.assignment, out_b.assignment,
        "agents disagree with each other"
    );
    assert_eq!(engine.gain_a, out_a.my_gain, "A gain mismatch");
    assert_eq!(engine.gain_b, out_b.my_gain, "B gain mismatch");
    assert_eq!(
        engine.termination, out_a.termination,
        "termination mismatch"
    );
    assert_eq!(
        engine.reassignments, out_a.reassignments,
        "reassignment mismatch"
    );
}

#[test]
fn equivalence_default_config() {
    for seed in [1, 2, 3] {
        run_both(seed, NexitConfig::default());
    }
}

#[test]
fn equivalence_win_win_config() {
    for seed in [4, 5, 6] {
        run_both(seed, NexitConfig::win_win());
    }
}

#[test]
fn equivalence_bandwidth_reassignment_config() {
    for seed in [7, 8] {
        run_both(seed, NexitConfig::win_win_bandwidth());
    }
}

#[test]
fn equivalence_with_cheating_downstream() {
    // A cheating B (InflateBest discloses second in both settings).
    let u = TopologyGenerator::new(GeneratorConfig {
        num_isps: 12,
        num_mesh_isps: 0,
        seed: 9,
        ..GeneratorConfig::default()
    })
    .generate();
    let idx = u.eligible_pairs(2, true)[1];
    let pair = &u.pairs[idx];
    let a = &u.isps[pair.isp_a.index()];
    let b = &u.isps[pair.isp_b.index()];
    let view = PairView::new(a, b, pair);
    let sp_a = ShortestPaths::compute(a);
    let sp_b = ShortestPaths::compute(b);
    let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
    let default = Assignment::early_exit(&view, &sp_a, &flows);
    let input = SessionInput {
        flow_ids: (0..flows.len()).map(FlowId::new).collect(),
        defaults: default.choices().to_vec(),
        volumes: flows.flows.iter().map(|f| f.volume).collect(),
        num_alternatives: pair.num_interconnections(),
    };
    let config = NexitConfig::win_win();

    let mut pa = Party::honest("A", DistanceMapper::new(Side::A, &flows));
    let mut pb = Party::cheating(
        "B",
        DistanceMapper::new(Side::B, &flows),
        DisclosurePolicy::InflateBest,
    );
    let engine = negotiate(&input, &default, &mut pa, &mut pb, &config);

    let mut agent_a = Agent::new(
        Side::A,
        "A",
        input.clone(),
        default.clone(),
        DistanceMapper::new(Side::A, &flows),
        DisclosurePolicy::Truthful,
        config,
    )
    .unwrap();
    let mut agent_b = Agent::new(
        Side::B,
        "B",
        input,
        default,
        DistanceMapper::new(Side::B, &flows),
        DisclosurePolicy::InflateBest,
        config,
    )
    .unwrap();
    let mut ab = FaultyLink::reliable();
    let mut ba = FaultyLink::reliable();
    let (out_a, _) = run_session(&mut agent_a, &mut agent_b, &mut ab, &mut ba).unwrap();
    assert_eq!(engine.assignment.choices(), out_a.assignment.choices());
}

#[test]
fn cheating_upstream_is_rejected_in_protocol() {
    let input = SessionInput {
        flow_ids: vec![FlowId(0)],
        defaults: vec![IcxId(0)],
        volumes: vec![1.0],
        num_alternatives: 2,
    };
    struct Null;
    impl PreferenceMapper for Null {
        fn gains(&mut self, _i: &SessionInput, _c: &Assignment, _out: &mut GainTable) {
            // Indifferent to everything: the table arrives zeroed.
        }
    }
    let err = Agent::new(
        Side::A,
        "A",
        input,
        Assignment::from_choices(vec![IcxId(0)]),
        Null,
        DisclosurePolicy::InflateBest,
        NexitConfig::default(),
    )
    .err()
    .expect("side-A InflateBest must be rejected");
    assert!(matches!(err, ProtoError::UnsupportedDisclosure));
}

// ---------------------------------------------------------------------------
// Fault-injection property cases: a machine pair driven through
// `FaultyLink` (drop / corrupt / duplicate) either fails the session
// *cleanly* or reaches exactly the in-process outcome. Injected faults
// must never silently change the negotiated assignment or the gains.
// ---------------------------------------------------------------------------

/// A deterministic synthetic mapper: cheap enough to run hundreds of
/// sessions, rich enough to exercise trades, vetoes and reassignment.
#[derive(Clone)]
struct TableMapper {
    gains: GainTable,
}

impl PreferenceMapper for TableMapper {
    fn gains(&mut self, _i: &SessionInput, _c: &Assignment, out: &mut GainTable) {
        out.copy_from(&self.gains);
    }
}

fn synthetic_session(n: usize, k: usize) -> (SessionInput, Assignment) {
    (
        SessionInput {
            flow_ids: (0..n).map(FlowId::new).collect(),
            defaults: vec![IcxId(0); n],
            volumes: vec![1.0; n],
            num_alternatives: k,
        },
        Assignment::uniform(n, IcxId(0)),
    )
}

/// Run the same session through the in-process driver and through agents
/// over the given links; check the fault-safety contract.
fn check_faulty_session(
    gains_a: Vec<Vec<f64>>,
    gains_b: Vec<Vec<f64>>,
    config: NexitConfig,
    faults: FaultConfig,
    link_seed: u64,
) -> Result<(), TestCaseError> {
    let n = gains_a.len();
    let k = gains_a[0].len();
    let (input, default) = synthetic_session(n, k);
    let gains_a = GainTable::from_rows(&gains_a);
    let gains_b = GainTable::from_rows(&gains_b);

    let mut pa = Party::honest(
        "A",
        TableMapper {
            gains: gains_a.clone(),
        },
    );
    let mut pb = Party::honest(
        "B",
        TableMapper {
            gains: gains_b.clone(),
        },
    );
    let reference = negotiate(&input, &default, &mut pa, &mut pb, &config);

    let mut agent_a = Agent::new(
        Side::A,
        "A",
        input.clone(),
        default.clone(),
        TableMapper { gains: gains_a },
        DisclosurePolicy::Truthful,
        config,
    )
    .unwrap();
    let mut agent_b = Agent::new(
        Side::B,
        "B",
        input,
        default,
        TableMapper { gains: gains_b },
        DisclosurePolicy::Truthful,
        config,
    )
    .unwrap();
    let mut ab = FaultyLink::new(faults, link_seed);
    let mut ba = FaultyLink::new(faults, link_seed.wrapping_add(1));
    match run_session(&mut agent_a, &mut agent_b, &mut ab, &mut ba) {
        Ok((out_a, out_b)) => {
            // The session survived the faults (duplicates of a frame can
            // still break protocol state; surviving ones must be exact).
            prop_assert_eq!(
                reference.assignment.choices(),
                out_a.assignment.choices(),
                "fault injection changed the outcome (seed {})",
                link_seed
            );
            prop_assert_eq!(out_a.assignment, out_b.assignment);
            prop_assert_eq!(reference.gain_a, out_a.my_gain);
            prop_assert_eq!(reference.gain_b, out_b.my_gain);
        }
        Err(e) => {
            // Clean failure is the only acceptable alternative: frame
            // corruption must be caught by the CRC (or the message /
            // state validators), never absorbed.
            let clean = matches!(
                e,
                ProtoError::Frame(_)
                    | ProtoError::Message(_)
                    | ProtoError::UnexpectedMessage { .. }
                    | ProtoError::BadProposal(_)
                    | ProtoError::BadPrefList(_)
                    | ProtoError::ConfigMismatch(_)
                    | ProtoError::FlowMismatch(_)
                    | ProtoError::Stalled { .. }
                    | ProtoError::Closed
            );
            prop_assert!(clean, "unclean failure: {e}");
        }
    }
    Ok(())
}

fn arb_gains(n: usize, k: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(-10.0f64..10.0, k), n).prop_map(
        |mut rows| {
            for row in &mut rows {
                row[0] = 0.0; // default column
            }
            rows
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On reliable links, engine and agents agree for arbitrary tables
    /// and both headline configs (round-trip equivalence).
    #[test]
    fn machine_pair_roundtrips_reliable(
        ga in arb_gains(6, 3),
        gb in arb_gains(6, 3),
        win_win in any::<bool>(),
    ) {
        let config = if win_win {
            NexitConfig::win_win()
        } else {
            NexitConfig::default()
        };
        check_faulty_session(ga, gb, config, FaultConfig::RELIABLE, 0)?;
    }

    /// Dropped frames stall the lock-step protocol: the driver must
    /// surface that as an error, and partial sessions never yield an
    /// outcome that differs from the reference.
    #[test]
    fn dropped_frames_fail_cleanly(
        ga in arb_gains(5, 3),
        gb in arb_gains(5, 3),
        drop_chance in 0.05f64..0.6,
        link_seed in 0u64..1_000,
    ) {
        let faults = FaultConfig { drop_chance, ..FaultConfig::RELIABLE };
        check_faulty_session(ga, gb, NexitConfig::win_win(), faults, link_seed)?;
    }

    /// Corrupted frames must be detected by the CRC (or fail message
    /// validation) — never silently alter the outcome.
    #[test]
    fn corrupted_frames_fail_cleanly(
        ga in arb_gains(5, 3),
        gb in arb_gains(5, 3),
        corrupt_chance in 0.05f64..0.6,
        link_seed in 0u64..1_000,
    ) {
        let faults = FaultConfig { corrupt_chance, ..FaultConfig::RELIABLE };
        check_faulty_session(ga, gb, NexitConfig::win_win(), faults, link_seed)?;
    }

    /// Duplicated frames arrive in a state that no longer expects them;
    /// the machine's state validation must reject them (or, where a
    /// duplicate is harmlessly re-ordered out, the outcome must match).
    #[test]
    fn duplicated_frames_fail_cleanly_or_match(
        ga in arb_gains(5, 3),
        gb in arb_gains(5, 3),
        duplicate_chance in 0.05f64..0.6,
        link_seed in 0u64..1_000,
    ) {
        let faults = FaultConfig { duplicate_chance, ..FaultConfig::RELIABLE };
        check_faulty_session(ga, gb, NexitConfig::win_win(), faults, link_seed)?;
    }

    /// Reordered frames arrive in a state that no longer expects them;
    /// on the raw link the state validation must reject them cleanly
    /// (or, where the exchange happens to tolerate the swap, match).
    #[test]
    fn reordered_frames_fail_cleanly_or_match(
        ga in arb_gains(5, 3),
        gb in arb_gains(5, 3),
        reorder_chance in 0.05f64..0.6,
        link_seed in 0u64..1_000,
    ) {
        let faults = FaultConfig { reorder_chance, ..FaultConfig::RELIABLE };
        check_faulty_session(ga, gb, NexitConfig::win_win(), faults, link_seed)?;
    }

    /// All four fault classes at once.
    #[test]
    fn mixed_faults_fail_cleanly_or_match(
        ga in arb_gains(4, 3),
        gb in arb_gains(4, 3),
        drop_chance in 0.0f64..0.3,
        corrupt_chance in 0.0f64..0.3,
        duplicate_chance in 0.0f64..0.3,
        reorder_chance in 0.0f64..0.3,
        link_seed in 0u64..1_000,
    ) {
        let faults = FaultConfig { drop_chance, corrupt_chance, duplicate_chance, reorder_chance };
        check_faulty_session(ga, gb, NexitConfig::win_win(), faults, link_seed)?;
    }
}

// ---------------------------------------------------------------------------
// ARQ recovery property cases: the same faulty sessions driven through
// `run_reliable_session`. Below saturation with a sufficient retry
// budget the session must *recover* — byte-identical to the fault-free
// reference — and at any rate the outcome is never silently wrong.
// ---------------------------------------------------------------------------

/// Run the same session through the engine and through replay-tolerant
/// agents over ARQ endpoints on the given faulty links. With `strict`,
/// the session must recover and match the reference exactly; otherwise a
/// terminal ARQ error (retry exhaustion / deadline) is also acceptable —
/// but a diverging outcome or a raw protocol error never is.
fn check_reliable_session(
    gains_a: Vec<Vec<f64>>,
    gains_b: Vec<Vec<f64>>,
    config: NexitConfig,
    faults: FaultConfig,
    link_seed: u64,
    arq: ReliableConfig,
    strict: bool,
) -> Result<(), TestCaseError> {
    let n = gains_a.len();
    let k = gains_a[0].len();
    let (input, default) = synthetic_session(n, k);
    let gains_a = GainTable::from_rows(&gains_a);
    let gains_b = GainTable::from_rows(&gains_b);

    let mut pa = Party::honest(
        "A",
        TableMapper {
            gains: gains_a.clone(),
        },
    );
    let mut pb = Party::honest(
        "B",
        TableMapper {
            gains: gains_b.clone(),
        },
    );
    let reference = negotiate(&input, &default, &mut pa, &mut pb, &config);

    let mut agent_a = Agent::new(
        Side::A,
        "A",
        input.clone(),
        default.clone(),
        TableMapper { gains: gains_a },
        DisclosurePolicy::Truthful,
        config,
    )
    .unwrap();
    let mut agent_b = Agent::new(
        Side::B,
        "B",
        input,
        default,
        TableMapper { gains: gains_b },
        DisclosurePolicy::Truthful,
        config,
    )
    .unwrap();
    agent_a.set_replay_tolerance(true);
    agent_b.set_replay_tolerance(true);
    let mut ab = FaultyLink::new(faults, link_seed);
    let mut ba = FaultyLink::new(faults, link_seed.wrapping_add(1));
    match run_reliable_session(&mut agent_a, &mut agent_b, &mut ab, &mut ba, arq, 50_000) {
        Ok((out_a, out_b)) => {
            prop_assert_eq!(
                reference.assignment.choices(),
                out_a.assignment.choices(),
                "ARQ recovery changed the outcome (seed {})",
                link_seed
            );
            prop_assert_eq!(out_a.assignment, out_b.assignment);
            prop_assert_eq!(reference.gain_a, out_a.my_gain);
            prop_assert_eq!(reference.gain_b, out_b.my_gain);
            prop_assert_eq!(reference.termination, out_a.termination);
            prop_assert_eq!(reference.reassignments, out_a.reassignments);
        }
        Err(e) => {
            prop_assert!(
                !strict,
                "below saturation the session must recover, got: {} (seed {})",
                e,
                link_seed
            );
            // Past saturation the only acceptable failures are the ARQ
            // layer's own terminal errors: transient faults must never
            // leak through as protocol violations or wrong outcomes.
            prop_assert!(
                matches!(
                    e,
                    ProtoError::RetryExhausted { .. } | ProtoError::DeadlineExceeded { .. }
                ),
                "unclean ARQ failure: {}",
                e
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Below saturation (≤12% per fault class) with a generous retry
    /// budget, every faulted session recovers byte-identical to the
    /// fault-free reference — loss, corruption, duplication and
    /// reordering together.
    #[test]
    fn arq_recovers_below_saturation(
        ga in arb_gains(5, 3),
        gb in arb_gains(5, 3),
        drop_chance in 0.0f64..0.12,
        corrupt_chance in 0.0f64..0.12,
        duplicate_chance in 0.0f64..0.12,
        reorder_chance in 0.0f64..0.12,
        link_seed in 0u64..1_000,
    ) {
        let faults = FaultConfig { drop_chance, corrupt_chance, duplicate_chance, reorder_chance };
        let arq = ReliableConfig { retry_budget: 16, ..ReliableConfig::default() };
        check_reliable_session(ga, gb, NexitConfig::win_win(), faults, link_seed, arq, true)?;
    }

    /// At arbitrary fault rates (up to half of all frames mangled per
    /// class) the ARQ layer either recovers exactly or fails with its
    /// own terminal error — never a wrong outcome, never a raw protocol
    /// violation.
    #[test]
    fn arq_never_corrupts_at_any_rate(
        ga in arb_gains(4, 3),
        gb in arb_gains(4, 3),
        drop_chance in 0.0f64..0.5,
        corrupt_chance in 0.0f64..0.5,
        duplicate_chance in 0.0f64..0.5,
        reorder_chance in 0.0f64..0.5,
        link_seed in 0u64..1_000,
    ) {
        let faults = FaultConfig { drop_chance, corrupt_chance, duplicate_chance, reorder_chance };
        let arq = ReliableConfig::default();
        check_reliable_session(ga, gb, NexitConfig::win_win(), faults, link_seed, arq, false)?;
    }
}

/// Deterministic gain tables for the non-proptest ARQ cases.
fn fixed_gains(n: usize, k: usize, salt: u64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|f| {
            (0..k)
                .map(|a| {
                    if a == 0 {
                        0.0
                    } else {
                        ((f as f64 * 7.3 + a as f64 * 3.1 + salt as f64 * 1.7) % 19.0) - 9.0
                    }
                })
                .collect()
        })
        .collect()
}

/// The headline robustness claim at the deployment-realistic rate: 1%
/// drop + 1% corruption per frame, default retry budget, across many
/// link seeds — every session recovers byte-identical to the fault-free
/// reference.
#[test]
fn arq_recovers_one_percent_faults_with_default_budget() {
    let faults = FaultConfig {
        drop_chance: 0.01,
        corrupt_chance: 0.01,
        ..FaultConfig::RELIABLE
    };
    for seed in 0..100u64 {
        check_reliable_session(
            fixed_gains(6, 3, seed),
            fixed_gains(6, 3, seed ^ 0xff),
            NexitConfig::win_win(),
            faults,
            seed,
            ReliableConfig::default(),
            true,
        )
        .unwrap();
    }
}

/// The dedup-window satellite, both halves: with replay tolerance on, a
/// byte-identical replay of the last frame is silently ignored; on the
/// raw strict path the same replay is a fatal protocol violation.
#[test]
fn replayed_frame_ignored_with_tolerance_fatal_without() {
    for tolerate in [false, true] {
        let (input, default) = synthetic_session(4, 3);
        let gains = GainTable::from_rows(&fixed_gains(4, 3, 1));
        let mut agent_a = Agent::new(
            Side::A,
            "A",
            input.clone(),
            default.clone(),
            TableMapper {
                gains: gains.clone(),
            },
            DisclosurePolicy::Truthful,
            NexitConfig::win_win(),
        )
        .unwrap();
        let mut agent_b = Agent::new(
            Side::B,
            "B",
            input,
            default,
            TableMapper { gains },
            DisclosurePolicy::Truthful,
            NexitConfig::win_win(),
        )
        .unwrap();
        agent_b.set_replay_tolerance(tolerate);
        let hello = agent_a.poll_transmit().expect("A opens with Hello");
        agent_b.handle_bytes(&hello).expect("first Hello is fine");
        let replay = agent_b.handle_bytes(&hello);
        if tolerate {
            assert!(
                replay.is_ok(),
                "dedup window must absorb the replay, got {:?}",
                replay
            );
        } else {
            assert!(
                matches!(replay, Err(ProtoError::UnexpectedMessage { .. })),
                "raw path must reject the replay, got {:?}",
                replay
            );
        }
    }
}
