//! Offline, API-compatible subset of the `bytes` crate: big-endian
//! cursor reads over `&[u8]` ([`Buf`]), big-endian appends to `Vec<u8>`
//! ([`BufMut`]), and a growable receive buffer ([`BytesMut`]).

/// Sequential big-endian reads from a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skip `n` bytes. Panics when fewer remain.
    fn advance(&mut self, n: usize);
    /// Copy out the next `n` bytes. Panics when fewer remain.
    fn copy_to_array<const N: usize>(&mut self) -> [u8; N];

    /// Read one `u8`.
    fn get_u8(&mut self) -> u8 {
        self.copy_to_array::<1>()[0]
    }
    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.copy_to_array())
    }
    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.copy_to_array())
    }
    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.copy_to_array())
    }
    /// Read a big-endian `i16`.
    fn get_i16(&mut self) -> i16 {
        i16::from_be_bytes(self.copy_to_array())
    }
    /// Read a big-endian `i32`.
    fn get_i32(&mut self) -> i32 {
        i32::from_be_bytes(self.copy_to_array())
    }
    /// Read a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        i64::from_be_bytes(self.copy_to_array())
    }
    /// Read a big-endian IEEE-754 `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn copy_to_array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        out.copy_from_slice(&self[..N]);
        *self = &self[N..];
        out
    }
}

/// Sequential big-endian appends to a byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `i16`.
    fn put_i16(&mut self, v: i16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian IEEE-754 `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable receive buffer with cheap front consumption.
///
/// Backed by a `Vec<u8>` plus a read offset; [`BytesMut::advance`]
/// compacts lazily so long sessions do not retain consumed prefixes.
#[derive(Debug, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
    start: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append received bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consume `n` bytes from the front.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of BytesMut");
        self.start += n;
        // Compact once the consumed prefix dominates, keeping amortized
        // O(1) appends without unbounded growth.
        if self.start > 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf[self.start..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut out = Vec::new();
        out.put_u8(7);
        out.put_u16(0x1234);
        out.put_u32(0xDEADBEEF);
        out.put_u64(0x0123_4567_89AB_CDEF);
        out.put_i16(-2);
        out.put_i32(-40_000);
        out.put_i64(-1 << 40);
        out.put_f64(-2.5);
        let mut buf: &[u8] = &out;
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u16(), 0x1234);
        assert_eq!(buf.get_u32(), 0xDEADBEEF);
        assert_eq!(buf.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(buf.get_i16(), -2);
        assert_eq!(buf.get_i32(), -40_000);
        assert_eq!(buf.get_i64(), -1 << 40);
        assert_eq!(buf.get_f64(), -2.5);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn bytes_mut_advance_and_index() {
        let mut b = BytesMut::new();
        b.extend_from_slice(&[1, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        assert_eq!(b[0], 1);
        b.advance(2);
        assert_eq!(b.len(), 3);
        assert_eq!(b[0], 3);
        assert_eq!(&b[1..3], &[4, 5]);
        b.extend_from_slice(&[6]);
        assert_eq!(&b[..], &[3, 4, 5, 6]);
    }

    #[test]
    fn bytes_mut_compacts() {
        let mut b = BytesMut::new();
        for chunk in 0..100 {
            b.extend_from_slice(&[chunk as u8; 128]);
        }
        for _ in 0..99 {
            b.advance(128);
        }
        assert_eq!(b.len(), 128);
        assert_eq!(b[0], 99);
    }
}
