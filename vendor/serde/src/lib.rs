//! Offline substitute for the slice of `serde` this workspace uses.
//!
//! The build environment has no crates.io access, so instead of the real
//! serde (whose derive macro needs `syn`/`quote`, also unavailable) this
//! crate models serialization through one concrete tree type, [`Value`],
//! and two object-safe-free traits, [`Serialize`] / [`Deserialize`].
//! In place of `#[derive(Serialize, Deserialize)]`, types opt in with the
//! declarative macros [`impl_json_struct!`], [`impl_json_enum!`] and
//! [`impl_json_newtype!`] (the last replaces `#[serde(transparent)]`;
//! skipped fields replace `#[serde(skip)]`). The `serde_json` sibling
//! crate renders and parses [`Value`] as standard JSON.

/// A JSON-shaped data tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// An integer that fits `i64` (kept exact; never round-tripped
    /// through `f64`).
    Int(i64),
    /// A non-integer number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up an object field by name.
    pub fn get_field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::msg(format!("missing field `{name}`"))),
            other => Err(DeError::msg(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// For externally-tagged enums: the payload of `{"Variant": ...}`
    /// when this value is a single-key object with that key.
    pub fn get_variant(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) if fields.len() == 1 && fields[0].0 == name => Some(&fields[0].1),
            _ => None,
        }
    }

    /// Human-readable node kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization failure: a contextual message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Build from any message.
    pub fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types renderable to a [`Value`].
pub trait Serialize {
    /// Convert to the data tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Convert from the data tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::try_from(*self).expect("integer exceeds i64 range"))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::msg(format!("{i} out of range for {}", stringify!($t)))),
                    other => Err(DeError::msg(format!(
                        "expected integer, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        // Keep exact integers exact; `serde_json` prints Float via the
        // shortest-roundtrip formatter so either path round-trips.
        if self.fract() == 0.0 && self.abs() < 9.0e15 {
            Value::Int(*self as i64)
        } else {
            Value::Float(*self)
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            other => Err(DeError::msg(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Implement [`Serialize`]/[`Deserialize`] for a named-field struct.
///
/// Fields after `skip` are not serialized and are rebuilt with
/// `Default::default()` on load (the `#[serde(skip)]` replacement).
///
/// ```
/// #[derive(Debug, PartialEq, Default)]
/// struct Point { x: i32, y: i32, cache: Vec<i32> }
/// serde::impl_json_struct!(Point { x, y } skip { cache });
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($name:ident { $($f:ident),+ $(,)? }) => {
        $crate::impl_json_struct!($name { $($f),+ } skip {});
    };
    ($name:ident { $($f:ident),+ $(,)? } skip { $($s:ident),* $(,)? }) => {
        impl $crate::Serialize for $name {
            fn to_value(&self) -> $crate::Value {
                $crate::Value::Object(vec![
                    $((stringify!($f).to_string(), $crate::Serialize::to_value(&self.$f))),+
                ])
            }
        }
        impl $crate::Deserialize for $name {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::DeError> {
                Ok(Self {
                    $($f: $crate::Deserialize::from_value(v.get_field(stringify!($f))?)
                        .map_err(|e| $crate::DeError::msg(format!(
                            "{}.{}: {e}", stringify!($name), stringify!($f))))?,)+
                    $($s: Default::default(),)*
                })
            }
        }
    };
}

/// Implement transparent serialization for a single-field tuple struct
/// (the `#[serde(transparent)]` replacement).
#[macro_export]
macro_rules! impl_json_newtype {
    ($name:ident) => {
        impl $crate::Serialize for $name {
            fn to_value(&self) -> $crate::Value {
                $crate::Serialize::to_value(&self.0)
            }
        }
        impl $crate::Deserialize for $name {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::DeError> {
                Ok(Self($crate::Deserialize::from_value(v)?))
            }
        }
    };
}

/// Implement externally-tagged serialization for an enum of unit and
/// named-field variants (serde's default representation: `"Unit"` and
/// `{"Variant": {"field": ...}}`).
#[macro_export]
macro_rules! impl_json_enum {
    ($name:ident { $( $variant:ident $( { $($f:ident),+ $(,)? } )? ),+ $(,)? }) => {
        impl $crate::Serialize for $name {
            fn to_value(&self) -> $crate::Value {
                match self {
                    $(Self::$variant $( { $($f),+ } )? =>
                        $crate::impl_json_enum!(@ser $variant $( { $($f),+ } )?),)+
                }
            }
        }
        impl $crate::Deserialize for $name {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::DeError> {
                $($crate::impl_json_enum!(@de v, $variant $( { $($f),+ } )?);)+
                Err($crate::DeError::msg(format!(
                    "no variant of {} matches {}", stringify!($name), v.kind()
                )))
            }
        }
    };
    (@ser $variant:ident) => {
        $crate::Value::Str(stringify!($variant).to_string())
    };
    (@ser $variant:ident { $($f:ident),+ }) => {
        $crate::Value::Object(vec![(
            stringify!($variant).to_string(),
            $crate::Value::Object(vec![
                $((stringify!($f).to_string(), $crate::Serialize::to_value($f))),+
            ]),
        )])
    };
    (@de $v:ident, $variant:ident) => {
        if let $crate::Value::Str(s) = $v {
            if s == stringify!($variant) {
                return Ok(Self::$variant);
            }
        }
    };
    (@de $v:ident, $variant:ident { $($f:ident),+ }) => {
        if let Some(inner) = $v.get_variant(stringify!($variant)) {
            return Ok(Self::$variant {
                $($f: $crate::Deserialize::from_value(inner.get_field(stringify!($f))?)?),+
            });
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Point {
        x: i32,
        y: f64,
        tag: String,
        cache: Vec<u32>,
    }
    impl_json_struct!(Point { x, y, tag } skip { cache });

    #[derive(Debug, PartialEq)]
    struct Wrapper(pub u32);
    impl_json_newtype!(Wrapper);

    #[derive(Debug, PartialEq)]
    enum Policy {
        Plain,
        Seeded { seed: u64, bias: f64 },
    }
    impl_json_enum!(Policy { Plain, Seeded { seed, bias } });

    #[test]
    fn struct_roundtrip_with_skip() {
        let p = Point {
            x: -3,
            y: 2.5,
            tag: "hub".into(),
            cache: vec![9],
        };
        let v = p.to_value();
        let back = Point::from_value(&v).unwrap();
        assert_eq!(back.x, -3);
        assert_eq!(back.y, 2.5);
        assert_eq!(back.tag, "hub");
        assert!(back.cache.is_empty(), "skipped field reset to default");
    }

    #[test]
    fn newtype_is_transparent() {
        let v = Wrapper(7).to_value();
        assert_eq!(v, Value::Int(7));
        assert_eq!(Wrapper::from_value(&v).unwrap(), Wrapper(7));
    }

    #[test]
    fn enum_roundtrips_both_shapes() {
        for p in [
            Policy::Plain,
            Policy::Seeded {
                seed: 42,
                bias: 0.5,
            },
        ] {
            let v = p.to_value();
            assert_eq!(Policy::from_value(&v).unwrap(), p);
        }
        assert_eq!(Policy::Plain.to_value(), Value::Str("Plain".into()));
    }

    #[test]
    fn option_and_vec() {
        let v = Some(3u32).to_value();
        assert_eq!(Option::<u32>::from_value(&v).unwrap(), Some(3));
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        let xs = vec![1i64, 2, 3].to_value();
        assert_eq!(Vec::<i64>::from_value(&xs).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn errors_name_the_field() {
        let v = Value::Object(vec![("x".into(), Value::Int(1))]);
        let err = Point::from_value(&v).unwrap_err();
        assert!(err.to_string().contains('y'), "{err}");
    }
}
