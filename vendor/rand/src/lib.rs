//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of `rand`'s API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`], xoshiro256** seeded via
//! SplitMix64) and the [`Rng`] convenience methods `gen`, `gen_bool` and
//! `gen_range`. Value streams differ from upstream `rand`; everything in
//! this workspace only relies on determinism and uniformity, never on a
//! specific stream.

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift rejection-free mapping; bias is < 2^-64,
                // far below anything these simulations can observe.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in gen_range");
        // The closed upper end is hit with probability ~2^-53; treating
        // the range as half-open keeps the implementation simple.
        start + f64::sample(rng) * (end - start)
    }
}

/// The raw 64-bit output interface.
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli draw with probability `p` (must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self) < p
    }

    /// Uniform draw from a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `rand`'s
    /// `StdRng`; the stream differs from upstream but is seed-stable).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1500..3500).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
