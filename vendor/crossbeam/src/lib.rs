//! Offline, API-compatible subset of the `crossbeam` crate: unbounded
//! MPSC channels with timeout receive (delegated to `std::sync::mpsc`)
//! and scoped threads (delegated to `std::thread::scope`).

/// Scoped threads (`crossbeam::thread` subset).
///
/// Borrows non-`'static` data into worker threads with a join barrier
/// at scope exit, like upstream crossbeam. One behavioral difference:
/// upstream catches worker panics and reports them through the returned
/// `Result`, while this subset propagates them (the `Result` is always
/// `Ok` and exists only for drop-in compatibility with
/// `crossbeam::thread::scope(...).unwrap()` call sites).
pub mod thread {
    /// Handle for spawning threads scoped to a region of the caller's
    /// stack.
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker that may borrow from the enclosing scope. The
        /// closure receives the scope again so workers can spawn
        /// further workers, as in upstream crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            inner.spawn(move || f(&Scope(inner)))
        }
    }

    /// Run `f` with a scope handle; every spawned worker is joined
    /// before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope(s))))
    }
}

/// Channel primitives (`crossbeam::channel` subset).
pub mod channel {
    pub use std::sync::mpsc::{RecvTimeoutError, SendError};
    use std::time::Duration;

    /// Sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    // Manual impl: senders clone regardless of whether `T` does (the
    // derive would add a spurious `T: Clone` bound).
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Sender<T> {
        /// Send a value; fails when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        /// Receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Blocking receive; fails when every sender is gone.
        pub fn recv(&self) -> Result<T, std::sync::mpsc::RecvError> {
            self.0.recv()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn scoped_workers_can_spawn_workers() {
        let n = super::thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let handle = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..10 {
            got.push(rx.recv_timeout(Duration::from_secs(5)).unwrap());
        }
        handle.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
