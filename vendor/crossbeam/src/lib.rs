//! Offline, API-compatible subset of the `crossbeam` crate: unbounded
//! MPSC channels with timeout receive, delegated to `std::sync::mpsc`.

/// Channel primitives (`crossbeam::channel` subset).
pub mod channel {
    pub use std::sync::mpsc::{RecvTimeoutError, SendError};
    use std::time::Duration;

    /// Sending half of an unbounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Sender<T> {
        /// Send a value; fails when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        /// Receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Blocking receive; fails when every sender is gone.
        pub fn recv(&self) -> Result<T, std::sync::mpsc::RecvError> {
            self.0.recv()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let handle = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..10 {
            got.push(rx.recv_timeout(Duration::from_secs(5)).unwrap());
        }
        handle.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
