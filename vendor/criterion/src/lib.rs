//! Offline substitute for the slice of `criterion` this workspace uses.
//!
//! Benchmarks keep the upstream authoring surface (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!`) but the engine
//! is a plain warmup-then-measure timing loop printing mean
//! nanoseconds per iteration — enough to compare runs by hand and to
//! keep `cargo bench` compiling and runnable without crates.io access.
//!
//! Two environment knobs support the CI smoke-perf job:
//!
//! * `NEXIT_BENCH_QUICK=1` shrinks the measurement window so the whole
//!   suite finishes in seconds (noisier numbers, same ordering);
//! * `NEXIT_BENCH_JSON=<path>` additionally writes every result as a
//!   JSON array of `{"name", "mean_ns", "iters"}` objects, giving CI a
//!   machine-readable perf-trajectory artifact.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Results accumulated for the optional JSON report.
static RESULTS: Mutex<Vec<(String, f64, u64)>> = Mutex::new(Vec::new());

/// The per-benchmark measurement window. `NEXIT_BENCH_QUICK` trades
/// precision for wall-clock time (CI smoke runs).
fn measure_window() -> Duration {
    if std::env::var_os("NEXIT_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty()) {
        Duration::from_millis(5)
    } else {
        Duration::from_millis(20)
    }
}

/// Write the accumulated results to `NEXIT_BENCH_JSON`, if set. Called
/// by `criterion_main!` after every group ran; safe to call repeatedly.
pub fn write_json_report() {
    let Some(path) = std::env::var_os("NEXIT_BENCH_JSON") else {
        return;
    };
    let results = RESULTS.lock().expect("bench results poisoned");
    let mut body = String::from("[\n");
    for (i, (name, mean_ns, iters)) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        body.push_str(&format!(
            "  {{\"name\": \"{name}\", \"mean_ns\": {mean_ns:.1}, \"iters\": {iters}}}{sep}\n"
        ));
    }
    body.push_str("]\n");
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("warning: could not write {}: {e}", path.to_string_lossy());
    }
}

/// A two-part benchmark identifier (`group_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Build from a function name and a displayed parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Per-iteration timing driver passed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, recorded by [`Bencher::iter`].
    mean_ns: f64,
    iters_done: u64,
}

impl Bencher {
    /// Time the routine. The return value is consumed with
    /// [`std::hint::black_box`] so the optimizer cannot elide the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and calibration: find an iteration count that runs for
        // a measurable window.
        let window = measure_window();
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= window || iters >= 1 << 20 {
                // Benchmarks that hit the window on their very first
                // attempt were measured cold (no calibration pass warmed
                // the caches), and even calibrated rows carry scheduler
                // noise in one sample. Measure once more at the settled
                // count and keep the faster run — interference only ever
                // inflates timings, so the minimum is the stable
                // estimator (this is what keeps the 1-iteration rows of
                // the CI bench gate from flapping).
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(routine());
                }
                let second = start.elapsed();
                self.mean_ns = elapsed.min(second).as_nanos() as f64 / iters as f64;
                self.iters_done = iters;
                return;
            }
            iters *= 2;
        }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the simplified engine calibrates
    /// its own iteration count instead of sampling.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.name), |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut bencher = Bencher {
        mean_ns: 0.0,
        iters_done: 0,
    };
    f(&mut bencher);
    let mean = bencher.mean_ns;
    let human = if mean >= 1e9 {
        format!("{:.3} s", mean / 1e9)
    } else if mean >= 1e6 {
        format!("{:.3} ms", mean / 1e6)
    } else if mean >= 1e3 {
        format!("{:.3} µs", mean / 1e3)
    } else {
        format!("{mean:.1} ns")
    };
    println!(
        "bench {name:<50} {human:>12}/iter ({} iters)",
        bencher.iters_done
    );
    RESULTS.lock().expect("bench results poisoned").push((
        name.to_string(),
        mean,
        bencher.iters_done,
    ));
}

/// Collect benchmark functions into one runner, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` for a set of groups, like upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        c.bench_function("smoke/sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn groups_and_ids() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| vec![0u8; n])
        });
        g.finish();
    }
}
