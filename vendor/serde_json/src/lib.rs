//! Offline substitute for the slice of `serde_json` this workspace uses:
//! render [`serde::Value`] trees to JSON text (compact or pretty) and
//! parse JSON text back. Floats print via Rust's shortest-roundtrip
//! formatter, so every finite `f64` survives a round trip exactly.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value).map_err(|e| Error::msg(e.to_string()))
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            assert!(f.is_finite(), "JSON cannot represent {f}");
            let s = f.to_string();
            out.push_str(&s);
            // `2.0f64.to_string()` is "2": mark it as a float anyway so
            // the node kind survives a round trip.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => write_seq(items.iter(), '[', ']', indent, depth, out, |x, o| {
            write_value(x, indent, depth + 1, o)
        }),
        Value::Object(fields) => {
            write_seq(fields.iter(), '{', '}', indent, depth, out, |(k, x), o| {
                write_string(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(x, indent, depth + 1, o);
            })
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    items: I,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut write_item: impl FnMut(I::Item, &mut String),
) {
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(item, out);
    }
    if !empty {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse JSON text to a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Result<u8, Error> {
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            b => Err(Error::msg(format!(
                "unexpected `{}` at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                b => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        b as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                b => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        b as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.peek()?, b'"' | b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            if self.peek()? == b'"' {
                self.pos += 1;
                return Ok(out);
            }
            self.pos += 1; // consume the backslash
            let esc = self.peek()?;
            self.pos += 1;
            match esc {
                b'"' => out.push('"'),
                b'\\' => out.push('\\'),
                b'/' => out.push('/'),
                b'b' => out.push('\u{8}'),
                b'f' => out.push('\u{c}'),
                b'n' => out.push('\n'),
                b'r' => out.push('\r'),
                b't' => out.push('\t'),
                b'u' => {
                    let hex = self
                        .bytes
                        .get(self.pos..self.pos + 4)
                        .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                    let code = u32::from_str_radix(
                        std::str::from_utf8(hex).map_err(|_| Error::msg("bad \\u escape"))?,
                        16,
                    )
                    .map_err(|_| Error::msg("bad \\u escape"))?;
                    self.pos += 4;
                    // Surrogate pairs are not produced by this writer;
                    // map lone surrogates to the replacement character.
                    out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                }
                b => {
                    return Err(Error::msg(format!("bad escape `\\{}`", b as char)));
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek()? == b'-' {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for text in ["null", "true", "false", "0", "-17", "2.5", "-0.125"] {
            let v = parse(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn float_exact_roundtrip() {
        for f in [0.1, 1.0 / 3.0, 1e-300, 123456.789, -9.87e20] {
            let v = Value::Float(f);
            let text = to_string(&v).unwrap();
            match parse(&text).unwrap() {
                Value::Float(g) => assert_eq!(f, g, "{text}"),
                other => panic!("float reparsed as {other:?}"),
            }
        }
    }

    #[test]
    fn nested_structure_roundtrip() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("isp \"07\"\nFrankfurt".into())),
            (
                "pops".into(),
                Value::Array(vec![Value::Int(1), Value::Float(2.5), Value::Null]),
            ),
            ("mesh".into(), Value::Bool(false)),
            ("empty".into(), Value::Array(vec![])),
            ("inner".into(), Value::Object(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Value::Object(vec![("a".into(), Value::Array(vec![Value::Int(1)]))]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn rejects_garbage() {
        for text in ["", "{", "[1,", "\"unterminated", "nul", "1 2", "{\"a\" 1}"] {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn typed_from_str() {
        let v: Vec<f64> = from_str("[1, 2.5, -3]").unwrap();
        assert_eq!(v, vec![1.0, 2.5, -3.0]);
        let n: Option<u32> = from_str("null").unwrap();
        assert_eq!(n, None);
        assert!(from_str::<u32>("-4").is_err());
    }
}
