//! Offline substitute for the slice of `proptest` this workspace uses.
//!
//! Same surface grammar — `proptest! { #[test] fn f(x in strategy) {..} }`,
//! `prop_assert!`, `prop_assert_eq!`, range and collection strategies,
//! `prop_map` / `prop_flat_map`, `any::<T>()` — but a much simpler
//! engine: each case draws from a deterministic per-case RNG (seeded from
//! the test name and case index, so failures are reproducible and runs
//! are stable in CI) and failures report the failing case without input
//! shrinking.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of cases to run, set via `ProptestConfig::with_cases`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build from a message.
    pub fn fail(m: impl Into<String>) -> Self {
        Self(m.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A generator of random values.
pub trait Strategy: Sized {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Full-domain strategies, selected by type (`any::<u8>()`).
pub trait Arbitrary: Sized {
    /// Draw one value from the full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

/// Strategy for any value of an [`Arbitrary`] type.
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `proptest::prelude::any` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Element-count specification: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Derive the per-test base seed from the test path (stable across runs
/// and machines, distinct per test).
pub fn seed_from_name(name: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Build the RNG for one case.
pub fn case_rng(name: &str, case: u32) -> StdRng {
    StdRng::seed_from_u64(seed_from_name(name) ^ (u64::from(case) << 32))
}

/// Everything the test modules import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Assert inside a property; failures report the case instead of
/// panicking mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: both sides are {:?}", l);
    }};
}

/// Define property tests. Mirrors upstream proptest's surface grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(128))]
///     #[test]
///     fn holds(x in 0i32..10, (a, b) in (0u8..5, 0u8..5)) {
///         prop_assert!(x < 10 && a < 5 && b < 5);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let test_path = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::case_rng(test_path, case);
                    let ($($pat,)*) = ($(
                        $crate::Strategy::generate(&($strategy), &mut proptest_rng),
                    )*);
                    let case_body = || -> Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    let outcome = case_body();
                    if let Err(e) = outcome {
                        panic!("property {test_path} failed at case {case}: {e}");
                    }
                }
            }
        )+
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_name_and_case() {
        let a = crate::case_rng("x::y", 3);
        let b = crate::case_rng("x::y", 3);
        let mut a = a;
        let mut b = b;
        use rand::Rng;
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    proptest! {
        #[test]
        fn ranges_hold(x in -5i32..5, f in 0.0f64..1.0) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn tuple_and_pattern((a, b) in (0u8..10, 0u8..10)) {
            prop_assert!(a < 10 && b < 10);
        }

        #[test]
        fn vec_sizes(v in collection::vec(0i32..100, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (0..100).contains(&x)));
        }

        #[test]
        fn flat_map_links_sizes(rows in (1usize..4).prop_flat_map(|k|
            collection::vec(collection::vec(0i32..10, k), 1..5))) {
            let k = rows[0].len();
            prop_assert!(rows.iter().all(|r| r.len() == k));
        }

        #[test]
        fn map_transforms(x in (0i32..10).prop_map(|x| x * 2)) {
            prop_assert!(x % 2 == 0 && x < 20);
        }

        #[test]
        fn any_u8_covers(x in any::<u8>()) {
            let _ = x; // full domain; nothing to bound
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_accepted(x in 0i64..30) {
            prop_assert!(x < 30);
        }
    }

    // Expanded with #[ignore] so the suite stays green; the test below
    // invokes it directly to check the failure path.
    proptest! {
        #[test]
        #[ignore = "intentionally failing; driven by failures_surface_case_number"]
        fn always_fails(x in 0i32..10) {
            prop_assert!(x < 0, "x = {x}");
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_surface_case_number() {
        always_fails();
    }
}
