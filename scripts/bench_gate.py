#!/usr/bin/env python3
"""Bench-regression gate for the CI perf trajectory.

Compares a freshly generated bench report (the JSON array of
``{"name", "mean_ns", "iters"}`` rows that the vendored criterion
substitute writes via ``NEXIT_BENCH_JSON``) against the committed
baseline ``BENCH_engine.json`` and fails when any tracked row regresses
by more than a configurable threshold.

Because the committed baseline and the CI runner are different
machines, the comparison is **normalized** by default: every row's
current/baseline ratio is divided by the median ratio across all shared
rows, so a uniform machine-speed difference cancels out and only rows
that regressed *relative to the rest of the suite* trip the gate. Pass
``--absolute`` to compare raw ratios instead (same-machine trend
tracking). A uniform slowdown of the entire suite is invisible to the
normalized mode by construction — that is the price of
machine-portability, and the per-push artifacts still record absolute
numbers for offline inspection.

Exit codes: 0 = ok, 1 = regression (or baseline row missing from the
current report), 2 = usage/IO error.

Beyond per-row regressions, ``--require-ratio NUM:DEN:MIN`` (repeatable)
asserts structural speedups *within* the current report: the row named
``NUM`` must be at least ``MIN`` times the row named ``DEN`` — e.g.
``model_grid/cold:model_grid/warm:2.0`` enforces that the warm-started
coefficient-patch re-solves stay at least twice as fast as cold ones.
Ratios are machine-independent (both rows come from the same run), so
they hold absolutely, not merely relative to the suite.

``--require-row NAME`` (repeatable) asserts that the current report
contains a row named ``NAME``. The per-row comparison already flags
rows that exist in the baseline but vanished from the current run;
``--require-row`` is stronger — it pins the contract in the CI
invocation itself, so a row silently dropped from *both* the bench
suite and the regenerated baseline (the failure mode that cost us the
``simplex/warm_rhs`` row) still fails the gate.

Usage:
    bench_gate.py --baseline BENCH_engine.json --current fresh.json \
                  [--threshold 25] [--absolute] \
                  [--require-ratio num:den:min ...] \
                  [--require-row name ...]
    bench_gate.py --self-test
"""

import argparse
import json
import os
import statistics
import sys


def load_rows(path):
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    rows = {}
    for row in data:
        name, mean = row.get("name"), row.get("mean_ns")
        if not isinstance(name, str) or not isinstance(mean, (int, float)) or mean <= 0:
            raise ValueError(f"{path}: malformed row {row!r}")
        rows[name] = float(mean)
    if not rows:
        raise ValueError(f"{path}: empty report")
    return rows


def compare(baseline, current, threshold_pct, normalize):
    """Return (regressions, report_lines). A regression is
    (name, normalized_ratio); missing baseline rows are reported as
    regressions with ratio None."""
    shared = sorted(set(baseline) & set(current))
    missing = sorted(set(baseline) - set(current))
    new = sorted(set(current) - set(baseline))

    lines = []
    regressions = [(name, None) for name in missing]
    for name in missing:
        lines.append(f"MISSING  {name}: in baseline but not in current report")
    for name in new:
        lines.append(f"new      {name}: {current[name]:.0f} ns (no baseline yet)")

    if shared:
        ratios = {name: current[name] / baseline[name] for name in shared}
        scale = statistics.median(ratios.values()) if normalize else 1.0
        if normalize:
            lines.append(f"machine-speed normalization: median ratio {scale:.3f}")
        limit = 1.0 + threshold_pct / 100.0
        for name in shared:
            norm = ratios[name] / scale
            verdict = "ok"
            if norm > limit:
                verdict = "REGRESSED"
                regressions.append((name, norm))
            lines.append(
                f"{verdict:9}{name}: {baseline[name]:.0f} -> {current[name]:.0f} ns"
                f" ({'+' if norm >= 1 else ''}{100.0 * (norm - 1.0):.1f}% vs suite)"
            )
    return regressions, lines


def check_ratios(current, specs):
    """Return (failures, lines) for ``num:den:min`` ratio requirements
    evaluated against the current report (same machine, same run)."""
    failures = []
    lines = []
    for spec in specs:
        try:
            num, den, minimum = spec.rsplit(":", 2)
            minimum = float(minimum)
        except ValueError as exc:
            raise ValueError(f"bad --require-ratio {spec!r}: {exc}") from exc
        if num not in current or den not in current:
            missing = [r for r in (num, den) if r not in current]
            failures.append((spec, None))
            lines.append(f"RATIO    {spec}: missing row(s) {', '.join(missing)}")
            continue
        ratio = current[num] / current[den]
        ok = ratio >= minimum
        verdict = "ratio ok" if ok else "RATIO"
        lines.append(
            f"{verdict:9}{num} / {den} = {ratio:.2f}x (required >= {minimum:.2f}x)"
        )
        if not ok:
            failures.append((spec, ratio))
    return failures, lines


def check_required_rows(current, names):
    """Return (failures, lines): every name must be a row of the
    current report."""
    failures = []
    lines = []
    for name in names:
        if name in current:
            lines.append(f"row ok   {name}: {current[name]:.0f} ns")
        else:
            failures.append(name)
            lines.append(f"ROW      {name}: required row missing from current report")
    return failures, lines


def self_test():
    base = {"a": 100.0, "b": 200.0, "c": 1000.0}

    # Uniform 3x machine slowdown: normalized gate stays green.
    cur = {k: v * 3.0 for k, v in base.items()}
    regs, _ = compare(base, cur, 25.0, normalize=True)
    assert not regs, f"uniform slowdown tripped the gate: {regs}"

    # One row regresses 2x beyond the others: gate fires.
    cur = {"a": 100.0, "b": 200.0, "c": 2000.0}
    regs, _ = compare(base, cur, 25.0, normalize=True)
    assert [r[0] for r in regs] == ["c"], f"expected c to regress: {regs}"

    # Inside the threshold: green.
    cur = {"a": 110.0, "b": 200.0, "c": 1000.0}
    regs, _ = compare(base, cur, 25.0, normalize=True)
    assert not regs, f"noise tripped the gate: {regs}"

    # A deleted row is a failure (silent bench removal hides regressions).
    cur = {"a": 100.0, "b": 200.0}
    regs, _ = compare(base, cur, 25.0, normalize=True)
    assert [r[0] for r in regs] == ["c"], f"missing row not flagged: {regs}"

    # Absolute mode flags a uniform slowdown.
    cur = {k: v * 2.0 for k, v in base.items()}
    regs, _ = compare(base, cur, 25.0, normalize=False)
    assert len(regs) == 3, f"absolute mode missed the slowdown: {regs}"

    # Ratio requirements: cold/warm >= 2 holds, fires, and flags missing
    # rows.
    cur = {"grid/cold": 300.0, "grid/warm": 100.0}
    fails, _ = check_ratios(cur, ["grid/cold:grid/warm:2.0"])
    assert not fails, f"satisfied ratio tripped the gate: {fails}"
    cur = {"grid/cold": 150.0, "grid/warm": 100.0}
    fails, _ = check_ratios(cur, ["grid/cold:grid/warm:2.0"])
    assert len(fails) == 1, f"violated ratio not flagged: {fails}"
    fails, _ = check_ratios(cur, ["grid/cold:grid/missing:2.0"])
    assert len(fails) == 1, f"missing ratio row not flagged: {fails}"

    # Required rows: present rows pass, a row dropped from the bench
    # suite (and hence from a regenerated baseline) still fails.
    cur = {
        "simplex/cold": 20000.0,
        "simplex/warm_rhs": 4000.0,
        "simplex/warm_coeff": 1400.0,
    }
    fails, _ = check_required_rows(
        cur, ["simplex/cold", "simplex/warm_rhs", "simplex/warm_coeff"]
    )
    assert not fails, f"present required rows tripped the gate: {fails}"
    del cur["simplex/warm_rhs"]
    fails, _ = check_required_rows(
        cur, ["simplex/cold", "simplex/warm_rhs", "simplex/warm_coeff"]
    )
    assert fails == ["simplex/warm_rhs"], f"dropped row not flagged: {fails}"

    # The churn wiring: bench-smoke pins both feed-replay rows with
    # --require-row AND gates the incremental replay >= 2x under the
    # per-event cold rebuild with --require-ratio; exercise the exact
    # row names and spec the job passes.
    cur = {"churn/replay": 27_000_000.0, "churn/cold_replay": 91_000_000.0}
    fails, _ = check_ratios(cur, ["churn/cold_replay:churn/replay:2.0"])
    assert not fails, f"healthy churn ratio tripped the gate: {fails}"
    fails, _ = check_required_rows(cur, ["churn/replay", "churn/cold_replay"])
    assert not fails, f"present churn rows tripped the gate: {fails}"
    # A delta-path regression dragging the incremental replay within 2x
    # of cold fires the ratio gate even with both rows still present.
    cur = {"churn/replay": 60_000_000.0, "churn/cold_replay": 91_000_000.0}
    fails, _ = check_ratios(cur, ["churn/cold_replay:churn/replay:2.0"])
    assert len(fails) == 1, f"churn ratio regression not flagged: {fails}"
    # Dropping the incremental row (e.g. a bench refactor losing the
    # group) is caught by the row pin, not just the ratio's missing-row
    # path.
    fails, _ = check_required_rows(
        {"churn/cold_replay": 91_000_000.0}, ["churn/replay", "churn/cold_replay"]
    )
    assert fails == ["churn/replay"], f"dropped churn row not flagged: {fails}"

    # The bandwidth-objective churn rows ride the same wiring: both
    # pinned with --require-row, incremental >= 2x under cold via
    # --require-ratio; exercise the exact row names the job passes.
    cur = {"churn/bw_replay": 150_000_000.0, "churn/bw_cold_replay": 900_000_000.0}
    fails, _ = check_ratios(cur, ["churn/bw_cold_replay:churn/bw_replay:2.0"])
    assert not fails, f"healthy bw churn ratio tripped the gate: {fails}"
    fails, _ = check_required_rows(cur, ["churn/bw_replay", "churn/bw_cold_replay"])
    assert not fails, f"present bw churn rows tripped the gate: {fails}"
    cur = {"churn/bw_replay": 500_000_000.0, "churn/bw_cold_replay": 900_000_000.0}
    fails, _ = check_ratios(cur, ["churn/bw_cold_replay:churn/bw_replay:2.0"])
    assert len(fails) == 1, f"bw churn ratio regression not flagged: {fails}"
    fails, _ = check_required_rows(
        {"churn/bw_cold_replay": 900_000_000.0},
        ["churn/bw_replay", "churn/bw_cold_replay"],
    )
    assert fails == ["churn/bw_replay"], f"dropped bw churn row not flagged: {fails}"

    print("bench_gate self-test: ok")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", help="committed baseline JSON")
    parser.add_argument("--current", help="freshly generated JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("NEXIT_BENCH_GATE_PCT", "25")),
        help="allowed per-row regression in percent (default 25, "
        "or NEXIT_BENCH_GATE_PCT)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="compare raw ratios instead of normalizing by the median "
        "(use when baseline and current ran on the same machine)",
    )
    parser.add_argument(
        "--require-ratio",
        action="append",
        default=[],
        metavar="NUM:DEN:MIN",
        help="require current[NUM] / current[DEN] >= MIN (repeatable; "
        "evaluated within the current report, so machine-independent)",
    )
    parser.add_argument(
        "--require-row",
        action="append",
        default=[],
        metavar="NAME",
        help="require the current report to contain a row named NAME "
        "(repeatable; catches rows silently dropped from the bench suite)",
    )
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        self_test()
        return 0
    if not args.baseline or not args.current:
        parser.error("--baseline and --current are required (or --self-test)")

    try:
        baseline = load_rows(args.baseline)
        current = load_rows(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"bench_gate: {exc}", file=sys.stderr)
        return 2

    regressions, lines = compare(baseline, current, args.threshold, not args.absolute)
    try:
        ratio_failures, ratio_lines = check_ratios(current, args.require_ratio)
    except ValueError as exc:
        print(f"bench_gate: {exc}", file=sys.stderr)
        return 2
    row_failures, row_lines = check_required_rows(current, args.require_row)
    for line in lines + ratio_lines + row_lines:
        print(line)
    if regressions or ratio_failures or row_failures:
        if regressions:
            print(
                f"bench_gate: {len(regressions)} row(s) regressed beyond "
                f"{args.threshold:.0f}% (or went missing)",
                file=sys.stderr,
            )
        if ratio_failures:
            print(
                f"bench_gate: {len(ratio_failures)} required speedup "
                "ratio(s) not met",
                file=sys.stderr,
            )
        if row_failures:
            print(
                f"bench_gate: {len(row_failures)} required row(s) missing "
                "from the current report",
                file=sys.stderr,
            )
        return 1
    verdict = f"bench_gate: all rows within {args.threshold:.0f}%"
    if args.require_ratio:
        verdict += f"; {len(args.require_ratio)} ratio requirement(s) ok"
    if args.require_row:
        verdict += f"; {len(args.require_row)} required row(s) present"
    print(verdict)
    return 0


if __name__ == "__main__":
    sys.exit(main())
