//! The locally-selfish interconnection choices BGP produces today.
//!
//! * **Early-exit** (a.k.a. hot-potato): the upstream hands traffic off at
//!   the interconnection closest (by IGP weight) to the *source* PoP,
//!   minimizing its own resource use. This is the paper's default routing.
//! * **Late-exit** (consistently honored MEDs): traffic enters at the
//!   interconnection closest to the *destination* PoP — "simply the
//!   reverse of early-exit" (paper §2.2, Figure 1b).
//!
//! Ties are broken by lower interconnection id, deterministically.

use crate::dijkstra::ShortestPaths;
use nexit_topology::{IcxId, PairView, PopId};

/// The early-exit interconnection for a flow sourced at `src` in the
/// upstream ISP: minimizes upstream IGP distance from the source to the
/// exit PoP.
///
/// Panics if the pair has no interconnections.
pub fn early_exit(view: &PairView<'_>, sp_up: &ShortestPaths, src: PopId) -> IcxId {
    best_icx(view, |icx_id| {
        sp_up.distance(src, view.pair.interconnection(icx_id).pop_a)
    })
}

/// The late-exit interconnection for a flow destined to `dst` in the
/// downstream ISP: minimizes downstream IGP distance from the entry PoP to
/// the destination.
pub fn late_exit(view: &PairView<'_>, sp_down: &ShortestPaths, dst: PopId) -> IcxId {
    best_icx(view, |icx_id| {
        sp_down.distance(view.pair.interconnection(icx_id).pop_b, dst)
    })
}

fn best_icx(view: &PairView<'_>, mut cost: impl FnMut(IcxId) -> f64) -> IcxId {
    assert!(
        view.num_interconnections() > 0,
        "pair has no interconnections"
    );
    let mut best = IcxId::new(0);
    let mut best_cost = cost(best);
    for i in 1..view.num_interconnections() {
        let id = IcxId::new(i);
        let c = cost(id);
        if c < best_cost {
            best = id;
            best_cost = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexit_topology::{GeoPoint, Interconnection, IspId, IspPair, IspTopology, Link, Pop};

    fn pop(city: &str, lon: f64) -> Pop {
        Pop {
            city: city.into(),
            geo: GeoPoint::new(0.0, lon),
            weight: 1.0,
        }
    }

    fn line(id: u32, n: usize, km: f64) -> IspTopology {
        let pops = (0..n).map(|i| pop(&format!("c{i}"), i as f64)).collect();
        let links = (0..n - 1)
            .map(|i| Link {
                a: PopId::new(i),
                b: PopId::new(i + 1),
                weight: km,
                length_km: km,
            })
            .collect();
        IspTopology::new(IspId(id), format!("L{id}"), pops, links, false).unwrap()
    }

    fn pair_with_end_icx() -> (IspTopology, IspTopology, IspPair) {
        let a = line(0, 4, 100.0);
        let b = line(1, 4, 100.0);
        let pair = IspPair::new(
            &a,
            &b,
            vec![
                Interconnection {
                    pop_a: PopId(0),
                    pop_b: PopId(0),
                    length_km: 1.0,
                },
                Interconnection {
                    pop_a: PopId(3),
                    pop_b: PopId(3),
                    length_km: 1.0,
                },
            ],
        )
        .unwrap();
        (a, b, pair)
    }

    #[test]
    fn early_exit_picks_closest_to_source() {
        let (a, b, pair) = pair_with_end_icx();
        let view = PairView::new(&a, &b, &pair);
        let sp_a = ShortestPaths::compute(&a);
        assert_eq!(early_exit(&view, &sp_a, PopId(0)), IcxId(0));
        assert_eq!(early_exit(&view, &sp_a, PopId(1)), IcxId(0));
        assert_eq!(early_exit(&view, &sp_a, PopId(2)), IcxId(1));
        assert_eq!(early_exit(&view, &sp_a, PopId(3)), IcxId(1));
    }

    #[test]
    fn late_exit_picks_closest_to_destination() {
        let (a, b, pair) = pair_with_end_icx();
        let view = PairView::new(&a, &b, &pair);
        let sp_b = ShortestPaths::compute(&b);
        assert_eq!(late_exit(&view, &sp_b, PopId(0)), IcxId(0));
        assert_eq!(late_exit(&view, &sp_b, PopId(3)), IcxId(1));
    }

    #[test]
    fn equidistant_tie_breaks_to_lower_id() {
        // Source exactly in the middle of a 3-pop line with icx at both ends.
        let a = line(0, 3, 100.0);
        let b = line(1, 3, 100.0);
        let pair = IspPair::new(
            &a,
            &b,
            vec![
                Interconnection {
                    pop_a: PopId(0),
                    pop_b: PopId(0),
                    length_km: 1.0,
                },
                Interconnection {
                    pop_a: PopId(2),
                    pop_b: PopId(2),
                    length_km: 1.0,
                },
            ],
        )
        .unwrap();
        let view = PairView::new(&a, &b, &pair);
        let sp_a = ShortestPaths::compute(&a);
        assert_eq!(early_exit(&view, &sp_a, PopId(1)), IcxId(0));
    }

    #[test]
    fn early_and_late_are_mirror_policies() {
        let (a, b, pair) = pair_with_end_icx();
        let view = PairView::new(&a, &b, &pair);
        let sp_a = ShortestPaths::compute(&a);
        let sp_b = ShortestPaths::compute(&b);
        // For this symmetric ladder, early exit from src i equals late exit
        // to dst i.
        for i in 0..4 {
            assert_eq!(
                early_exit(&view, &sp_a, PopId(i)),
                late_exit(&view, &sp_b, PopId(i))
            );
        }
    }
}
