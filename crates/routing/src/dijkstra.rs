//! All-pairs shortest paths by repeated Dijkstra.
//!
//! PoP-level topologies are tiny (≤ ~50 nodes), so we precompute the full
//! distance and predecessor matrices once per ISP and answer every later
//! query in O(1) / O(path length). Ties are broken deterministically —
//! lower predecessor PoP index wins — so two runs of any experiment
//! produce identical paths.

use nexit_topology::{IspTopology, LinkId, PopId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Precomputed shortest paths for one ISP topology.
///
/// Distances are over link *weights* (the IGP metric); the geographic
/// length of the resulting path is exposed separately because the distance
/// experiments measure kilometres, not metric units.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    n: usize,
    /// `dist[s*n + t]` = weight-distance from s to t.
    dist: Vec<f64>,
    /// `length_km[s*n + t]` = geographic length (km) of the chosen path.
    length_km: Vec<f64>,
    /// `pred[s*n + t]` = link taken *into* t on the path from s, or
    /// `LinkId(u32::MAX)` for t == s.
    pred: Vec<LinkId>,
}

const NO_LINK: LinkId = LinkId(u32::MAX);

/// Heap entry ordered as a min-heap over (distance, pop index).
#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    pop: PopId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap; tie-break on pop index for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.pop.cmp(&self.pop))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl ShortestPaths {
    /// Compute all-pairs shortest paths for `isp`.
    ///
    /// Panics if any link weight is negative or NaN (validated topologies
    /// never contain such weights).
    pub fn compute(isp: &IspTopology) -> Self {
        let n = isp.num_pops();
        for (_, l) in isp.links() {
            assert!(
                l.weight >= 0.0 && l.weight.is_finite(),
                "invalid link weight {}",
                l.weight
            );
        }
        let mut dist = vec![f64::INFINITY; n * n];
        let mut length_km = vec![f64::INFINITY; n * n];
        let mut pred = vec![NO_LINK; n * n];
        // One settled-marker vec and one heap shared across the n
        // sources, cleared in place per source.
        let mut done = vec![false; n];
        let mut heap = BinaryHeap::with_capacity(n);
        for s in 0..n {
            Self::single_source(
                isp,
                PopId::new(s),
                &mut dist[s * n..(s + 1) * n],
                &mut length_km[s * n..(s + 1) * n],
                &mut pred[s * n..(s + 1) * n],
                &mut done,
                &mut heap,
            );
        }
        Self {
            n,
            dist,
            length_km,
            pred,
        }
    }

    fn single_source(
        isp: &IspTopology,
        source: PopId,
        dist: &mut [f64],
        length_km: &mut [f64],
        pred: &mut [LinkId],
        done: &mut [bool],
        heap: &mut BinaryHeap<HeapEntry>,
    ) {
        dist[source.index()] = 0.0;
        length_km[source.index()] = 0.0;
        done.fill(false);
        heap.clear();
        heap.push(HeapEntry {
            dist: 0.0,
            pop: source,
        });
        while let Some(HeapEntry { dist: d, pop: u }) = heap.pop() {
            if done[u.index()] {
                continue;
            }
            done[u.index()] = true;
            for &lid in isp.incident_links(u) {
                let link = isp.link(lid);
                let v = link.opposite(u).expect("adjacency index corrupt");
                let nd = d + link.weight;
                // Tie-break updates are only safe while v is unsettled;
                // rewriting pred after v's neighbors were relaxed would
                // desynchronize pred from dist.
                let better = nd < dist[v.index()]
                    || (!done[v.index()]
                        && nd == dist[v.index()]
                        && pred[v.index()] != NO_LINK
                        && tie_break(isp, lid, pred[v.index()], v));
                if better {
                    dist[v.index()] = nd;
                    length_km[v.index()] = length_km[u.index()] + link.length_km;
                    pred[v.index()] = lid;
                    heap.push(HeapEntry { dist: nd, pop: v });
                }
            }
        }
    }

    /// Weight-distance from `s` to `t` (`f64::INFINITY` if unreachable,
    /// which cannot happen for validated topologies).
    #[inline]
    pub fn distance(&self, s: PopId, t: PopId) -> f64 {
        self.dist[s.index() * self.n + t.index()]
    }

    /// Geographic length in km of the shortest (by weight) path `s -> t`.
    #[inline]
    pub fn path_length_km(&self, s: PopId, t: PopId) -> f64 {
        self.length_km[s.index() * self.n + t.index()]
    }

    /// The links of the shortest path from `s` to `t`, in travel order.
    /// Empty when `s == t`.
    pub fn path_links(&self, isp: &IspTopology, s: PopId, t: PopId) -> Vec<LinkId> {
        let mut links = Vec::new();
        self.path_links_into(isp, s, t, &mut links);
        links
    }

    /// [`ShortestPaths::path_links`] into a caller-provided buffer:
    /// **appends** the path's links in travel order (nothing for
    /// `s == t`), so hot per-flow loops can extract many paths into one
    /// reused (or flat, offset-indexed) buffer without allocating per
    /// query.
    pub fn path_links_into(&self, isp: &IspTopology, s: PopId, t: PopId, out: &mut Vec<LinkId>) {
        let start = out.len();
        let mut cur = t;
        while cur != s {
            let lid = self.pred[s.index() * self.n + cur.index()];
            assert_ne!(lid, NO_LINK, "no path from {s} to {t}");
            out.push(lid);
            cur = isp
                .link(lid)
                .opposite(cur)
                .expect("predecessor link does not touch node");
        }
        out[start..].reverse();
    }

    /// Number of PoPs this matrix covers.
    #[inline]
    pub fn num_pops(&self) -> usize {
        self.n
    }
}

/// Deterministic tie-break: when two equal-weight paths reach `v`, prefer
/// the link whose far endpoint has the lower PoP index, then the lower
/// link id. This keeps path selection stable across runs and platforms.
fn tie_break(isp: &IspTopology, candidate: LinkId, incumbent: LinkId, v: PopId) -> bool {
    let cu = isp.link(candidate).opposite(v).expect("bad candidate");
    let iu = isp.link(incumbent).opposite(v).expect("bad incumbent");
    (cu, candidate) < (iu, incumbent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexit_topology::{GeoPoint, IspId, Link, Pop};

    fn pop(city: &str, lat: f64, lon: f64) -> Pop {
        Pop {
            city: city.into(),
            geo: GeoPoint::new(lat, lon),
            weight: 1.0,
        }
    }

    fn link(a: u32, b: u32, w: f64) -> Link {
        Link {
            a: PopId(a),
            b: PopId(b),
            weight: w,
            length_km: w * 100.0,
        }
    }

    /// 0 --1-- 1 --1-- 2
    ///  \______3______/
    fn diamond() -> IspTopology {
        IspTopology::new(
            IspId(0),
            "d",
            vec![pop("a", 0.0, 0.0), pop("b", 0.0, 1.0), pop("c", 0.0, 2.0)],
            vec![link(0, 1, 1.0), link(1, 2, 1.0), link(0, 2, 3.0)],
            false,
        )
        .unwrap()
    }

    #[test]
    fn distances() {
        let isp = diamond();
        let sp = ShortestPaths::compute(&isp);
        assert_eq!(sp.distance(PopId(0), PopId(0)), 0.0);
        assert_eq!(sp.distance(PopId(0), PopId(1)), 1.0);
        assert_eq!(sp.distance(PopId(0), PopId(2)), 2.0); // via b, not direct 3.0
        assert_eq!(sp.distance(PopId(2), PopId(0)), 2.0); // symmetric graph
    }

    #[test]
    fn path_extraction() {
        let isp = diamond();
        let sp = ShortestPaths::compute(&isp);
        let path = sp.path_links(&isp, PopId(0), PopId(2));
        assert_eq!(path, vec![LinkId(0), LinkId(1)]);
        assert!(sp.path_links(&isp, PopId(1), PopId(1)).is_empty());
    }

    #[test]
    fn path_length_tracks_links() {
        let isp = diamond();
        let sp = ShortestPaths::compute(&isp);
        assert!((sp.path_length_km(PopId(0), PopId(2)) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two equal-cost two-hop paths 0->3: via 1 or via 2. The tie-break
        // must always pick via pop 1 (lower index).
        let isp = IspTopology::new(
            IspId(0),
            "tie",
            vec![
                pop("a", 0.0, 0.0),
                pop("b", 0.0, 1.0),
                pop("c", 1.0, 0.0),
                pop("d", 1.0, 1.0),
            ],
            vec![
                link(0, 1, 1.0),
                link(0, 2, 1.0),
                link(1, 3, 1.0),
                link(2, 3, 1.0),
            ],
            false,
        )
        .unwrap();
        for _ in 0..5 {
            let sp = ShortestPaths::compute(&isp);
            let path = sp.path_links(&isp, PopId(0), PopId(3));
            assert_eq!(path, vec![LinkId(0), LinkId(2)], "must route via pop 1");
        }
    }

    #[test]
    fn single_pop_isp() {
        let isp =
            IspTopology::new(IspId(0), "one", vec![pop("a", 0.0, 0.0)], vec![], false).unwrap();
        let sp = ShortestPaths::compute(&isp);
        assert_eq!(sp.distance(PopId(0), PopId(0)), 0.0);
        assert!(sp.path_links(&isp, PopId(0), PopId(0)).is_empty());
    }

    #[test]
    fn multigraph_parallel_links() {
        // Two parallel links 0-1 with different weights; must use the lighter.
        let isp = IspTopology::new(
            IspId(0),
            "par",
            vec![pop("a", 0.0, 0.0), pop("b", 0.0, 1.0)],
            vec![link(0, 1, 5.0), link(0, 1, 2.0)],
            false,
        )
        .unwrap();
        let sp = ShortestPaths::compute(&isp);
        assert_eq!(sp.distance(PopId(0), PopId(1)), 2.0);
        assert_eq!(sp.path_links(&isp, PopId(0), PopId(1)), vec![LinkId(1)]);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// Random connected graph: a path 0-1-..-(n-1) plus extra edges.
        fn arb_topology() -> impl Strategy<Value = IspTopology> {
            (
                3usize..12,
                proptest::collection::vec((0usize..12, 0usize..12, 1u32..100), 0..12),
            )
                .prop_map(|(n, extra)| {
                    let pops = (0..n)
                        .map(|i| pop(&format!("p{i}"), 0.0, i as f64 * 0.1))
                        .collect();
                    let mut links: Vec<Link> = (0..n - 1)
                        .map(|i| link(i as u32, i as u32 + 1, 1.0 + (i % 3) as f64))
                        .collect();
                    for (a, b, w) in extra {
                        let (a, b) = (a % n, b % n);
                        if a != b {
                            links.push(link(a as u32, b as u32, w as f64 / 10.0));
                        }
                    }
                    IspTopology::new(IspId(0), "rand", pops, links, false).unwrap()
                })
        }

        proptest! {
            #[test]
            fn triangle_inequality(isp in arb_topology()) {
                let sp = ShortestPaths::compute(&isp);
                let n = isp.num_pops();
                for a in 0..n {
                    for b in 0..n {
                        for c in 0..n {
                            let (a, b, c) = (PopId::new(a), PopId::new(b), PopId::new(c));
                            prop_assert!(
                                sp.distance(a, b) <= sp.distance(a, c) + sp.distance(c, b) + 1e-9
                            );
                        }
                    }
                }
            }

            #[test]
            fn paths_are_consistent_with_distances(isp in arb_topology()) {
                let sp = ShortestPaths::compute(&isp);
                let n = isp.num_pops();
                for s in 0..n {
                    for t in 0..n {
                        let (s, t) = (PopId::new(s), PopId::new(t));
                        let path = sp.path_links(&isp, s, t);
                        let total: f64 = path.iter().map(|&l| isp.link(l).weight).sum();
                        prop_assert!((total - sp.distance(s, t)).abs() < 1e-9,
                            "path weight {} != distance {}", total, sp.distance(s, t));
                        // path must be a connected walk from s to t
                        let mut cur = s;
                        for &lid in &path {
                            cur = isp.link(lid).opposite(cur).expect("disconnected walk");
                        }
                        prop_assert_eq!(cur, t);
                    }
                }
            }

            #[test]
            fn symmetric_for_undirected(isp in arb_topology()) {
                let sp = ShortestPaths::compute(&isp);
                let n = isp.num_pops();
                for s in 0..n {
                    for t in 0..n {
                        let (s, t) = (PopId::new(s), PopId::new(t));
                        prop_assert!((sp.distance(s, t) - sp.distance(t, s)).abs() < 1e-9);
                    }
                }
            }
        }
    }
}
