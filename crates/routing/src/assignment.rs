//! Flow-to-interconnection assignments.
//!
//! Every routing method in the workspace — default (early-exit), globally
//! optimal, negotiated, filtered, unilateral — produces the same output
//! type: an [`Assignment`] mapping each flow of a [`crate::PairFlows`] set
//! to the interconnection it uses. Metrics and comparisons all operate on
//! assignments, so methods are interchangeable everywhere.

use crate::dijkstra::ShortestPaths;
use crate::exits::early_exit;
use crate::flowpath::{FlowId, PairFlows};
use nexit_topology::{IcxId, PairView, PopId};

/// A complete mapping of flows to interconnections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    choices: Vec<IcxId>,
}

impl Assignment {
    /// An assignment where every flow uses `icx`.
    pub fn uniform(num_flows: usize, icx: IcxId) -> Self {
        Self {
            choices: vec![icx; num_flows],
        }
    }

    /// Build from an explicit choice vector.
    pub fn from_choices(choices: Vec<IcxId>) -> Self {
        Self { choices }
    }

    /// The early-exit (default BGP) assignment for a flow set.
    pub fn early_exit(view: &PairView<'_>, sp_up: &ShortestPaths, flows: &PairFlows) -> Self {
        // Early exit depends only on the source PoP; memoize per source.
        let mut cache: Vec<Option<IcxId>> = vec![None; view.a.num_pops()];
        let choices = flows
            .flows
            .iter()
            .map(|f| *cache[f.src.index()].get_or_insert_with(|| early_exit(view, sp_up, f.src)))
            .collect();
        Self { choices }
    }

    /// The interconnection assigned to `flow`.
    #[inline]
    pub fn choice(&self, flow: FlowId) -> IcxId {
        self.choices[flow.index()]
    }

    /// Reassign one flow.
    #[inline]
    pub fn set(&mut self, flow: FlowId, icx: IcxId) {
        self.choices[flow.index()] = icx;
    }

    /// Number of flows covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// True when the assignment covers no flows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// Iterator over `(FlowId, IcxId)`.
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, IcxId)> + '_ {
        self.choices
            .iter()
            .enumerate()
            .map(|(i, &c)| (FlowId::new(i), c))
    }

    /// Raw choice slice.
    pub fn choices(&self) -> &[IcxId] {
        &self.choices
    }

    /// Flows whose choice differs from `other` (the "non-default routed"
    /// flows of the paper's flow-fraction analysis).
    pub fn diff(&self, other: &Assignment) -> Vec<FlowId> {
        assert_eq!(
            self.len(),
            other.len(),
            "assignments cover different flow sets"
        );
        self.choices
            .iter()
            .zip(&other.choices)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| FlowId::new(i))
            .collect()
    }

    /// Translate an assignment made against a reduced pair (after an
    /// interconnection failure renumbered ids) back to the original pair's
    /// id space, using the mapping from
    /// [`nexit_topology::IspPair::without_interconnection`].
    ///
    /// `mapping[old] = Some(new)`; this function inverts it.
    pub fn translate_to_original(&self, mapping: &[Option<IcxId>]) -> Assignment {
        let mut inverse = vec![None; mapping.len()];
        for (old, new) in mapping.iter().enumerate() {
            if let Some(new) = new {
                inverse[new.index()] = Some(IcxId::new(old));
            }
        }
        Assignment {
            choices: self
                .choices
                .iter()
                .map(|c| inverse[c.index()].expect("choice not present in mapping"))
                .collect(),
        }
    }
}

/// Total end-to-end geographic distance (volume-weighted) of an assignment:
/// the paper's steady-state quality metric ("sum of path lengths of all
/// flows", §5.1).
pub fn total_distance_km(flows: &PairFlows, assignment: &Assignment) -> f64 {
    flows
        .iter()
        .map(|(id, f, m)| f.volume * m.total_km(assignment.choice(id)))
        .sum()
}

/// Distance inside one side only (upstream if `upstream` is true),
/// volume-weighted — the per-ISP view used for individual gains.
pub fn side_distance_km(flows: &PairFlows, assignment: &Assignment, upstream: bool) -> f64 {
    flows
        .iter()
        .map(|(id, f, m)| {
            let icx = assignment.choice(id);
            let side = if upstream {
                m.up_km[icx.index()]
            } else {
                m.down_km[icx.index()]
            };
            f.volume * side
        })
        .sum()
}

/// Convenience: the early-exit source PoP → interconnection table for a
/// pair (exposed for tests and the protocol agents).
pub fn early_exit_table(view: &PairView<'_>, sp_up: &ShortestPaths) -> Vec<IcxId> {
    (0..view.a.num_pops())
        .map(|s| early_exit(view, sp_up, PopId::new(s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexit_topology::{GeoPoint, Interconnection, IspId, IspPair, IspTopology, Link, Pop};

    fn pop(city: &str, lon: f64) -> Pop {
        Pop {
            city: city.into(),
            geo: GeoPoint::new(0.0, lon),
            weight: 1.0,
        }
    }

    fn line(id: u32, n: usize) -> IspTopology {
        let pops = (0..n).map(|i| pop(&format!("c{i}"), i as f64)).collect();
        let links = (0..n - 1)
            .map(|i| Link {
                a: PopId::new(i),
                b: PopId::new(i + 1),
                weight: 100.0,
                length_km: 100.0,
            })
            .collect();
        IspTopology::new(IspId(id), format!("L{id}"), pops, links, false).unwrap()
    }

    fn setup() -> (IspTopology, IspTopology, IspPair) {
        let a = line(0, 3);
        let b = line(1, 3);
        let pair = IspPair::new(
            &a,
            &b,
            vec![
                Interconnection {
                    pop_a: PopId(0),
                    pop_b: PopId(0),
                    length_km: 0.0,
                },
                Interconnection {
                    pop_a: PopId(2),
                    pop_b: PopId(2),
                    length_km: 0.0,
                },
            ],
        )
        .unwrap();
        (a, b, pair)
    }

    #[test]
    fn early_exit_assignment_matches_per_flow_exits() {
        let (a, b, pair) = setup();
        let view = PairView::new(&a, &b, &pair);
        let sp_a = ShortestPaths::compute(&a);
        let sp_b = ShortestPaths::compute(&b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let asg = Assignment::early_exit(&view, &sp_a, &flows);
        for (id, f, _) in flows.iter() {
            assert_eq!(asg.choice(id), early_exit(&view, &sp_a, f.src));
        }
    }

    #[test]
    fn total_distance_counts_all_segments() {
        let (a, b, pair) = setup();
        let view = PairView::new(&a, &b, &pair);
        let sp_a = ShortestPaths::compute(&a);
        let sp_b = ShortestPaths::compute(&b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        // All flows through icx 0: upstream distance = 100*src, downstream
        // distance = 100*dst.
        let asg = Assignment::uniform(flows.len(), IcxId(0));
        let expect: f64 = flows
            .flows
            .iter()
            .map(|f| 100.0 * (f.src.index() + f.dst.index()) as f64)
            .sum();
        assert!((total_distance_km(&flows, &asg) - expect).abs() < 1e-9);
        // Side views sum to the total minus icx length (0 here).
        let up = side_distance_km(&flows, &asg, true);
        let down = side_distance_km(&flows, &asg, false);
        assert!((up + down - expect).abs() < 1e-9);
    }

    #[test]
    fn diff_finds_changed_flows() {
        let (a, b, pair) = setup();
        let view = PairView::new(&a, &b, &pair);
        let sp_a = ShortestPaths::compute(&a);
        let sp_b = ShortestPaths::compute(&b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let base = Assignment::uniform(flows.len(), IcxId(0));
        let mut other = base.clone();
        other.set(FlowId(3), IcxId(1));
        other.set(FlowId(7), IcxId(1));
        assert_eq!(base.diff(&other), vec![FlowId(3), FlowId(7)]);
        assert!(base.diff(&base).is_empty());
    }

    #[test]
    fn translate_assignment_back_after_failure() {
        let (a, b, pair) = setup();
        let (reduced, mapping) = pair.without_interconnection(nexit_topology::IcxId(0));
        assert_eq!(reduced.num_interconnections(), 1);
        // Assignment on the reduced pair: everything on (new) icx 0, which
        // is original icx 1.
        let asg = Assignment::uniform(4, IcxId(0));
        let orig = asg.translate_to_original(&mapping);
        assert!(orig.iter().all(|(_, c)| c == IcxId(1)));
        let _ = (a, b);
    }

    #[test]
    fn volume_weighting_matters() {
        let (a, b, pair) = setup();
        let view = PairView::new(&a, &b, &pair);
        let sp_a = ShortestPaths::compute(&a);
        let sp_b = ShortestPaths::compute(&b);
        let heavy = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 2.0);
        let light = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let asg = Assignment::uniform(heavy.len(), IcxId(0));
        assert!(
            (total_distance_km(&heavy, &asg) - 2.0 * total_distance_km(&light, &asg)).abs() < 1e-9
        );
    }
}
