//! Intradomain routing substrate and cross-ISP flow paths.
//!
//! The paper assumes each ISP routes internally along shortest paths over
//! its IGP link weights, and that a *flow* (source PoP in one ISP →
//! destination PoP in the other) crosses exactly one interconnection. A
//! flow's end-to-end path is therefore three segments:
//!
//! ```text
//! src --(shortest path in upstream)--> exit PoP ==icx==> entry PoP --(shortest path in downstream)--> dst
//! ```
//!
//! This crate provides:
//!
//! * [`ShortestPaths`] — all-pairs shortest paths for one ISP, computed by
//!   repeated Dijkstra with deterministic tie-breaking, with distance
//!   lookups and path (link-sequence) extraction,
//! * [`exits`] — the upstream-local **early-exit** and downstream-local
//!   **late-exit** interconnection choices that BGP produces today,
//! * [`flowpath`] — assembled per-flow, per-interconnection paths with
//!   their distance decomposition, the object every optimizer and the
//!   negotiation engine consume,
//! * [`Assignment`] — a complete mapping of flows to interconnections,
//!   the output format shared by default, optimal and negotiated routing.

pub mod assignment;
pub mod dijkstra;
pub mod exits;
pub mod flowpath;

pub use assignment::Assignment;
pub use dijkstra::ShortestPaths;
pub use exits::{early_exit, late_exit};
pub use flowpath::{
    flow_links, flow_links_into, flow_metrics, Flow, FlowId, FlowMetrics, PairFlows,
};
