//! Flows and their per-interconnection path metrics.
//!
//! A *flow* is the unit of negotiation: a stream of packets from a source
//! PoP in the upstream ISP to a destination PoP in the downstream ISP
//! (paper §4). Every flow has one *alternative* per interconnection, and
//! each alternative fully determines the flow's path: shortest path to the
//! exit PoP inside the upstream, the interconnection itself, and shortest
//! path from the entry PoP inside the downstream.

use crate::dijkstra::ShortestPaths;
use nexit_topology::{IcxId, LinkId, PairView, PopId};

/// Index of a flow within one [`PairFlows`] set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u32);

impl FlowId {
    /// Construct from a `usize` index.
    #[inline]
    pub fn new(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize);
        Self(i as u32)
    }

    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for FlowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flow{}", self.0)
    }
}

/// One directed traffic flow from the upstream (A side) to the downstream
/// (B side) of a pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flow {
    /// Source PoP in the upstream ISP.
    pub src: PopId,
    /// Destination PoP in the downstream ISP.
    pub dst: PopId,
    /// Traffic volume in arbitrary units (gravity-model weight product for
    /// the bandwidth experiments; 1.0 for pure distance experiments).
    pub volume: f64,
}

/// Distance decomposition of one flow over every alternative.
///
/// All vectors are indexed by [`IcxId`]: `up_km[i]` is the geographic
/// length the flow travels inside the upstream ISP when using
/// interconnection `i`, and so on.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowMetrics {
    /// Kilometres inside the upstream ISP, per alternative.
    pub up_km: Vec<f64>,
    /// Kilometres inside the downstream ISP, per alternative.
    pub down_km: Vec<f64>,
    /// Kilometres of the interconnection itself, per alternative.
    pub icx_km: Vec<f64>,
}

impl FlowMetrics {
    /// Total end-to-end kilometres for alternative `icx`.
    #[inline]
    pub fn total_km(&self, icx: IcxId) -> f64 {
        self.up_km[icx.index()] + self.down_km[icx.index()] + self.icx_km[icx.index()]
    }

    /// Number of alternatives.
    #[inline]
    pub fn num_alternatives(&self) -> usize {
        self.up_km.len()
    }
}

/// The full flow set of one directed pair experiment: one flow per
/// (upstream PoP, downstream PoP) combination, in row-major order
/// (`src.index() * |B| + dst.index()`), plus per-flow metrics.
#[derive(Debug, Clone)]
pub struct PairFlows {
    /// All flows.
    pub flows: Vec<Flow>,
    /// Per-flow distance metrics, parallel to `flows`.
    pub metrics: Vec<FlowMetrics>,
}

impl PairFlows {
    /// Build the complete flow set for a directed pair (A upstream).
    ///
    /// `volume_of(src, dst)` supplies flow sizes; pass `|_, _| 1.0` for
    /// unweighted distance experiments.
    pub fn build(
        view: &PairView<'_>,
        sp_up: &ShortestPaths,
        sp_down: &ShortestPaths,
        mut volume_of: impl FnMut(PopId, PopId) -> f64,
    ) -> Self {
        let mut flows = Vec::with_capacity(view.a.num_pops() * view.b.num_pops());
        let mut metrics = Vec::with_capacity(flows.capacity());
        for (src, _) in view.a.pops() {
            for (dst, _) in view.b.pops() {
                flows.push(Flow {
                    src,
                    dst,
                    volume: volume_of(src, dst),
                });
                metrics.push(flow_metrics(view, sp_up, sp_down, src, dst));
            }
        }
        Self { flows, metrics }
    }

    /// Number of flows.
    #[inline]
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when there are no flows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Iterator over `(FlowId, &Flow, &FlowMetrics)`.
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, &Flow, &FlowMetrics)> {
        self.flows
            .iter()
            .zip(&self.metrics)
            .enumerate()
            .map(|(i, (f, m))| (FlowId::new(i), f, m))
    }

    /// Total traffic volume across all flows.
    pub fn total_volume(&self) -> f64 {
        self.flows.iter().map(|f| f.volume).sum()
    }
}

/// Compute the distance decomposition of one flow over every alternative.
pub fn flow_metrics(
    view: &PairView<'_>,
    sp_up: &ShortestPaths,
    sp_down: &ShortestPaths,
    src: PopId,
    dst: PopId,
) -> FlowMetrics {
    let k = view.num_interconnections();
    let mut up_km = Vec::with_capacity(k);
    let mut down_km = Vec::with_capacity(k);
    let mut icx_km = Vec::with_capacity(k);
    for (_, icx) in view.pair.interconnections() {
        up_km.push(sp_up.path_length_km(src, icx.pop_a));
        down_km.push(sp_down.path_length_km(icx.pop_b, dst));
        icx_km.push(icx.length_km);
    }
    FlowMetrics {
        up_km,
        down_km,
        icx_km,
    }
}

/// The sequence of intra-ISP links a flow traverses for a given
/// alternative, split into (upstream links, downstream links).
pub fn flow_links(
    view: &PairView<'_>,
    sp_up: &ShortestPaths,
    sp_down: &ShortestPaths,
    flow: &Flow,
    icx: IcxId,
) -> (Vec<LinkId>, Vec<LinkId>) {
    let (mut up, mut down) = (Vec::new(), Vec::new());
    flow_links_into(view, sp_up, sp_down, flow, icx, &mut up, &mut down);
    (up, down)
}

/// [`flow_links`] into caller-provided buffers: **appends** the upstream
/// and downstream link sequences, so per-(flow, alternative) loops can
/// build flat path tables without a `Vec` allocation per query.
pub fn flow_links_into(
    view: &PairView<'_>,
    sp_up: &ShortestPaths,
    sp_down: &ShortestPaths,
    flow: &Flow,
    icx: IcxId,
    up: &mut Vec<LinkId>,
    down: &mut Vec<LinkId>,
) {
    let x = view.pair.interconnection(icx);
    sp_up.path_links_into(view.a, flow.src, x.pop_a, up);
    sp_down.path_links_into(view.b, x.pop_b, flow.dst, down);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexit_topology::{GeoPoint, Interconnection, IspId, IspPair, IspTopology, Link, Pop};

    fn pop(city: &str, lon: f64) -> Pop {
        Pop {
            city: city.into(),
            geo: GeoPoint::new(0.0, lon),
            weight: 1.0,
        }
    }

    fn link(a: u32, b: u32, km: f64) -> Link {
        Link {
            a: PopId(a),
            b: PopId(b),
            weight: km,
            length_km: km,
        }
    }

    /// Two parallel 3-PoP line ISPs joined at both ends.
    ///
    /// A: a0 -100- a1 -100- a2
    ///    |                 |
    /// B: b0 -100- b1 -100- b2
    fn ladder() -> (IspTopology, IspTopology, IspPair) {
        let a = IspTopology::new(
            IspId(0),
            "A",
            vec![pop("x", 0.0), pop("y", 1.0), pop("z", 2.0)],
            vec![link(0, 1, 100.0), link(1, 2, 100.0)],
            false,
        )
        .unwrap();
        let b = IspTopology::new(
            IspId(1),
            "B",
            vec![pop("x", 0.0), pop("y", 1.0), pop("z", 2.0)],
            vec![link(0, 1, 100.0), link(1, 2, 100.0)],
            false,
        )
        .unwrap();
        let pair = IspPair::new(
            &a,
            &b,
            vec![
                Interconnection {
                    pop_a: PopId(0),
                    pop_b: PopId(0),
                    length_km: 5.0,
                },
                Interconnection {
                    pop_a: PopId(2),
                    pop_b: PopId(2),
                    length_km: 5.0,
                },
            ],
        )
        .unwrap();
        (a, b, pair)
    }

    #[test]
    fn metrics_decompose_correctly() {
        let (a, b, pair) = ladder();
        let view = PairView::new(&a, &b, &pair);
        let sp_a = ShortestPaths::compute(&a);
        let sp_b = ShortestPaths::compute(&b);
        // Flow a0 -> b2.
        let m = flow_metrics(&view, &sp_a, &sp_b, PopId(0), PopId(2));
        // Via icx 0 (at x): 0 km upstream, 200 downstream.
        assert_eq!(m.up_km[0], 0.0);
        assert_eq!(m.down_km[0], 200.0);
        assert_eq!(m.total_km(IcxId(0)), 205.0);
        // Via icx 1 (at z): 200 upstream, 0 downstream.
        assert_eq!(m.up_km[1], 200.0);
        assert_eq!(m.down_km[1], 0.0);
        assert_eq!(m.total_km(IcxId(1)), 205.0);
    }

    #[test]
    fn build_full_flow_set() {
        let (a, b, pair) = ladder();
        let view = PairView::new(&a, &b, &pair);
        let sp_a = ShortestPaths::compute(&a);
        let sp_b = ShortestPaths::compute(&b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |s, d| {
            (s.index() + 1) as f64 * (d.index() + 1) as f64
        });
        assert_eq!(flows.len(), 9);
        assert!(!flows.is_empty());
        // Row-major ordering.
        assert_eq!(flows.flows[0].src, PopId(0));
        assert_eq!(flows.flows[0].dst, PopId(0));
        assert_eq!(flows.flows[5].src, PopId(1));
        assert_eq!(flows.flows[5].dst, PopId(2));
        // Gravity-ish volumes.
        assert_eq!(flows.flows[8].volume, 9.0);
        assert_eq!(flows.total_volume(), 36.0);
    }

    #[test]
    fn flow_links_reconstruct_paths() {
        let (a, b, pair) = ladder();
        let view = PairView::new(&a, &b, &pair);
        let sp_a = ShortestPaths::compute(&a);
        let sp_b = ShortestPaths::compute(&b);
        let flow = Flow {
            src: PopId(0),
            dst: PopId(2),
            volume: 1.0,
        };
        let (up, down) = flow_links(&view, &sp_a, &sp_b, &flow, IcxId(0));
        assert!(up.is_empty(), "src is at the exit PoP");
        assert_eq!(down.len(), 2, "two links b0->b1->b2");
        let (up, down) = flow_links(&view, &sp_a, &sp_b, &flow, IcxId(1));
        assert_eq!(up.len(), 2);
        assert!(down.is_empty());
    }

    #[test]
    fn iter_yields_all_flows_in_order() {
        let (a, b, pair) = ladder();
        let view = PairView::new(&a, &b, &pair);
        let sp_a = ShortestPaths::compute(&a);
        let sp_b = ShortestPaths::compute(&b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let ids: Vec<u32> = flows.iter().map(|(id, _, _)| id.0).collect();
        assert_eq!(ids, (0..9).collect::<Vec<_>>());
        for (_, _, m) in flows.iter() {
            assert_eq!(m.num_alternatives(), 2);
        }
    }
}
