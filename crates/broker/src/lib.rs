//! A multiplexed session broker: thousands of concurrent wire
//! negotiations over framed in-memory transports, on M worker threads.
//!
//! `nexit-proto`'s [`Agent`] is sans-IO by design, but until this crate
//! nothing drove more than one wire session at a time
//! ([`nexit_proto::driver`] is a single-pair pump). The [`Broker`] is the
//! datacenter-scale shell around the same machinery: it owns per-session
//! state keyed by **pair id** (the index of the session's
//! [`SessionSpec`] in the submitted batch), shards the sessions
//! round-robin across workers, and runs each worker as a
//! readiness-polled event loop:
//!
//! * **Admission control** — each worker keeps at most
//!   [`BrokerConfig::max_active`] sessions live; the rest wait in the
//!   worker's pending queue. Retired sessions return their table and
//!   index buffers to a per-worker [`TableArena`], so a worker serving
//!   thousands of sessions allocates each backing buffer only once.
//! * **Poll ticks with batched encode/decode** — one tick drains every
//!   outgoing frame an agent can produce into its link (batched encode)
//!   and delivers queued frames to the peer as one concatenated byte run
//!   fed to the codec in a single call (batched decode).
//! * **Bounded queues with backpressure** — a link holds at most
//!   [`BrokerConfig::queue_capacity`] frames in flight and a peer
//!   consumes at most [`BrokerConfig::deliver_budget`] frames per tick.
//!   When a queue is full the sender is parked in
//!   [`PollState::Transmitting`] — its remaining frames stay in the
//!   agent's outbox — and the worker moves on to the next session: a
//!   stalled peer never blocks its worker.
//! * **Fault isolation** — a corrupted or dropped frame (injected via
//!   each spec's [`FaultConfig`]) fails only its own session, which
//!   surfaces as a [`SessionFailure`] in that pair's result slot;
//!   sibling sessions on the same worker complete with unchanged
//!   outcomes. A session that stops making progress for
//!   [`BrokerConfig::stall_ticks`] consecutive ticks is failed with
//!   [`ProtoError::Stalled`], carrying both links' in-flight counts.
//! * **Fault recovery** — with [`BrokerConfig::reliability`] set, each
//!   session runs through a pair of [`ReliableEndpoint`]s
//!   ([`nexit_proto::reliable`]): dropped and corrupted frames are
//!   retransmitted on deterministic tick timeouts, duplicates and
//!   reordered frames are absorbed by the dedup window, and only a
//!   persistently dead link (retry budget exhausted) or a blown
//!   [`BrokerConfig::session_deadline`] terminates the session. A
//!   session with retransmissions outstanding polls as
//!   [`PollState::Retrying`] and is exempt from the stall detector
//!   (its progress is scheduled by the retransmit timers).
//! * **Graceful degradation** — with
//!   [`BrokerConfig::degrade_to_default`] set, a terminally-failed
//!   session falls back to the paper's status quo: its result is
//!   [`PairResult::Degraded`], carrying the spec's default early-exit
//!   assignment plus the underlying failure, so every batch yields a
//!   usable routing table for every pair.
//!
//! Outcomes are **byte-identical to the in-process engine**
//! ([`nexit_core::negotiate`]) for every pair at any worker count: a
//! session's two agents advance in lock step regardless of how ticks
//! interleave with other sessions, the per-worker arena recycles
//! allocations but never values, per-session fault and retransmission
//! timing is derived from the session's own seed and tick counters (not
//! from wall clocks or scheduling), and results are collected by pair
//! id. `crates/sim/tests/broker_determinism.rs` pins exactly this.

use nexit_core::parallel::resolve_threads;
use nexit_core::{DisclosurePolicy, NexitConfig, PreferenceMapper, SessionInput, Side, TableArena};
use nexit_proto::agent::{Agent, AgentOutcome, ProtoError};
use nexit_proto::channel::{FaultConfig, FaultyLink};
use nexit_proto::reliable::ReliableEndpoint;
use nexit_routing::Assignment;
use std::collections::VecDeque;

pub use nexit_proto::reliable::ReliableConfig;

/// Everything the broker needs to serve one negotiation pair: the shared
/// session parameters plus each side's private objective and disclosure
/// policy, and the (possibly faulty) link characteristics.
///
/// The pair's **id** is its index in the batch passed to
/// [`Broker::run_pairs`]; results come back in the same order.
pub struct SessionSpec<'a> {
    /// The negotiated flow set (identical on both sides).
    pub input: SessionInput,
    /// The pre-negotiation assignment of all pair flows.
    pub default_assignment: Assignment,
    /// The A-side (upstream) ISP's private objective.
    pub mapper_a: Box<dyn PreferenceMapper + Send + 'a>,
    /// The B-side (downstream) ISP's private objective.
    pub mapper_b: Box<dyn PreferenceMapper + Send + 'a>,
    /// A's disclosure policy (truthful, or a §5.4 cheater).
    pub disclosure_a: DisclosurePolicy,
    /// B's disclosure policy.
    pub disclosure_b: DisclosurePolicy,
    /// The contractually agreed protocol configuration.
    pub config: NexitConfig,
    /// Fault injection on the A→B link.
    pub faults_ab: FaultConfig,
    /// Fault injection on the B→A link.
    pub faults_ba: FaultConfig,
    /// Seed for the links' fault randomness (per session, so fault
    /// patterns are independent of scheduling).
    pub link_seed: u64,
}

impl<'a> SessionSpec<'a> {
    /// A spec for two honest parties over reliable links.
    pub fn honest(
        input: SessionInput,
        default_assignment: Assignment,
        mapper_a: impl PreferenceMapper + Send + 'a,
        mapper_b: impl PreferenceMapper + Send + 'a,
        config: NexitConfig,
    ) -> Self {
        Self {
            input,
            default_assignment,
            mapper_a: Box::new(mapper_a),
            mapper_b: Box::new(mapper_b),
            disclosure_a: DisclosurePolicy::Truthful,
            disclosure_b: DisclosurePolicy::Truthful,
            config,
            faults_ab: FaultConfig::RELIABLE,
            faults_ba: FaultConfig::RELIABLE,
            link_seed: 0,
        }
    }

    /// Replace both links' fault configuration.
    pub fn with_faults(mut self, faults: FaultConfig, link_seed: u64) -> Self {
        self.faults_ab = faults;
        self.faults_ba = faults;
        self.link_seed = link_seed;
        self
    }
}

/// Broker tuning knobs. The defaults serve well-behaved sessions without
/// ever parking; shrink `queue_capacity` / `deliver_budget` to model slow
/// peers and exercise backpressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrokerConfig {
    /// Worker threads: 0 = one per available core, 1 = serial, N = N.
    /// Results are byte-identical for every setting.
    pub workers: usize,
    /// Concurrent sessions per worker (admission control). Pending
    /// sessions wait, and retired sessions' buffers are recycled into
    /// the slots they free.
    pub max_active: usize,
    /// Per-direction bound on frames in flight. A full queue parks the
    /// sending session until deliveries drain it.
    pub queue_capacity: usize,
    /// Frames delivered to a peer per direction per tick (models peer
    /// consumption rate; the batched decode feeds them as one byte run).
    pub deliver_budget: usize,
    /// Consecutive no-progress ticks before a session is failed with
    /// [`ProtoError::Stalled`]. Sessions with ARQ retransmissions
    /// outstanding are exempt — their progress is scheduled by the
    /// retransmit timers, and termination is bounded by the retry
    /// budget and `session_deadline` instead.
    pub stall_ticks: usize,
    /// Run every session through the [`nexit_proto::reliable`] ARQ
    /// layer with these knobs. `None` (the default) keeps the raw
    /// fail-fast wire path: any injected fault kills its session.
    pub reliability: Option<ReliableConfig>,
    /// Tick budget per session; a session still unfinished after this
    /// many of its own poll ticks fails with
    /// [`ProtoError::DeadlineExceeded`]. `0` = unlimited.
    pub session_deadline: u64,
    /// Fall back to the spec's default early-exit assignment when a
    /// session terminally fails ([`PairResult::Degraded`]), instead of
    /// reporting only the failure.
    pub degrade_to_default: bool,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            max_active: 512,
            queue_capacity: 64,
            deliver_budget: 64,
            stall_ticks: 16,
            reliability: None,
            session_deadline: 0,
            degrade_to_default: false,
        }
    }
}

impl BrokerConfig {
    /// Default configuration with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers,
            ..Self::default()
        }
    }

    /// Enable the ARQ reliability layer for every session.
    pub fn with_reliability(mut self, arq: ReliableConfig) -> Self {
        self.reliability = Some(arq);
        self
    }

    /// Set the per-session tick deadline (`0` = unlimited).
    pub fn with_deadline(mut self, ticks: u64) -> Self {
        self.session_deadline = ticks;
        self
    }

    /// Enable graceful degradation to the default assignment.
    pub fn with_degradation(mut self) -> Self {
        self.degrade_to_default = true;
        self
    }
}

/// Readiness of one session inside its worker's poll loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollState {
    /// Admitted but not yet polled.
    Idle,
    /// Frames queued in flight (or parked on a full queue).
    Transmitting,
    /// ARQ retransmissions have occurred and unacked frames are still
    /// outstanding: the session is recovering from link faults, with
    /// its next progress scheduled by a retransmit timer.
    Retrying,
    /// Quiescent: both queues empty, waiting for the peer's next frame
    /// (which the next tick's poll will produce — or never arrives, in
    /// which case the stall detector fires).
    AwaitingPeer,
    /// Both sides finished successfully.
    Done,
    /// The session failed (protocol error or stall).
    Failed,
}

/// Both sides' outcomes for one completed pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PairOutcome {
    /// A's machine outcome.
    pub a: AgentOutcome,
    /// B's machine outcome.
    pub b: AgentOutcome,
}

/// Why a pair's session failed. Failure is always clean and isolated:
/// the error names the offending session only, and sibling sessions are
/// unaffected.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionFailure {
    /// The protocol error that killed the session.
    pub error: ProtoError,
    /// The side whose agent rejected a frame (decode/protocol errors)
    /// or whose transmissions went unacked (retry exhaustion); `None`
    /// for stalls, deadlines and admission errors.
    pub side: Option<Side>,
}

/// One pair's result: the negotiated outcome, the degraded fallback, or
/// a bare failure. `Degraded` only appears with
/// [`BrokerConfig::degrade_to_default`] set; it is the paper's status
/// quo — when negotiation is unavailable, traffic keeps flowing on the
/// default early-exit routes.
#[derive(Debug, Clone, PartialEq)]
pub enum PairResult {
    /// The session completed; both sides' machine outcomes.
    Negotiated(PairOutcome),
    /// The session terminally failed but the broker fell back to the
    /// spec's default assignment: the pair still has usable routing.
    Degraded {
        /// The default early-exit assignment from the session's spec.
        assignment: Assignment,
        /// Why negotiation was abandoned.
        failure: SessionFailure,
    },
    /// The session terminally failed with no fallback.
    Failed(SessionFailure),
}

impl PairResult {
    /// The negotiated outcome, if the session completed.
    pub fn outcome(&self) -> Option<&PairOutcome> {
        match self {
            PairResult::Negotiated(out) => Some(out),
            _ => None,
        }
    }

    /// The usable assignment, if any: the negotiated one, or the
    /// degraded fallback. `None` only for `Failed`.
    pub fn assignment(&self) -> Option<&Assignment> {
        match self {
            PairResult::Negotiated(out) => Some(&out.a.assignment),
            PairResult::Degraded { assignment, .. } => Some(assignment),
            PairResult::Failed(_) => None,
        }
    }

    /// The underlying failure, for `Degraded` and `Failed`.
    pub fn failure(&self) -> Option<&SessionFailure> {
        match self {
            PairResult::Negotiated(_) => None,
            PairResult::Degraded { failure, .. } => Some(failure),
            PairResult::Failed(failure) => Some(failure),
        }
    }

    /// Whether the session completed with a negotiated outcome.
    pub fn is_negotiated(&self) -> bool {
        matches!(self, PairResult::Negotiated(_))
    }

    /// Whether the session fell back to the default assignment.
    pub fn is_degraded(&self) -> bool {
        matches!(self, PairResult::Degraded { .. })
    }

    /// Whether the session failed with no usable assignment.
    pub fn is_failed(&self) -> bool {
        matches!(self, PairResult::Failed(_))
    }
}

/// Aggregate counters across all workers of one [`Broker::run_pairs`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BrokerStats {
    /// Sessions submitted.
    pub sessions: usize,
    /// Sessions that completed with negotiated outcomes.
    pub completed: usize,
    /// Sessions that failed with no usable result (admission, protocol
    /// error, stall, retry exhaustion or deadline — and degradation
    /// off).
    pub failed: usize,
    /// Completed sessions that recovered from at least one injected
    /// link fault (a subset of `completed`; only nonzero with the ARQ
    /// layer on).
    pub recovered: usize,
    /// Sessions that terminally failed but fell back to the default
    /// assignment ([`PairResult::Degraded`]).
    pub degraded: usize,
    /// ARQ frames retransmitted across all sessions.
    pub retransmits: u64,
    /// Wire frames moved.
    pub frames: u64,
    /// Wire bytes moved.
    pub bytes: u64,
    /// Poll-loop iterations, summed over workers.
    pub ticks: u64,
    /// Session-ticks spent parked on a full frame queue (backpressure).
    pub parked: u64,
    /// Highest concurrent session count observed on any worker.
    pub peak_active: usize,
}

impl BrokerStats {
    fn absorb(&mut self, other: &BrokerStats) {
        self.completed += other.completed;
        self.failed += other.failed;
        self.recovered += other.recovered;
        self.degraded += other.degraded;
        self.retransmits += other.retransmits;
        self.frames += other.frames;
        self.bytes += other.bytes;
        self.ticks += other.ticks;
        self.parked += other.parked;
        self.peak_active = self.peak_active.max(other.peak_active);
    }
}

/// Result of one [`Broker::run_pairs`] batch: per-pair results in
/// submission order, plus the aggregate counters.
#[derive(Debug)]
pub struct BrokerRun {
    /// One slot per submitted spec, in order (slot `i` = pair id `i`).
    pub results: Vec<PairResult>,
    /// Aggregate counters across all workers.
    pub stats: BrokerStats,
}

/// The session broker. See the crate docs for the event-loop shape.
#[derive(Debug, Clone, Copy, Default)]
pub struct Broker {
    config: BrokerConfig,
}

impl Broker {
    /// A broker with the given configuration.
    pub fn new(config: BrokerConfig) -> Self {
        Self { config }
    }

    /// This broker's configuration.
    pub fn config(&self) -> &BrokerConfig {
        &self.config
    }

    /// Serve every spec'd pair to completion and return per-pair results
    /// in submission order. Sessions are sharded round-robin across
    /// workers; outcomes are byte-identical for any worker count.
    pub fn run_pairs<'a>(&self, specs: Vec<SessionSpec<'a>>) -> BrokerRun {
        let n = specs.len();
        let mut stats = BrokerStats {
            sessions: n,
            ..BrokerStats::default()
        };
        if n == 0 {
            return BrokerRun {
                results: Vec::new(),
                stats,
            };
        }
        let workers = resolve_threads(self.config.workers).min(n).max(1);
        let mut slots: Vec<Option<PairResult>> = (0..n).map(|_| None).collect();

        if workers <= 1 {
            let (results, shard_stats) =
                run_shard(&self.config, specs.into_iter().enumerate().collect());
            stats.absorb(&shard_stats);
            for (id, result) in results {
                slots[id] = Some(result);
            }
        } else {
            // Round-robin sharding: session i belongs to worker i % W.
            // Any partition yields identical results (sessions are
            // independent); this one balances mixed-size batches.
            let mut shards: Vec<Vec<(usize, SessionSpec<'a>)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (i, spec) in specs.into_iter().enumerate() {
                shards[i % workers].push((i, spec));
            }
            let config = &self.config;
            let worker_outputs = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .into_iter()
                    .map(|shard| scope.spawn(move |_| run_shard(config, shard)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("broker worker panicked"))
                    .collect::<Vec<_>>()
            })
            .expect("broker worker pool panicked");
            for (results, shard_stats) in worker_outputs {
                stats.absorb(&shard_stats);
                for (id, result) in results {
                    slots[id] = Some(result);
                }
            }
        }

        BrokerRun {
            results: slots
                .into_iter()
                .map(|slot| slot.expect("every session reports exactly once"))
                .collect(),
            stats,
        }
    }
}

/// One live session inside a worker: two agents, two bounded links,
/// optional ARQ endpoints, and the session's poll state.
struct ActiveSession<'a> {
    id: usize,
    agent_a: Agent<'a>,
    agent_b: Agent<'a>,
    link_ab: FaultyLink,
    link_ba: FaultyLink,
    /// ARQ endpoints (A-side, B-side) when [`BrokerConfig::reliability`]
    /// is set; `None` runs the raw fail-fast wire path.
    arq: Option<(ReliableEndpoint, ReliableEndpoint)>,
    /// The spec's default assignment, kept for graceful degradation.
    default_assignment: Assignment,
    state: PollState,
    idle_ticks: usize,
    /// Poll ticks this session has consumed (the deadline currency).
    ticks_used: u64,
    result: Option<PairResult>,
}

/// A worker's output: `(pair id, result)` in retirement order, plus the
/// worker's counters.
type ShardOutput = (Vec<(usize, PairResult)>, BrokerStats);

/// Wrap a terminal failure per the degradation policy: the default
/// assignment (the paper's status-quo routing) when degradation is on,
/// the bare failure otherwise.
fn resolve_failure(degrade: bool, fallback: &Assignment, failure: SessionFailure) -> PairResult {
    if degrade {
        PairResult::Degraded {
            assignment: fallback.clone(),
            failure,
        }
    } else {
        PairResult::Failed(failure)
    }
}

/// One worker: admit from the pending queue up to the active cap, poll
/// every active session once per tick, retire terminal sessions into the
/// arena, repeat until the shard is drained.
fn run_shard<'a>(config: &BrokerConfig, specs: Vec<(usize, SessionSpec<'a>)>) -> ShardOutput {
    let mut results = Vec::with_capacity(specs.len());
    let mut pending: VecDeque<(usize, SessionSpec<'a>)> = specs.into();
    let mut active: Vec<ActiveSession<'a>> = Vec::new();
    let mut arena = TableArena::new();
    let mut scratch: Vec<u8> = Vec::new();
    let mut stats = BrokerStats::default();

    while !pending.is_empty() || !active.is_empty() {
        stats.ticks += 1;
        // Admission: fill freed slots from the pending queue. Admission
        // failures obey the degradation policy like any terminal
        // failure — the pair still gets its default assignment.
        while active.len() < config.max_active.max(1) {
            let Some((id, spec)) = pending.pop_front() else {
                break;
            };
            match admit(&mut arena, config, id, spec) {
                Ok(session) => active.push(session),
                Err((fallback, failure)) => {
                    let result = resolve_failure(config.degrade_to_default, &fallback, failure);
                    match &result {
                        PairResult::Degraded { .. } => stats.degraded += 1,
                        _ => stats.failed += 1,
                    }
                    results.push((id, result));
                }
            }
        }
        stats.peak_active = stats.peak_active.max(active.len());

        // Poll every active session once; retire terminal ones in place.
        let mut i = 0;
        while i < active.len() {
            tick(config, &mut active[i], &mut scratch, &mut stats);
            if matches!(active[i].state, PollState::Done | PollState::Failed) {
                let mut session = active.swap_remove(i);
                if let Some((arq_a, arq_b)) = &session.arq {
                    stats.retransmits += arq_a.stats().retransmits + arq_b.stats().retransmits;
                }
                let link_faults = session.link_ab.dropped
                    + session.link_ab.corrupted
                    + session.link_ab.duplicated
                    + session.link_ab.reordered
                    + session.link_ba.dropped
                    + session.link_ba.corrupted
                    + session.link_ba.duplicated
                    + session.link_ba.reordered;
                let result = session
                    .result
                    .take()
                    .expect("terminal session must carry a result");
                match &result {
                    PairResult::Negotiated(_) => {
                        stats.completed += 1;
                        if link_faults > 0 {
                            stats.recovered += 1;
                        }
                    }
                    PairResult::Degraded { .. } => stats.degraded += 1,
                    PairResult::Failed(_) => stats.failed += 1,
                }
                results.push((session.id, result));
                session.agent_a.recycle(&mut arena);
                session.agent_b.recycle(&mut arena);
            } else {
                i += 1;
            }
        }
    }
    (results, stats)
}

/// Construct a session's two agents from its spec, drawing buffers from
/// the worker's arena. Failure returns the spec's default assignment
/// alongside the error so the caller can apply the degradation policy.
fn admit<'a>(
    arena: &mut TableArena,
    config: &BrokerConfig,
    id: usize,
    spec: SessionSpec<'a>,
) -> Result<ActiveSession<'a>, (Assignment, SessionFailure)> {
    let fallback = spec.default_assignment.clone();
    let mut agent_a = match Agent::new_in(
        arena,
        Side::A,
        format!("pair{id}-A"),
        spec.input.clone(),
        spec.default_assignment.clone(),
        spec.mapper_a,
        spec.disclosure_a,
        spec.config,
    ) {
        Ok(agent) => agent,
        Err(error) => {
            return Err((
                fallback,
                SessionFailure {
                    error,
                    side: Some(Side::A),
                },
            ))
        }
    };
    let mut agent_b = match Agent::new_in(
        arena,
        Side::B,
        format!("pair{id}-B"),
        spec.input,
        spec.default_assignment,
        spec.mapper_b,
        spec.disclosure_b,
        spec.config,
    ) {
        Ok(agent) => agent,
        Err(error) => {
            agent_a.recycle(arena);
            return Err((
                fallback,
                SessionFailure {
                    error,
                    side: Some(Side::B),
                },
            ));
        }
    };
    let arq = config.reliability.map(|arq_config| {
        // Under the dedup window a replayed frame is absorbed, not a
        // protocol violation; the raw path keeps strict semantics.
        agent_a.set_replay_tolerance(true);
        agent_b.set_replay_tolerance(true);
        (
            ReliableEndpoint::new(arq_config),
            ReliableEndpoint::new(arq_config),
        )
    });
    Ok(ActiveSession {
        id,
        agent_a,
        agent_b,
        link_ab: FaultyLink::new(spec.faults_ab, spec.link_seed),
        link_ba: FaultyLink::new(spec.faults_ba, spec.link_seed ^ 0x9e37_79b9_7f4a_7c15),
        arq,
        default_assignment: fallback,
        state: PollState::Idle,
        idle_ticks: 0,
        ticks_used: 0,
        result: None,
    })
}

/// One poll tick for one session: batched encode into the bounded links,
/// batched decode out of them, then completion / deadline / stall
/// bookkeeping. Dispatches on whether the session runs the ARQ layer.
fn tick(
    config: &BrokerConfig,
    session: &mut ActiveSession<'_>,
    scratch: &mut Vec<u8>,
    stats: &mut BrokerStats,
) {
    if matches!(session.state, PollState::Done | PollState::Failed) {
        return;
    }
    session.ticks_used += 1;
    if session.arq.is_some() {
        tick_reliable(config, session, scratch, stats);
    } else {
        tick_raw(config, session, scratch, stats);
    }
}

/// Mark a session terminally failed, applying the degradation policy.
fn fail_session(config: &BrokerConfig, session: &mut ActiveSession<'_>, failure: SessionFailure) {
    session.state = PollState::Failed;
    session.result = Some(resolve_failure(
        config.degrade_to_default,
        &session.default_assignment,
        failure,
    ));
}

/// The raw fail-fast wire path (no ARQ): any decode error or stall kills
/// the session.
fn tick_raw(
    config: &BrokerConfig,
    session: &mut ActiveSession<'_>,
    scratch: &mut Vec<u8>,
    stats: &mut BrokerStats,
) {
    let mut moved = false;
    let mut parked = false;

    // Batched encode: drain each agent's outgoing frames while its link
    // has queue room. A full queue parks the sender — remaining frames
    // stay in the agent's outbox until deliveries free capacity.
    loop {
        if session.link_ab.in_flight() >= config.queue_capacity {
            parked = true;
            break;
        }
        let Some(frame) = session.agent_a.poll_transmit() else {
            break;
        };
        stats.frames += 1;
        stats.bytes += frame.len() as u64;
        session.link_ab.send(frame);
        moved = true;
    }
    loop {
        if session.link_ba.in_flight() >= config.queue_capacity {
            parked = true;
            break;
        }
        let Some(frame) = session.agent_b.poll_transmit() else {
            break;
        };
        stats.frames += 1;
        stats.bytes += frame.len() as u64;
        session.link_ba.send(frame);
        moved = true;
    }

    // Batched decode: up to `deliver_budget` frames per direction,
    // concatenated into one byte run and fed to the codec in one call.
    for direction in [Side::A, Side::B] {
        let (link, receiver, sender_side) = match direction {
            Side::A => (&mut session.link_ab, &mut session.agent_b, Side::B),
            Side::B => (&mut session.link_ba, &mut session.agent_a, Side::A),
        };
        scratch.clear();
        let mut delivered = 0usize;
        while delivered < config.deliver_budget {
            let Some(frame) = link.recv() else {
                break;
            };
            scratch.extend_from_slice(&frame);
            delivered += 1;
        }
        if delivered > 0 {
            moved = true;
            if let Err(error) = receiver.handle_bytes(scratch) {
                fail_session(
                    config,
                    session,
                    SessionFailure {
                        error,
                        side: Some(sender_side),
                    },
                );
                return;
            }
        }
    }

    // Completion: both agents terminal and both queues drained.
    if session.agent_a.is_done()
        && session.agent_b.is_done()
        && session.link_ab.in_flight() == 0
        && session.link_ba.in_flight() == 0
    {
        match (session.agent_a.outcome(), session.agent_b.outcome()) {
            (Some(a), Some(b)) => {
                session.state = PollState::Done;
                session.result = Some(PairResult::Negotiated(PairOutcome { a, b }));
            }
            // An agent terminal without an outcome failed its handshake.
            _ => {
                fail_session(
                    config,
                    session,
                    SessionFailure {
                        error: ProtoError::Closed,
                        side: None,
                    },
                );
            }
        }
        return;
    }

    if config.session_deadline > 0 && session.ticks_used >= config.session_deadline {
        fail_session(
            config,
            session,
            SessionFailure {
                error: ProtoError::DeadlineExceeded {
                    ticks: config.session_deadline,
                },
                side: None,
            },
        );
        return;
    }

    if parked {
        stats.parked += 1;
    }
    session.state = if parked || session.link_ab.in_flight() + session.link_ba.in_flight() > 0 {
        PollState::Transmitting
    } else {
        PollState::AwaitingPeer
    };
    if moved {
        session.idle_ticks = 0;
    } else {
        // Nothing to send, nothing to deliver, nobody finished: a lost
        // frame stalled the lock-step exchange. Give it `stall_ticks`
        // grace (cheap insurance against future multi-tick shapes), then
        // fail this session alone — with both queues' state, so a
        // dropped-frame stall is diagnosable.
        session.idle_ticks += 1;
        if session.idle_ticks >= config.stall_ticks.max(1) {
            let failure = SessionFailure {
                error: ProtoError::Stalled {
                    in_flight_ab: session.link_ab.in_flight(),
                    in_flight_ba: session.link_ba.in_flight(),
                },
                side: None,
            };
            fail_session(config, session, failure);
        }
    }
}

/// The reliable wire path: agents talk through [`ReliableEndpoint`]s, so
/// transient link faults heal by retransmission/dedup and only retry
/// exhaustion, a blown deadline, or a genuine protocol error terminates
/// the session.
fn tick_reliable(
    config: &BrokerConfig,
    session: &mut ActiveSession<'_>,
    scratch: &mut Vec<u8>,
    stats: &mut BrokerStats,
) {
    let mut moved = false;
    let mut parked = false;
    {
        let ActiveSession {
            agent_a,
            agent_b,
            link_ab,
            link_ba,
            arq,
            ..
        } = session;
        let (arq_a, arq_b) = arq.as_mut().expect("reliable tick requires endpoints");

        // Sequence fresh application frames into the endpoints.
        while let Some(frame) = agent_a.poll_transmit() {
            arq_a.send(frame);
            moved = true;
        }
        while let Some(frame) = agent_b.poll_transmit() {
            arq_b.send(frame);
            moved = true;
        }

        // Batched encode: endpoint outbox → bounded link, same
        // backpressure rules as the raw path (wire units counted).
        loop {
            if link_ab.in_flight() >= config.queue_capacity {
                parked = true;
                break;
            }
            let Some(unit) = arq_a.poll_transmit() else {
                break;
            };
            stats.frames += 1;
            stats.bytes += unit.len() as u64;
            link_ab.send(unit);
            moved = true;
        }
        loop {
            if link_ba.in_flight() >= config.queue_capacity {
                parked = true;
                break;
            }
            let Some(unit) = arq_b.poll_transmit() else {
                break;
            };
            stats.frames += 1;
            stats.bytes += unit.len() as u64;
            link_ba.send(unit);
            moved = true;
        }

        // Receive: each wire unit is fed to the endpoint *individually*
        // — a corrupted unit must poison only itself, and the ARQ layer
        // has no trustworthy resync point inside a mangled byte run.
        for (link, endpoint) in [(link_ab, &mut *arq_b), (link_ba, &mut *arq_a)] {
            let mut delivered = 0usize;
            while delivered < config.deliver_budget {
                let Some(unit) = link.recv() else {
                    break;
                };
                endpoint.on_datagram(&unit);
                delivered += 1;
            }
            if delivered > 0 {
                moved = true;
            }
        }
    }

    // Deliver recovered in-order frames: these are clean (CRC-checked at
    // the ARQ layer), so they can be concatenated for one batched agent
    // decode like the raw path.
    for side in [Side::B, Side::A] {
        scratch.clear();
        {
            let (arq_a, arq_b) = session.arq.as_mut().expect("endpoints present");
            let endpoint = match side {
                Side::B => arq_b,
                Side::A => arq_a,
            };
            while let Some(inner) = endpoint.poll_deliver() {
                scratch.extend_from_slice(&inner);
            }
        }
        if !scratch.is_empty() {
            moved = true;
            let receiver = match side {
                Side::B => &mut session.agent_b,
                Side::A => &mut session.agent_a,
            };
            if let Err(error) = receiver.handle_bytes(scratch) {
                fail_session(
                    config,
                    session,
                    SessionFailure {
                        error,
                        side: Some(side.other()),
                    },
                );
                return;
            }
        }
    }

    // Completion: both agents terminal. Unlike the raw path the links
    // need not be drained — trailing acks and already-answered
    // retransmissions are noise once both outcomes exist.
    if session.agent_a.is_done() && session.agent_b.is_done() {
        match (session.agent_a.outcome(), session.agent_b.outcome()) {
            (Some(a), Some(b)) => {
                session.state = PollState::Done;
                session.result = Some(PairResult::Negotiated(PairOutcome { a, b }));
            }
            _ => {
                fail_session(
                    config,
                    session,
                    SessionFailure {
                        error: ProtoError::Closed,
                        side: None,
                    },
                );
            }
        }
        return;
    }

    if config.session_deadline > 0 && session.ticks_used >= config.session_deadline {
        fail_session(
            config,
            session,
            SessionFailure {
                error: ProtoError::DeadlineExceeded {
                    ticks: config.session_deadline,
                },
                side: None,
            },
        );
        return;
    }

    // Advance the retransmit timers; budget exhaustion is terminal,
    // blamed on the side whose transmissions went unacked.
    for side in [Side::A, Side::B] {
        let err = {
            let (arq_a, arq_b) = session.arq.as_mut().expect("endpoints present");
            let endpoint = match side {
                Side::A => arq_a,
                Side::B => arq_b,
            };
            endpoint.on_tick().err()
        };
        if let Some(e) = err {
            fail_session(
                config,
                session,
                SessionFailure {
                    error: e.into(),
                    side: Some(side),
                },
            );
            return;
        }
    }

    if parked {
        stats.parked += 1;
    }
    let (arq_a, arq_b) = session.arq.as_ref().expect("endpoints present");
    let recovering = arq_a.has_pending() || arq_b.has_pending();
    let retried = arq_a.stats().retransmits + arq_b.stats().retransmits > 0;
    session.state = if retried && recovering {
        PollState::Retrying
    } else if parked || session.link_ab.in_flight() + session.link_ba.in_flight() > 0 {
        PollState::Transmitting
    } else {
        PollState::AwaitingPeer
    };
    // The stall detector only watches sessions with no scheduled
    // progress: outstanding ARQ state means a retransmit timer will
    // fire, so termination is bounded by the retry budget instead.
    if moved || recovering {
        session.idle_ticks = 0;
    } else {
        session.idle_ticks += 1;
        if session.idle_ticks >= config.stall_ticks.max(1) {
            let failure = SessionFailure {
                error: ProtoError::Stalled {
                    in_flight_ab: session.link_ab.in_flight(),
                    in_flight_ba: session.link_ba.in_flight(),
                },
                side: None,
            };
            fail_session(config, session, failure);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexit_core::{negotiate, GainTable, Party};
    use nexit_routing::FlowId;
    use nexit_topology::IcxId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A fixed-table mapper (the broker test workload).
    #[derive(Clone)]
    struct TableMapper {
        gains: GainTable,
    }

    impl PreferenceMapper for TableMapper {
        fn gains(&mut self, _i: &SessionInput, _c: &Assignment, out: &mut GainTable) {
            out.copy_from(&self.gains);
        }
    }

    fn synthetic_gains(n: usize, k: usize, seed: u64) -> GainTable {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gains = GainTable::new(n, k);
        for f in 0..n {
            let row = gains.row_mut(f);
            for cell in row.iter_mut() {
                *cell = rng.gen_range(-50.0..50.0);
            }
            row[0] = 0.0;
        }
        gains
    }

    fn input(n: usize, k: usize) -> SessionInput {
        SessionInput {
            flow_ids: (0..n).map(FlowId::new).collect(),
            defaults: vec![IcxId(0); n],
            volumes: vec![1.0; n],
            num_alternatives: k,
        }
    }

    fn spec(pair: u64, n: usize, k: usize) -> SessionSpec<'static> {
        SessionSpec::honest(
            input(n, k),
            Assignment::uniform(n, IcxId(0)),
            TableMapper {
                gains: synthetic_gains(n, k, 2 * pair),
            },
            TableMapper {
                gains: synthetic_gains(n, k, 2 * pair + 1),
            },
            NexitConfig::win_win(),
        )
    }

    fn engine_reference(pair: u64, n: usize, k: usize) -> nexit_core::NegotiationOutcome {
        let mut a = Party::honest(
            "A",
            TableMapper {
                gains: synthetic_gains(n, k, 2 * pair),
            },
        );
        let mut b = Party::honest(
            "B",
            TableMapper {
                gains: synthetic_gains(n, k, 2 * pair + 1),
            },
        );
        negotiate(
            &input(n, k),
            &Assignment::uniform(n, IcxId(0)),
            &mut a,
            &mut b,
            &NexitConfig::win_win(),
        )
    }

    fn assert_matches_engine(pair: u64, n: usize, k: usize, out: &PairOutcome) {
        let reference = engine_reference(pair, n, k);
        assert_eq!(
            reference.assignment.choices(),
            out.a.assignment.choices(),
            "pair {pair}: broker assignment diverged from engine"
        );
        assert_eq!(out.a.assignment, out.b.assignment);
        assert_eq!(reference.gain_a, out.a.my_gain);
        assert_eq!(reference.gain_b, out.b.my_gain);
        assert_eq!(reference.termination, out.a.termination);
        assert_eq!(reference.reassignments, out.a.reassignments);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let run = Broker::default().run_pairs(Vec::new());
        assert!(run.results.is_empty());
        assert_eq!(run.stats, BrokerStats::default());
    }

    #[test]
    fn batch_matches_engine_for_every_worker_count() {
        let (pairs, n, k) = (96u64, 8, 3);
        for workers in [1usize, 2, 4] {
            let specs: Vec<_> = (0..pairs).map(|p| spec(p, n, k)).collect();
            let run = Broker::new(BrokerConfig::with_workers(workers)).run_pairs(specs);
            assert_eq!(run.stats.completed, pairs as usize, "workers={workers}");
            assert_eq!(run.stats.failed, 0);
            for (p, result) in run.results.iter().enumerate() {
                let out = result.outcome().expect("session completed");
                assert_matches_engine(p as u64, n, k, out);
            }
        }
    }

    #[test]
    fn admission_control_bounds_active_sessions() {
        let specs: Vec<_> = (0..64).map(|p| spec(p, 6, 3)).collect();
        let config = BrokerConfig {
            workers: 1,
            max_active: 8,
            ..BrokerConfig::default()
        };
        let run = Broker::new(config).run_pairs(specs);
        assert_eq!(run.stats.completed, 64);
        assert!(
            run.stats.peak_active <= 8,
            "active sessions exceeded the admission cap: {}",
            run.stats.peak_active
        );
    }

    #[test]
    fn backpressure_parks_sessions_but_all_complete() {
        // Tiny queues and a one-frame-per-tick consumer: the handshake
        // burst alone (Hello + FlowAnnounce + PrefList) overflows the
        // A→B queue, so sessions must park and resume.
        let specs: Vec<_> = (0..24).map(|p| spec(p, 10, 3)).collect();
        let config = BrokerConfig {
            workers: 1,
            max_active: 6,
            queue_capacity: 1,
            deliver_budget: 1,
            ..BrokerConfig::default()
        };
        let run = Broker::new(config).run_pairs(specs);
        assert_eq!(run.stats.completed, 24, "parked sessions must finish");
        assert!(
            run.stats.parked > 0,
            "queue_capacity=1 must trigger backpressure parking"
        );
        for (p, result) in run.results.iter().enumerate() {
            assert_matches_engine(p as u64, 10, 3, result.outcome().unwrap());
        }
    }

    #[test]
    fn corrupted_session_fails_alone_with_unchanged_siblings() {
        let (pairs, n, k) = (12u64, 8, 3);
        let victim = 5usize;
        let specs: Vec<_> = (0..pairs)
            .map(|p| {
                let s = spec(p, n, k);
                if p as usize == victim {
                    s.with_faults(
                        FaultConfig {
                            corrupt_chance: 1.0,
                            ..FaultConfig::RELIABLE
                        },
                        9,
                    )
                } else {
                    s
                }
            })
            .collect();
        let run = Broker::new(BrokerConfig::with_workers(1)).run_pairs(specs);
        assert_eq!(run.stats.failed, 1);
        assert_eq!(run.stats.completed, pairs as usize - 1);
        let failure = run.results[victim].failure().expect("victim failed");
        assert!(
            matches!(failure.error, ProtoError::Frame(_) | ProtoError::Message(_)),
            "corruption must surface via the CRC or message validation, got {:?}",
            failure.error
        );
        for (p, result) in run.results.iter().enumerate() {
            if p != victim {
                assert_matches_engine(p as u64, n, k, result.outcome().unwrap());
            }
        }
    }

    #[test]
    fn dropped_frames_stall_cleanly_with_queue_state() {
        let specs = vec![
            spec(0, 6, 3),
            spec(1, 6, 3).with_faults(
                FaultConfig {
                    drop_chance: 1.0,
                    ..FaultConfig::RELIABLE
                },
                3,
            ),
        ];
        let run = Broker::new(BrokerConfig::with_workers(1)).run_pairs(specs);
        assert_matches_engine(0, 6, 3, run.results[0].outcome().unwrap());
        let failure = run.results[1].failure().expect("faulty pair failed");
        match failure.error {
            ProtoError::Stalled {
                in_flight_ab,
                in_flight_ba,
            } => {
                // Every frame was dropped outright: the stall reports
                // empty queues, distinguishing loss from backlog.
                assert_eq!(in_flight_ab, 0);
                assert_eq!(in_flight_ba, 0);
            }
            ref other => panic!("expected a stall, got {other:?}"),
        }
        assert!(failure.side.is_none(), "stalls blame no side");
    }

    #[test]
    fn invalid_spec_is_rejected_at_admission_without_poisoning_the_shard() {
        // InflateBest on side A is rejected by the wire protocol (A must
        // disclose first). The admission failure lands in that pair's
        // slot; the sibling completes normally.
        let mut bad = spec(0, 4, 2);
        bad.disclosure_a = DisclosurePolicy::InflateBest;
        let specs = vec![bad, spec(1, 4, 2)];
        let run = Broker::new(BrokerConfig::with_workers(1)).run_pairs(specs);
        let failure = run.results[0].failure().expect("bad spec rejected");
        assert!(matches!(failure.error, ProtoError::UnsupportedDisclosure));
        assert_eq!(failure.side, Some(Side::A));
        assert_matches_engine(1, 4, 2, run.results[1].outcome().unwrap());
    }

    #[test]
    fn stats_count_frames_and_bytes() {
        let run = Broker::new(BrokerConfig::with_workers(1)).run_pairs(vec![spec(0, 6, 3)]);
        assert_eq!(run.stats.sessions, 1);
        assert_eq!(run.stats.completed, 1);
        // At minimum: 2 Hellos, FlowAnnounce, 2 PrefLists, Stop/Bye.
        assert!(run.stats.frames >= 6, "frames = {}", run.stats.frames);
        assert!(run.stats.bytes > run.stats.frames, "frames carry payload");
        assert!(run.stats.ticks > 0);
    }

    #[test]
    fn arq_recovers_faulty_sessions_byte_identical() {
        // Every link injects all four fault kinds at 10%; with the ARQ
        // layer on, every session must still complete with outcomes
        // byte-identical to the fault-free engine, at any worker count.
        let (pairs, n, k) = (24u64, 8, 3);
        let faults = FaultConfig {
            drop_chance: 0.1,
            corrupt_chance: 0.1,
            duplicate_chance: 0.1,
            reorder_chance: 0.1,
        };
        for workers in [1usize, 2, 4] {
            let specs: Vec<_> = (0..pairs)
                .map(|p| spec(p, n, k).with_faults(faults, 100 + p))
                .collect();
            let config =
                BrokerConfig::with_workers(workers).with_reliability(ReliableConfig::default());
            let run = Broker::new(config).run_pairs(specs);
            assert_eq!(run.stats.completed, pairs as usize, "workers={workers}");
            assert_eq!(run.stats.failed, 0, "workers={workers}");
            assert!(
                run.stats.recovered > 0,
                "10% fault rates must hit at least one session"
            );
            assert!(run.stats.retransmits > 0, "drops must force retransmits");
            for (p, result) in run.results.iter().enumerate() {
                assert_matches_engine(p as u64, n, k, result.outcome().unwrap());
            }
        }
    }

    #[test]
    fn degradation_falls_back_to_the_default_assignment() {
        // A hopeless link (every frame corrupted, ARQ off) with
        // degradation on: the pair still yields a usable assignment —
        // the spec's default — tagged with the underlying failure.
        let specs = vec![
            spec(0, 6, 3),
            spec(1, 6, 3).with_faults(
                FaultConfig {
                    corrupt_chance: 1.0,
                    ..FaultConfig::RELIABLE
                },
                21,
            ),
        ];
        let config = BrokerConfig::with_workers(1).with_degradation();
        let run = Broker::new(config).run_pairs(specs);
        assert_eq!(run.stats.completed, 1);
        assert_eq!(run.stats.degraded, 1);
        assert_eq!(run.stats.failed, 0, "degradation replaces bare failure");
        assert_matches_engine(0, 6, 3, run.results[0].outcome().unwrap());
        assert!(run.results[1].is_degraded());
        assert_eq!(
            run.results[1].assignment().unwrap(),
            &Assignment::uniform(6, IcxId(0)),
            "degraded pair must carry the default early-exit assignment"
        );
        assert!(run.results[1].failure().is_some());
    }

    #[test]
    fn retry_budget_exhaustion_fails_or_degrades_dead_links() {
        // Total frame loss with ARQ on: the retry budget, not the stall
        // detector, terminates the session (retransmit backoff can
        // exceed stall_ticks, so the stall path must stay out of it).
        let dead = FaultConfig {
            drop_chance: 1.0,
            ..FaultConfig::RELIABLE
        };
        let specs = vec![spec(0, 6, 3).with_faults(dead, 5)];
        let config = BrokerConfig::with_workers(1).with_reliability(ReliableConfig::default());
        let run = Broker::new(config).run_pairs(specs);
        let failure = run.results[0].failure().expect("dead link must fail");
        assert!(
            matches!(failure.error, ProtoError::RetryExhausted { .. }),
            "expected retry exhaustion, got {:?}",
            failure.error
        );
        // Same link with degradation: the pair keeps default routing.
        let specs = vec![spec(0, 6, 3).with_faults(dead, 5)];
        let run = Broker::new(config.with_degradation()).run_pairs(specs);
        assert!(run.results[0].is_degraded());
        assert_eq!(run.stats.degraded, 1);
    }

    #[test]
    fn session_deadline_bounds_ticks() {
        // An honest session needs a handful of ticks; a 2-tick deadline
        // must cut it off with DeadlineExceeded.
        let specs = vec![spec(0, 8, 3)];
        let config = BrokerConfig::with_workers(1).with_deadline(2);
        let run = Broker::new(config).run_pairs(specs);
        let failure = run.results[0].failure().expect("deadline must fire");
        assert!(
            matches!(failure.error, ProtoError::DeadlineExceeded { ticks: 2 }),
            "expected a deadline failure, got {:?}",
            failure.error
        );
        // A generous deadline leaves the session untouched.
        let specs = vec![spec(0, 8, 3)];
        let run = Broker::new(BrokerConfig::with_workers(1).with_deadline(10_000)).run_pairs(specs);
        assert_matches_engine(0, 8, 3, run.results[0].outcome().unwrap());
    }
}
