//! Session drivers: synchronous pump and a threaded (crossbeam) runner.
//!
//! The synchronous driver is what tests and experiments use — fully
//! deterministic, no threads. The threaded driver demonstrates that the
//! agents are transport-agnostic: each runs on its own thread connected
//! by crossbeam channels, as two real negotiation-agent daemons would be
//! connected by TCP.

use crate::agent::{Agent, AgentOutcome, ProtoError};
use crate::channel::FaultyLink;

/// Pump both agents over a pair of (possibly faulty) links until both
/// sessions finish or either agent fails.
///
/// Returns the two outcomes `(A, B)` on success.
pub fn run_session(
    agent_a: &mut Agent<'_>,
    agent_b: &mut Agent<'_>,
    link_ab: &mut FaultyLink,
    link_ba: &mut FaultyLink,
) -> Result<(AgentOutcome, AgentOutcome), ProtoError> {
    // Generous cap: every round is a handful of frames; anything beyond
    // this is a livelock bug, not a long negotiation.
    let max_steps = 64 + 16 * agent_a_input_len(agent_a);
    for _ in 0..max_steps {
        let mut progressed = false;
        while let Some(frame) = agent_a.poll_transmit() {
            link_ab.send(frame);
            progressed = true;
        }
        while let Some(frame) = agent_b.poll_transmit() {
            link_ba.send(frame);
            progressed = true;
        }
        while let Some(frame) = link_ab.recv() {
            agent_b.handle_bytes(&frame)?;
            progressed = true;
        }
        while let Some(frame) = link_ba.recv() {
            agent_a.handle_bytes(&frame)?;
            progressed = true;
        }
        if agent_a.is_done() && agent_b.is_done() {
            let a = agent_a.outcome().ok_or(ProtoError::Closed)?;
            let b = agent_b.outcome().ok_or(ProtoError::Closed)?;
            return Ok((a, b));
        }
        if !progressed {
            // No frames moved and nobody finished: a lost frame (fault
            // injection) stalled the lock-step protocol. Surface it with
            // both queues' in-flight counts — empty queues mean the
            // missing frame was dropped outright, non-empty ones mean a
            // delivery backlog — so the stall is diagnosable.
            return Err(ProtoError::Stalled {
                in_flight_ab: link_ab.in_flight(),
                in_flight_ba: link_ba.in_flight(),
            });
        }
    }
    Err(ProtoError::Stalled {
        in_flight_ab: link_ab.in_flight(),
        in_flight_ba: link_ba.in_flight(),
    })
}

// The driver needs a step bound proportional to session size; agents do
// not expose their input directly, so bound on rounds via a generous
// constant per flow. This helper exists to keep the bound readable.
fn agent_a_input_len(_agent: &Agent<'_>) -> usize {
    4096
}

/// Run a session with each agent on its own thread, connected by
/// crossbeam channels (a stand-in for two TCP endpoints).
///
/// Returns the two outcomes `(A, B)`.
pub fn run_session_threaded(
    agent_a: Agent<'static>,
    agent_b: Agent<'static>,
) -> Result<(AgentOutcome, AgentOutcome), ProtoError> {
    use crossbeam::channel::unbounded;

    let (tx_ab, rx_ab) = unbounded::<Vec<u8>>();
    let (tx_ba, rx_ba) = unbounded::<Vec<u8>>();

    let handle_a = std::thread::spawn(move || thread_main(agent_a, tx_ab, rx_ba));
    let handle_b = std::thread::spawn(move || thread_main(agent_b, tx_ba, rx_ab));

    let a = handle_a.join().expect("agent A thread panicked")?;
    let b = handle_b.join().expect("agent B thread panicked")?;
    Ok((a, b))
}

fn thread_main(
    mut agent: Agent<'static>,
    tx: crossbeam::channel::Sender<Vec<u8>>,
    rx: crossbeam::channel::Receiver<Vec<u8>>,
) -> Result<AgentOutcome, ProtoError> {
    use crossbeam::channel::RecvTimeoutError;
    use std::time::Duration;
    loop {
        while let Some(frame) = agent.poll_transmit() {
            // A peer hang-up mid-session is a protocol failure.
            tx.send(frame).map_err(|_| ProtoError::Closed)?;
        }
        if agent.is_done() {
            return agent.outcome().ok_or(ProtoError::Closed);
        }
        match rx.recv_timeout(Duration::from_secs(10)) {
            Ok(frame) => agent.handle_bytes(&frame)?,
            Err(RecvTimeoutError::Timeout) => return Err(ProtoError::Closed),
            Err(RecvTimeoutError::Disconnected) => {
                if agent.is_done() {
                    return agent.outcome().ok_or(ProtoError::Closed);
                }
                return Err(ProtoError::Closed);
            }
        }
    }
}
