//! Length-prefixed binary framing with CRC-32 integrity.
//!
//! Layout on the wire (all integers big-endian):
//!
//! ```text
//! +--------+--------+----------------+=============+----------+
//! | magic  |  type  | payload length |   payload   |  CRC-32  |
//! | u16    |  u8    | u32            |   bytes     |  u32     |
//! +--------+--------+----------------+=============+----------+
//! ```
//!
//! The CRC covers `type || length || payload`. The decoder is
//! incremental: feed arbitrary byte chunks with [`FrameCodec::feed`] and
//! pop complete frames with [`FrameCodec::next_frame`] — the idiom used
//! by event-driven stacks where the transport hands you whatever the
//! socket produced.

use crate::crc::crc32;
use bytes::{BufMut, BytesMut};

/// Frame magic: "NX" (Nexit).
pub const MAGIC: u16 = 0x4E58;

/// Upper bound on payload size. Preference lists for the largest
/// experiment pairs are well under this; anything bigger is corruption.
pub const MAX_FRAME_PAYLOAD: usize = 4 * 1024 * 1024;

/// Framing-layer failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Stream did not start with the frame magic — desynchronized or
    /// corrupted transport.
    BadMagic { found: u16 },
    /// Declared payload length exceeds [`MAX_FRAME_PAYLOAD`].
    TooLarge { declared: usize },
    /// CRC mismatch: the frame was corrupted in flight.
    BadCrc { expected: u32, found: u32 },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic { found } => write!(f, "bad frame magic 0x{found:04X}"),
            FrameError::TooLarge { declared } => {
                write!(f, "declared payload length {declared} exceeds maximum")
            }
            FrameError::BadCrc { expected, found } => {
                write!(
                    f,
                    "CRC mismatch: expected 0x{expected:08X}, found 0x{found:08X}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// A decoded frame: message type byte plus payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message type discriminant (interpreted by [`crate::messages`]).
    pub msg_type: u8,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

/// Encode one frame to wire bytes.
pub fn encode_frame(msg_type: u8, payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_FRAME_PAYLOAD, "payload too large");
    let mut out = Vec::with_capacity(2 + 1 + 4 + payload.len() + 4);
    out.put_u16(MAGIC);
    out.put_u8(msg_type);
    out.put_u32(payload.len() as u32);
    out.extend_from_slice(payload);
    // CRC over type || length || payload (everything after the magic).
    let crc = crc32(&out[2..]);
    out.put_u32(crc);
    out
}

/// Incremental frame decoder.
#[derive(Debug, Default)]
pub struct FrameCodec {
    buffer: BytesMut,
}

impl FrameCodec {
    /// Empty codec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append received bytes.
    pub fn feed(&mut self, data: &[u8]) {
        self.buffer.extend_from_slice(data);
    }

    /// Try to decode the next complete frame. `Ok(None)` means more bytes
    /// are needed. On error the buffer is poisoned — the caller must tear
    /// the session down (the transport is assumed reliable, so any error
    /// is fatal corruption, not something to resynchronize from).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        const HEADER: usize = 2 + 1 + 4;
        if self.buffer.len() < HEADER {
            return Ok(None);
        }
        let magic = u16::from_be_bytes([self.buffer[0], self.buffer[1]]);
        if magic != MAGIC {
            return Err(FrameError::BadMagic { found: magic });
        }
        let msg_type = self.buffer[2];
        let len = u32::from_be_bytes([
            self.buffer[3],
            self.buffer[4],
            self.buffer[5],
            self.buffer[6],
        ]) as usize;
        if len > MAX_FRAME_PAYLOAD {
            return Err(FrameError::TooLarge { declared: len });
        }
        let total = HEADER + len + 4;
        if self.buffer.len() < total {
            return Ok(None);
        }
        let expected = crc32(&self.buffer[2..HEADER + len]);
        let found = u32::from_be_bytes([
            self.buffer[HEADER + len],
            self.buffer[HEADER + len + 1],
            self.buffer[HEADER + len + 2],
            self.buffer[HEADER + len + 3],
        ]);
        if expected != found {
            return Err(FrameError::BadCrc { expected, found });
        }
        let payload = self.buffer[HEADER..HEADER + len].to_vec();
        self.buffer.advance(total);
        Ok(Some(Frame { msg_type, payload }))
    }

    /// Bytes currently buffered (for diagnostics).
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_frame() {
        let wire = encode_frame(3, b"hello");
        let mut codec = FrameCodec::new();
        codec.feed(&wire);
        let frame = codec.next_frame().unwrap().unwrap();
        assert_eq!(frame.msg_type, 3);
        assert_eq!(frame.payload, b"hello");
        assert!(codec.next_frame().unwrap().is_none());
        assert_eq!(codec.buffered(), 0);
    }

    #[test]
    fn empty_payload() {
        let wire = encode_frame(7, b"");
        let mut codec = FrameCodec::new();
        codec.feed(&wire);
        let frame = codec.next_frame().unwrap().unwrap();
        assert_eq!(frame.msg_type, 7);
        assert!(frame.payload.is_empty());
    }

    #[test]
    fn incremental_delivery() {
        let wire = encode_frame(1, b"fragmented payload");
        let mut codec = FrameCodec::new();
        for chunk in wire.chunks(3) {
            assert!(codec.next_frame().unwrap().is_none());
            codec.feed(chunk);
        }
        let frame = codec.next_frame().unwrap().unwrap();
        assert_eq!(frame.payload, b"fragmented payload");
    }

    #[test]
    fn multiple_frames_in_one_feed() {
        let mut wire = encode_frame(1, b"first");
        wire.extend(encode_frame(2, b"second"));
        let mut codec = FrameCodec::new();
        codec.feed(&wire);
        assert_eq!(codec.next_frame().unwrap().unwrap().payload, b"first");
        assert_eq!(codec.next_frame().unwrap().unwrap().payload, b"second");
        assert!(codec.next_frame().unwrap().is_none());
    }

    #[test]
    fn corruption_detected() {
        let mut wire = encode_frame(1, b"payload bytes here");
        let idx = 10; // somewhere in the payload
        wire[idx] ^= 0x40;
        let mut codec = FrameCodec::new();
        codec.feed(&wire);
        assert!(matches!(codec.next_frame(), Err(FrameError::BadCrc { .. })));
    }

    #[test]
    fn bad_magic_detected() {
        let mut wire = encode_frame(1, b"x");
        wire[0] = 0x00;
        let mut codec = FrameCodec::new();
        codec.feed(&wire);
        assert!(matches!(
            codec.next_frame(),
            Err(FrameError::BadMagic { .. })
        ));
    }

    #[test]
    fn oversize_rejected() {
        // Hand-craft a header declaring a huge payload.
        let mut wire = Vec::new();
        wire.put_u16(MAGIC);
        wire.put_u8(1);
        wire.put_u32((MAX_FRAME_PAYLOAD + 1) as u32);
        let mut codec = FrameCodec::new();
        codec.feed(&wire);
        assert!(matches!(
            codec.next_frame(),
            Err(FrameError::TooLarge { .. })
        ));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn roundtrip_any_payload(
                msg_type in any::<u8>(),
                payload in proptest::collection::vec(any::<u8>(), 0..2048),
                chunk in 1usize..64,
            ) {
                let wire = encode_frame(msg_type, &payload);
                let mut codec = FrameCodec::new();
                let mut decoded = None;
                for part in wire.chunks(chunk) {
                    codec.feed(part);
                    if let Some(f) = codec.next_frame().unwrap() {
                        decoded = Some(f);
                    }
                }
                if decoded.is_none() {
                    decoded = codec.next_frame().unwrap();
                }
                let frame = decoded.expect("frame must decode");
                prop_assert_eq!(frame.msg_type, msg_type);
                prop_assert_eq!(frame.payload, payload);
            }

            #[test]
            fn any_single_byte_corruption_is_detected_or_resized(
                payload in proptest::collection::vec(any::<u8>(), 1..256),
                flip_at in 0usize..300,
                flip_bit in 0u8..8,
            ) {
                let wire = encode_frame(9, &payload);
                let flip_at = flip_at % wire.len();
                let mut bad = wire.clone();
                bad[flip_at] ^= 1 << flip_bit;
                let mut codec = FrameCodec::new();
                codec.feed(&bad);
                match codec.next_frame() {
                    // Either an explicit error...
                    Err(_) => {}
                    // ...or the length field grew and the frame is simply
                    // incomplete (never a silently wrong payload).
                    Ok(None) => {}
                    Ok(Some(f)) => {
                        // A flip inside the length field can shrink the
                        // frame; the CRC (positioned by the new length)
                        // would then mismatch with overwhelming
                        // probability. If decode "succeeded", it must be
                        // because nothing material changed — reject any
                        // payload mismatch.
                        prop_assert_eq!(f.payload, payload,
                            "corruption produced a different accepted payload");
                    }
                }
            }
        }
    }
}
