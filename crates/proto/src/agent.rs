//! Poll-based negotiation agent (one side of a session).
//!
//! The agent is *sans-io*: it never touches a socket. Feed it bytes from
//! the transport with [`Agent::handle_frame`]; drain outgoing frames with
//! [`Agent::poll_transmit`]; check [`Agent::is_done`] /
//! [`Agent::outcome`]. Any transport with reliable ordered delivery works
//! — the in-memory [`crate::channel`], a TCP socket, or the threaded
//! driver in [`crate::driver`].
//!
//! ## Session flow
//!
//! ```text
//!   A                                 B
//!   | -- Hello ---------------------> |   config agreement
//!   | <-------------------- Hello --- |
//!   | -- FlowAnnounce --------------> |   flow set validation
//!   | -- PrefList ------------------> |   A discloses first
//!   | <----------------- PrefList --- |   (a cheating B sees A's list)
//!   |                                 |
//!   |  rounds: Propose / Response     |   turn order computed identically
//!   |  (reassignment: PrefList pair)  |   on both sides
//!   |                                 |
//!   | -- Stop or Bye ---------------> |   termination
//!   | <----------------------- Bye --
//! ```
//!
//! Since the `NegotiationMachine` refactor the agent contains **no
//! decision logic at all**: it is a codec shim that owns the session
//! handshake (Hello / FlowAnnounce validation) and translates decoded
//! [`Message`]s into [`nexit_core::machine::Event`]s and drained
//! [`nexit_core::machine::Action`]s into framed messages. The round loop
//! itself is the same [`NegotiationMachine`] the in-process engine
//! drives, so a distributed session reproduces
//! [`nexit_core::negotiate`]'s outcome *by construction* (still pinned
//! end to end, bytes included, by the integration suite).

use crate::frame::{FrameCodec, FrameError};
use crate::messages::{FlowEntry, Message, MessageError};
use nexit_core::machine::{Action, Event, MachineError, NegotiationMachine};
use nexit_core::prefs::PrefTable;
use nexit_core::{DisclosurePolicy, NexitConfig, PreferenceMapper, SessionInput, Side, TableArena};
use nexit_routing::Assignment;
use std::collections::VecDeque;

/// Final result of one agent's session (the machine's outcome).
pub use nexit_core::machine::MachineOutcome as AgentOutcome;

/// Wire type byte of [`Message::PrefList`] (see `messages.rs`).
const PREF_LIST_TYPE: u8 = 3;

/// Agent-level protocol failures. All are fatal to the session.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    /// Framing-layer corruption.
    Frame(FrameError),
    /// Message decoding failure.
    Message(MessageError),
    /// A valid message arrived in the wrong state.
    UnexpectedMessage {
        /// The handshake or machine state the message arrived in.
        state: &'static str,
        /// The offending message kind.
        got: &'static str,
    },
    /// Hello parameters disagree with ours.
    ConfigMismatch(&'static str),
    /// The announced flow set does not match our session input.
    FlowMismatch(&'static str),
    /// A proposal referenced an invalid or settled flow/alternative.
    BadProposal(&'static str),
    /// A preference list had the wrong shape or out-of-range classes.
    BadPrefList(&'static str),
    /// The session input or configuration is structurally invalid.
    InvalidSession(nexit_core::SessionError),
    /// `InflateBest` cheating needs the peer's list first, which only the
    /// second discloser (side B) has in this protocol.
    UnsupportedDisclosure,
    /// The lock-step exchange stopped making progress before both sides
    /// finished — a lost frame stalled the protocol. Carries the number
    /// of frames still queued in each direction when the stall was
    /// detected, so a dropped-frame stall (both queues empty) is
    /// distinguishable from an undelivered backlog.
    Stalled {
        /// Frames in flight from A to B at stall detection.
        in_flight_ab: usize,
        /// Frames in flight from B to A at stall detection.
        in_flight_ba: usize,
    },
    /// A frame exhausted the ARQ retransmission budget without being
    /// acknowledged (reliable transport only; see [`crate::reliable`]).
    RetryExhausted {
        /// Sequence number of the abandoned frame.
        seq: u32,
        /// Retransmissions already attempted.
        retries: usize,
    },
    /// The session did not terminate within its tick deadline.
    DeadlineExceeded {
        /// The deadline that elapsed, in supervisor ticks.
        ticks: u64,
    },
    /// The session already failed or closed.
    Closed,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Frame(e) => write!(f, "frame error: {e}"),
            ProtoError::Message(e) => write!(f, "message error: {e}"),
            ProtoError::UnexpectedMessage { state, got } => {
                write!(f, "unexpected {got} in state {state}")
            }
            ProtoError::ConfigMismatch(what) => write!(f, "config mismatch: {what}"),
            ProtoError::FlowMismatch(what) => write!(f, "flow set mismatch: {what}"),
            ProtoError::BadProposal(what) => write!(f, "bad proposal: {what}"),
            ProtoError::BadPrefList(what) => write!(f, "bad preference list: {what}"),
            ProtoError::InvalidSession(e) => write!(f, "invalid session: {e}"),
            ProtoError::UnsupportedDisclosure => {
                write!(
                    f,
                    "InflateBest disclosure requires disclosing second (side B)"
                )
            }
            ProtoError::Stalled {
                in_flight_ab,
                in_flight_ba,
            } => write!(
                f,
                "session stalled without terminating \
                 ({in_flight_ab} frame(s) in flight A->B, {in_flight_ba} B->A)"
            ),
            ProtoError::RetryExhausted { seq, retries } => write!(
                f,
                "frame seq {seq} unacked after {retries} retransmission(s)"
            ),
            ProtoError::DeadlineExceeded { ticks } => {
                write!(f, "session exceeded its {ticks}-tick deadline")
            }
            ProtoError::Closed => write!(f, "session closed"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<FrameError> for ProtoError {
    fn from(e: FrameError) -> Self {
        ProtoError::Frame(e)
    }
}

impl From<MessageError> for ProtoError {
    fn from(e: MessageError) -> Self {
        ProtoError::Message(e)
    }
}

impl From<MachineError> for ProtoError {
    fn from(e: MachineError) -> Self {
        match e {
            MachineError::InvalidSession(err) => ProtoError::InvalidSession(err),
            MachineError::UnsupportedDisclosure => ProtoError::UnsupportedDisclosure,
            MachineError::BadPrefList(what) => ProtoError::BadPrefList(what),
            MachineError::BadProposal(what) => ProtoError::BadProposal(what),
            MachineError::UnexpectedEvent { state, event } => {
                ProtoError::UnexpectedMessage { state, got: event }
            }
            MachineError::Closed => ProtoError::Closed,
        }
    }
}

/// The session-management handshake preceding the machine-driven round
/// loop.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Handshake {
    /// Waiting for the peer's Hello (A sent its own at construction).
    AwaitHello,
    /// B only: waiting for A's FlowAnnounce.
    AwaitAnnounce,
    /// Handshake complete; every further message belongs to the machine.
    Running,
    /// Session failed.
    Failed,
}

/// One side of a distributed negotiation: frame codec + handshake +
/// [`NegotiationMachine`].
pub struct Agent<'a> {
    side: Side,
    name: String,
    config: NexitConfig,
    input: SessionInput,
    machine: NegotiationMachine<Box<dyn PreferenceMapper + Send + 'a>>,
    codec: FrameCodec,
    outbox: VecDeque<Vec<u8>>,
    handshake: Handshake,
    /// Dedup-window mode (ARQ transports): a byte-identical replay of
    /// the last handled frame is silently ignored instead of failing the
    /// session. Off by default — on a raw link a duplicate is a protocol
    /// violation and must stay fatal.
    tolerate_replays: bool,
    /// Last handled frame (`msg_type`, payload) for replay detection;
    /// tracked only when `tolerate_replays` is set.
    last_frame: Option<(u8, Vec<u8>)>,
}

impl<'a> Agent<'a> {
    /// Create an agent. Side A initiates the session.
    ///
    /// Both agents must be constructed from the same `input`,
    /// `default_assignment` and `config` (in deployment these come from
    /// the §6 flow-signature agreement and the peering contract; the A
    /// side's `FlowAnnounce` re-validates the flow set).
    pub fn new(
        side: Side,
        name: impl Into<String>,
        input: SessionInput,
        default_assignment: Assignment,
        mapper: impl PreferenceMapper + Send + 'a,
        disclosure: DisclosurePolicy,
        config: NexitConfig,
    ) -> Result<Self, ProtoError> {
        Self::new_in(
            &mut TableArena::new(),
            side,
            name,
            input,
            default_assignment,
            mapper,
            disclosure,
            config,
        )
    }

    /// [`Agent::new`] drawing the machine's tables and index buffers from
    /// `arena`. Pair with [`Agent::recycle`]: a driver that serves many
    /// sessions back to back (the `nexit-broker` workers) allocates each
    /// backing buffer exactly once per worker.
    #[allow(clippy::too_many_arguments)] // mirrors `new` plus the arena
    pub fn new_in(
        arena: &mut TableArena,
        side: Side,
        name: impl Into<String>,
        input: SessionInput,
        default_assignment: Assignment,
        mapper: impl PreferenceMapper + Send + 'a,
        disclosure: DisclosurePolicy,
        config: NexitConfig,
    ) -> Result<Self, ProtoError> {
        let machine = NegotiationMachine::new_in(
            arena,
            side,
            // The wire protocol fixes the disclosure order: A discloses
            // first, so only B may run a peer-list-dependent cheater.
            Side::A,
            input.clone(),
            default_assignment,
            Box::new(mapper) as Box<dyn PreferenceMapper + Send + 'a>,
            disclosure,
            config,
        )?;
        let mut agent = Self {
            side,
            name: name.into(),
            config,
            input,
            machine,
            codec: FrameCodec::new(),
            outbox: VecDeque::new(),
            handshake: Handshake::AwaitHello,
            tolerate_replays: false,
            last_frame: None,
        };
        if side == Side::A {
            agent.send(Message::Hello {
                side: Side::A,
                name: agent.name.clone(),
                num_alternatives: agent.input.num_alternatives as u16,
                config: agent.config,
            });
        }
        Ok(agent)
    }

    /// Retire the agent, returning its machine's table and index buffers
    /// to `arena` for the next [`Agent::new_in`].
    pub fn recycle(self, arena: &mut TableArena) {
        self.machine.recycle(arena);
    }

    fn send(&mut self, msg: Message) {
        self.outbox.push_back(msg.encode());
    }

    /// Encode every action the machine wants transmitted. Held back until
    /// the handshake completes — the machine queues its first PrefList at
    /// construction, but the wire order is Hello / Hello / FlowAnnounce
    /// first.
    fn drain_machine(&mut self) {
        if self.handshake != Handshake::Running {
            return;
        }
        while let Some(action) = self.machine.poll_action() {
            let msg = match action {
                Action::SendPrefs { prefs } => Message::PrefList {
                    prefs: encode_prefs(&prefs),
                },
                Action::SendProposal {
                    round,
                    local_flow,
                    alternative,
                } => Message::Propose {
                    round,
                    local_flow: local_flow as u32,
                    alternative,
                },
                Action::SendResponse { round, accepted } => Message::Response { round, accepted },
                Action::SendStop { side } => Message::Stop { side },
                Action::SendBye => Message::Bye,
            };
            self.send(msg);
        }
    }

    /// Pop the next outgoing wire frame, if any.
    pub fn poll_transmit(&mut self) -> Option<Vec<u8>> {
        self.drain_machine();
        self.outbox.pop_front()
    }

    /// Whether the session reached a terminal state (done or failed).
    pub fn is_done(&self) -> bool {
        match self.handshake {
            Handshake::Failed => self.outbox.is_empty(),
            Handshake::Running => self.machine.is_done() && self.outbox.is_empty(),
            _ => false,
        }
    }

    /// The outcome, once [`Agent::is_done`] and the session succeeded.
    pub fn outcome(&self) -> Option<AgentOutcome> {
        if self.handshake != Handshake::Running {
            return None;
        }
        self.machine.outcome()
    }

    /// This agent's side.
    pub fn side(&self) -> Side {
        self.side
    }

    /// Enable (or disable) replay tolerance for dedup-window transports.
    ///
    /// The ARQ layer ([`crate::reliable`]) absorbs duplicates below the
    /// agent, but an endpoint restart or an ack raced by a retransmit
    /// can still re-deliver the last frame; with tolerance on, a
    /// byte-identical replay of the most recently handled frame is
    /// ignored instead of surfacing as
    /// [`ProtoError::UnexpectedMessage`] / [`ProtoError::Closed`]. One
    /// deliberate exception: an identical `PrefList` while the machine
    /// is awaiting disclosure is *fresh data*, not a replay — honest
    /// mappers may legitimately re-disclose an unchanged table after a
    /// reassignment — so it is always dispatched. Raw (non-ARQ) links
    /// must leave this off: there a duplicate is a transport-contract
    /// violation and failing fast is correct.
    pub fn set_replay_tolerance(&mut self, tolerate: bool) {
        self.tolerate_replays = tolerate;
        if !tolerate {
            self.last_frame = None;
        }
    }

    /// Feed received transport bytes; processes every complete frame.
    pub fn handle_bytes(&mut self, data: &[u8]) -> Result<(), ProtoError> {
        if self.handshake == Handshake::Failed {
            return Err(ProtoError::Closed);
        }
        self.codec.feed(data);
        loop {
            match self.codec.next_frame() {
                Ok(Some(frame)) => {
                    if self.tolerate_replays {
                        let is_replay = self
                            .last_frame
                            .as_ref()
                            .is_some_and(|(t, p)| *t == frame.msg_type && *p == frame.payload);
                        if is_replay && !self.replayed_frame_is_fresh(frame.msg_type) {
                            continue;
                        }
                        self.last_frame = Some((frame.msg_type, frame.payload.clone()));
                    }
                    let msg = match Message::decode(&frame) {
                        Ok(m) => m,
                        Err(e) => {
                            self.handshake = Handshake::Failed;
                            return Err(e.into());
                        }
                    };
                    if let Err(e) = self.handle_message(msg) {
                        self.handshake = Handshake::Failed;
                        return Err(e);
                    }
                }
                Ok(None) => return Ok(()),
                Err(e) => {
                    self.handshake = Handshake::Failed;
                    return Err(e.into());
                }
            }
        }
    }

    /// Alias for [`Agent::handle_bytes`] (smoltcp-style naming).
    pub fn handle_frame(&mut self, data: &[u8]) -> Result<(), ProtoError> {
        self.handle_bytes(data)
    }

    /// Whether a byte-identical repeat of the last frame is legitimate
    /// new data rather than a replay: only a `PrefList` while the
    /// machine awaits disclosure qualifies (an unchanged table honestly
    /// re-disclosed after reassignment encodes to the same bytes). No
    /// other message can lawfully repeat verbatim — Hello/FlowAnnounce
    /// happen once, Propose/Response embed their round number, and
    /// Stop/Bye terminate.
    fn replayed_frame_is_fresh(&self, msg_type: u8) -> bool {
        msg_type == PREF_LIST_TYPE
            && self.handshake == Handshake::Running
            && self.machine.expects_prefs()
    }

    fn handle_message(&mut self, msg: Message) -> Result<(), ProtoError> {
        match (self.handshake, msg) {
            (
                Handshake::AwaitHello,
                Message::Hello {
                    side,
                    num_alternatives,
                    config,
                    ..
                },
            ) => {
                if side != self.side.other() {
                    return Err(ProtoError::ConfigMismatch("peer claims our side"));
                }
                if num_alternatives as usize != self.input.num_alternatives {
                    return Err(ProtoError::ConfigMismatch("alternative count"));
                }
                if config != self.config {
                    return Err(ProtoError::ConfigMismatch("engine configuration"));
                }
                match self.side {
                    Side::A => {
                        // B answered our Hello: announce flows, then let
                        // the machine's queued PrefList go out.
                        let flows: Vec<FlowEntry> = self
                            .input
                            .flow_ids
                            .iter()
                            .zip(&self.input.defaults)
                            .zip(&self.input.volumes)
                            .map(|((&flow, &default), &volume)| FlowEntry {
                                flow,
                                default,
                                volume,
                            })
                            .collect();
                        self.send(Message::FlowAnnounce { flows });
                        self.handshake = Handshake::Running;
                    }
                    Side::B => {
                        // A's opening Hello: answer it, then await the
                        // flow announcement.
                        self.send(Message::Hello {
                            side: Side::B,
                            name: self.name.clone(),
                            num_alternatives: self.input.num_alternatives as u16,
                            config: self.config,
                        });
                        self.handshake = Handshake::AwaitAnnounce;
                    }
                }
                Ok(())
            }
            (Handshake::AwaitAnnounce, Message::FlowAnnounce { flows }) => {
                if flows.len() != self.input.len() {
                    return Err(ProtoError::FlowMismatch("flow count"));
                }
                for (i, e) in flows.iter().enumerate() {
                    if e.flow != self.input.flow_ids[i] {
                        return Err(ProtoError::FlowMismatch("flow id"));
                    }
                    if e.default != self.input.defaults[i] {
                        return Err(ProtoError::FlowMismatch("default alternative"));
                    }
                    if (e.volume - self.input.volumes[i]).abs() > 1e-9 {
                        return Err(ProtoError::FlowMismatch("volume"));
                    }
                }
                self.handshake = Handshake::Running;
                Ok(())
            }
            (Handshake::Running, msg) => {
                let event = match msg {
                    Message::PrefList { prefs } => Event::PeerPrefs {
                        prefs: decode_prefs(prefs),
                    },
                    Message::Propose {
                        round,
                        local_flow,
                        alternative,
                    } => Event::Proposal {
                        round,
                        local_flow: local_flow as usize,
                        alternative,
                    },
                    Message::Response { round, accepted } => Event::Response { round, accepted },
                    Message::Stop { side } => Event::PeerStop { side },
                    Message::Bye => Event::PeerBye,
                    other => {
                        return Err(ProtoError::UnexpectedMessage {
                            state: "Running",
                            got: msg_name(&other),
                        })
                    }
                };
                self.machine.handle(event).map_err(ProtoError::from)
            }
            (phase, msg) => Err(ProtoError::UnexpectedMessage {
                state: handshake_name(phase),
                got: msg_name(&msg),
            }),
        }
    }
}

/// Wire representation of a disclosed table (`i16` classes).
fn encode_prefs(prefs: &PrefTable) -> Vec<Vec<i16>> {
    (0..prefs.num_flows())
        .map(|f| prefs.row(f).iter().map(|&c| c as i16).collect())
        .collect()
}

/// Widen wire classes back to a [`PrefTable`]. Shape and range are
/// validated by the machine.
fn decode_prefs(prefs: Vec<Vec<i16>>) -> PrefTable {
    let num_alts = prefs.first().map_or(0, Vec::len);
    let mut out = PrefTable::zero(prefs.len(), num_alts);
    for (f, row) in prefs.iter().enumerate() {
        assert_eq!(row.len(), num_alts, "ragged preference table");
        for (cell, &c) in out.row_mut(f).iter_mut().zip(row) {
            *cell = i32::from(c);
        }
    }
    out
}

fn handshake_name(h: Handshake) -> &'static str {
    match h {
        Handshake::AwaitHello => "AwaitHello",
        Handshake::AwaitAnnounce => "AwaitAnnounce",
        Handshake::Running => "Running",
        Handshake::Failed => "Failed",
    }
}

fn msg_name(m: &Message) -> &'static str {
    match m {
        Message::Hello { .. } => "Hello",
        Message::FlowAnnounce { .. } => "FlowAnnounce",
        Message::PrefList { .. } => "PrefList",
        Message::Propose { .. } => "Propose",
        Message::Response { .. } => "Response",
        Message::Stop { .. } => "Stop",
        Message::Bye => "Bye",
    }
}
