//! Poll-based negotiation agent (one side of a session).
//!
//! The agent is *sans-io*: it never touches a socket. Feed it bytes from
//! the transport with [`Agent::handle_frame`]; drain outgoing frames with
//! [`Agent::poll_transmit`]; check [`Agent::is_done`] /
//! [`Agent::outcome`]. Any transport with reliable ordered delivery works
//! — the in-memory [`crate::channel`], a TCP socket, or the threaded
//! driver in [`crate::driver`].
//!
//! ## Session flow
//!
//! ```text
//!   A                                 B
//!   | -- Hello ---------------------> |   config agreement
//!   | <-------------------- Hello --- |
//!   | -- FlowAnnounce --------------> |   flow set validation
//!   | -- PrefList ------------------> |   A disclosses first
//!   | <----------------- PrefList --- |   (a cheating B sees A's list)
//!   |                                 |
//!   |  rounds: Propose / Response     |   turn order computed identically
//!   |  (reassignment: PrefList pair)  |   on both sides
//!   |                                 |
//!   | -- Stop or Bye ---------------> |   termination
//!   | <----------------------- Bye --
//! ```
//!
//! Decision logic is [`nexit_core::selection`] — the same functions the
//! in-process engine uses — so a distributed session reproduces the
//! engine's assignment exactly.

use crate::frame::{FrameCodec, FrameError};
use crate::messages::{FlowEntry, Message, MessageError};
use nexit_core::selection::{self, TableState};
use nexit_core::{
    AcceptRule, DisclosurePolicy, NexitConfig, PrefTable, PreferenceMapper, SessionInput, Side,
    StopPolicy, Termination,
};
use nexit_core::prefs::quantize;
use nexit_routing::Assignment;
use nexit_topology::IcxId;
use std::collections::VecDeque;

/// Agent-level protocol failures. All are fatal to the session.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    /// Framing-layer corruption.
    Frame(FrameError),
    /// Message decoding failure.
    Message(MessageError),
    /// A valid message arrived in the wrong state.
    UnexpectedMessage { state: &'static str, got: &'static str },
    /// Hello parameters disagree with ours.
    ConfigMismatch(&'static str),
    /// The announced flow set does not match our session input.
    FlowMismatch(&'static str),
    /// A proposal referenced an invalid or settled flow/alternative.
    BadProposal(&'static str),
    /// A preference list had the wrong shape or out-of-range classes.
    BadPrefList(&'static str),
    /// `InflateBest` cheating needs the peer's list first, which only the
    /// second discloser (side B) has in this protocol.
    UnsupportedDisclosure,
    /// The session already failed or closed.
    Closed,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Frame(e) => write!(f, "frame error: {e}"),
            ProtoError::Message(e) => write!(f, "message error: {e}"),
            ProtoError::UnexpectedMessage { state, got } => {
                write!(f, "unexpected {got} in state {state}")
            }
            ProtoError::ConfigMismatch(what) => write!(f, "config mismatch: {what}"),
            ProtoError::FlowMismatch(what) => write!(f, "flow set mismatch: {what}"),
            ProtoError::BadProposal(what) => write!(f, "bad proposal: {what}"),
            ProtoError::BadPrefList(what) => write!(f, "bad preference list: {what}"),
            ProtoError::UnsupportedDisclosure => {
                write!(f, "InflateBest disclosure requires disclosing second (side B)")
            }
            ProtoError::Closed => write!(f, "session closed"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<FrameError> for ProtoError {
    fn from(e: FrameError) -> Self {
        ProtoError::Frame(e)
    }
}

impl From<MessageError> for ProtoError {
    fn from(e: MessageError) -> Self {
        ProtoError::Message(e)
    }
}

/// Final result of one agent's session.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentOutcome {
    /// The agreed assignment over all pair flows.
    pub assignment: Assignment,
    /// This agent's true cumulative preference gain.
    pub my_gain: i64,
    /// How the session ended.
    pub termination: Termination,
    /// Rounds executed.
    pub rounds: u32,
    /// Preference reassignments performed.
    pub reassignments: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// A only: must send Hello (queued at construction).
    AwaitHello,
    /// B only: waiting for A's FlowAnnounce.
    AwaitAnnounce,
    /// Waiting for the peer's initial PrefList.
    AwaitPrefs,
    /// Round loop: propose when it is our turn, else await Propose.
    Turn,
    /// We proposed; waiting for Response.
    AwaitResponse,
    /// Reassignment triggered; waiting for the peer's new PrefList.
    AwaitReassignList,
    /// We sent Stop or Bye; waiting for the closing Bye.
    AwaitBye,
    /// Session complete.
    Done,
    /// Session failed.
    Failed,
}

/// One side of a distributed negotiation.
pub struct Agent<'a> {
    side: Side,
    name: String,
    mapper: Box<dyn PreferenceMapper + Send + 'a>,
    disclosure: DisclosurePolicy,
    config: NexitConfig,
    input: SessionInput,
    assignment: Assignment,
    state: TableState,
    codec: FrameCodec,
    outbox: VecDeque<Vec<u8>>,
    phase: Phase,
    my_true: PrefTable,
    my_disclosed: PrefTable,
    their_disclosed: PrefTable,
    my_gain: i64,
    disclosed_gain_a: i64,
    disclosed_gain_b: i64,
    round: u32,
    num_remaining: usize,
    volume_since_reassign: f64,
    reassignments: usize,
    pending: Option<(usize, IcxId)>,
    termination: Option<Termination>,
    /// Accepted moves in round order, for the credit-veto rollback.
    accepted_log: Vec<(usize, IcxId)>,
}

impl<'a> Agent<'a> {
    /// Create an agent. Side A initiates the session.
    ///
    /// Both agents must be constructed from the same `input`,
    /// `default_assignment` and `config` (in deployment these come from
    /// the §6 flow-signature agreement and the peering contract; the A
    /// side's `FlowAnnounce` re-validates the flow set).
    pub fn new(
        side: Side,
        name: impl Into<String>,
        input: SessionInput,
        default_assignment: Assignment,
        mapper: impl PreferenceMapper + Send + 'a,
        disclosure: DisclosurePolicy,
        config: NexitConfig,
    ) -> Result<Self, ProtoError> {
        if side == Side::A && disclosure == DisclosurePolicy::InflateBest {
            return Err(ProtoError::UnsupportedDisclosure);
        }
        let n = input.len();
        let k = input.num_alternatives;
        let mut agent = Self {
            side,
            name: name.into(),
            mapper: Box::new(mapper),
            disclosure,
            config,
            input,
            assignment: default_assignment,
            state: TableState::new(n, k),
            codec: FrameCodec::new(),
            outbox: VecDeque::new(),
            phase: match side {
                Side::A => Phase::AwaitHello,
                Side::B => Phase::AwaitHello,
            },
            my_true: PrefTable::zero(n, k),
            my_disclosed: PrefTable::zero(n, k),
            their_disclosed: PrefTable::zero(n, k),
            my_gain: 0,
            disclosed_gain_a: 0,
            disclosed_gain_b: 0,
            round: 0,
            num_remaining: n,
            volume_since_reassign: 0.0,
            reassignments: 0,
            pending: None,
            termination: None,
            accepted_log: Vec::new(),
        };
        if side == Side::A {
            agent.send(Message::Hello {
                side: Side::A,
                name: agent.name.clone(),
                num_alternatives: k as u16,
                config: agent.config,
            });
        }
        Ok(agent)
    }

    fn send(&mut self, msg: Message) {
        self.outbox.push_back(msg.encode());
    }

    /// Pop the next outgoing wire frame, if any.
    pub fn poll_transmit(&mut self) -> Option<Vec<u8>> {
        self.advance();
        self.outbox.pop_front()
    }

    /// Whether the session reached a terminal state (done or failed).
    pub fn is_done(&self) -> bool {
        matches!(self.phase, Phase::Done | Phase::Failed) && self.outbox.is_empty()
    }

    /// The outcome, once [`Agent::is_done`] and the session succeeded.
    pub fn outcome(&self) -> Option<AgentOutcome> {
        if self.phase != Phase::Done {
            return None;
        }
        Some(AgentOutcome {
            assignment: self.assignment.clone(),
            my_gain: self.my_gain,
            termination: self.termination.unwrap_or(Termination::Exhausted),
            rounds: self.round,
            reassignments: self.reassignments,
        })
    }

    /// This agent's side.
    pub fn side(&self) -> Side {
        self.side
    }

    /// Feed received transport bytes; processes every complete frame.
    pub fn handle_bytes(&mut self, data: &[u8]) -> Result<(), ProtoError> {
        if self.phase == Phase::Failed {
            return Err(ProtoError::Closed);
        }
        self.codec.feed(data);
        loop {
            match self.codec.next_frame() {
                Ok(Some(frame)) => {
                    let msg = match Message::decode(&frame) {
                        Ok(m) => m,
                        Err(e) => {
                            self.phase = Phase::Failed;
                            return Err(e.into());
                        }
                    };
                    if let Err(e) = self.handle_message(msg) {
                        self.phase = Phase::Failed;
                        return Err(e);
                    }
                }
                Ok(None) => return Ok(()),
                Err(e) => {
                    self.phase = Phase::Failed;
                    return Err(e.into());
                }
            }
        }
    }

    /// Alias for [`Agent::handle_bytes`] (smoltcp-style naming).
    pub fn handle_frame(&mut self, data: &[u8]) -> Result<(), ProtoError> {
        self.handle_bytes(data)
    }

    /// Compute and store our preference tables; returns the disclosed
    /// table to transmit.
    fn map_own_prefs(&mut self) -> Vec<Vec<i16>> {
        let gains = self.mapper.gains(&self.input, &self.assignment);
        self.my_true = quantize(&gains, self.config.pref_range);
        self.my_disclosed = self.disclosure.disclose(
            &self.my_true,
            &self.their_disclosed,
            self.config.pref_range,
            &self.input.defaults,
        );
        (0..self.my_disclosed.num_flows())
            .map(|f| {
                self.my_disclosed
                    .row(f)
                    .iter()
                    .map(|&c| c as i16)
                    .collect()
            })
            .collect()
    }

    fn store_their_prefs(&mut self, prefs: Vec<Vec<i16>>) -> Result<(), ProtoError> {
        if prefs.len() != self.input.len() {
            return Err(ProtoError::BadPrefList("row count mismatch"));
        }
        let p = self.config.pref_range;
        let mut rows = Vec::with_capacity(prefs.len());
        for row in prefs {
            if row.len() != self.input.num_alternatives {
                return Err(ProtoError::BadPrefList("alternative count mismatch"));
            }
            if row.iter().any(|&c| i32::from(c).abs() > p) {
                return Err(ProtoError::BadPrefList("class out of range"));
            }
            rows.push(row.into_iter().map(i32::from).collect());
        }
        self.their_disclosed = PrefTable::new(rows);
        Ok(())
    }

    /// Disclosed tables in (A, B) orientation.
    fn tables_ab(&self) -> (&PrefTable, &PrefTable) {
        match self.side {
            Side::A => (&self.my_disclosed, &self.their_disclosed),
            Side::B => (&self.their_disclosed, &self.my_disclosed),
        }
    }

    fn whose_turn(&self) -> Side {
        selection::decide_turn(
            self.config.turn,
            self.round as usize,
            self.disclosed_gain_a,
            self.disclosed_gain_b,
        )
    }

    fn my_projection(&self) -> i64 {
        let (da, db) = self.tables_ab();
        let (d_own, d_other) = match self.side {
            Side::A => (da, db),
            Side::B => (db, da),
        };
        selection::projected_gain(
            &self.my_true,
            d_own,
            d_other,
            &self.state,
            self.input.num_alternatives,
            &self.input.defaults,
        )
    }

    /// Advance the state machine when it is our turn to act.
    fn advance(&mut self) {
        if self.phase != Phase::Turn {
            return;
        }
        if self.num_remaining == 0 {
            self.termination = Some(Termination::Exhausted);
            self.send(Message::Bye);
            self.phase = Phase::AwaitBye;
            return;
        }
        if self.whose_turn() != self.side {
            return; // peer proposes; we wait
        }
        // Our turn: early-termination self check.
        if self.config.stop == StopPolicy::Early && self.my_projection() < 0 {
            self.termination = Some(Termination::Stopped(self.side));
            self.send(Message::Stop { side: self.side });
            self.phase = Phase::AwaitBye;
            return;
        }
        let (da, db) = self.tables_ab();
        let (d_own, d_other) = match self.side {
            Side::A => (da, db),
            Side::B => (db, da),
        };
        let guard_floor = match self.config.accept {
            AcceptRule::Always => None,
            AcceptRule::VetoNegativeCumulative => Some(self.my_gain),
            AcceptRule::CreditVeto { credit } => Some(self.my_gain + credit),
        };
        let self_guard = guard_floor.map(|floor| (&self.my_true, floor));
        let proposal = selection::select_proposal(
            d_own,
            d_other,
            &self.state,
            self.input.num_alternatives,
            self.config.proposal,
            self_guard,
            &self.input.defaults,
        );
        let Some((local, alt)) = proposal else {
            self.termination = Some(Termination::Exhausted);
            self.send(Message::Bye);
            self.phase = Phase::AwaitBye;
            return;
        };
        // Full-termination self check against the concrete proposal.
        if self.config.stop == StopPolicy::Full
            && self.my_gain + i64::from(self.my_true.get(local, alt)) < 0
        {
            self.termination = Some(Termination::Stopped(self.side));
            self.send(Message::Stop { side: self.side });
            self.phase = Phase::AwaitBye;
            return;
        }
        self.pending = Some((local, alt));
        self.send(Message::Propose {
            round: self.round,
            local_flow: local as u32,
            alternative: alt,
        });
        self.phase = Phase::AwaitResponse;
    }

    fn handle_message(&mut self, msg: Message) -> Result<(), ProtoError> {
        match (self.phase, msg) {
            (Phase::AwaitHello, Message::Hello { side, num_alternatives, config, .. }) => {
                if side != self.side.other() {
                    return Err(ProtoError::ConfigMismatch("peer claims our side"));
                }
                if num_alternatives as usize != self.input.num_alternatives {
                    return Err(ProtoError::ConfigMismatch("alternative count"));
                }
                if config != self.config {
                    return Err(ProtoError::ConfigMismatch("engine configuration"));
                }
                match self.side {
                    Side::A => {
                        // B answered our Hello: announce flows and
                        // disclose first.
                        let flows: Vec<FlowEntry> = self
                            .input
                            .flow_ids
                            .iter()
                            .zip(&self.input.defaults)
                            .zip(&self.input.volumes)
                            .map(|((&flow, &default), &volume)| FlowEntry {
                                flow,
                                default,
                                volume,
                            })
                            .collect();
                        self.send(Message::FlowAnnounce { flows });
                        let prefs = self.map_own_prefs();
                        self.send(Message::PrefList { prefs });
                        self.phase = Phase::AwaitPrefs;
                    }
                    Side::B => {
                        // A's opening Hello: answer it, then await the
                        // flow announcement.
                        self.send(Message::Hello {
                            side: Side::B,
                            name: self.name.clone(),
                            num_alternatives: self.input.num_alternatives as u16,
                            config: self.config,
                        });
                        self.phase = Phase::AwaitAnnounce;
                    }
                }
                Ok(())
            }
            (Phase::AwaitAnnounce, Message::FlowAnnounce { flows }) => {
                if flows.len() != self.input.len() {
                    return Err(ProtoError::FlowMismatch("flow count"));
                }
                for (i, e) in flows.iter().enumerate() {
                    if e.flow != self.input.flow_ids[i] {
                        return Err(ProtoError::FlowMismatch("flow id"));
                    }
                    if e.default != self.input.defaults[i] {
                        return Err(ProtoError::FlowMismatch("default alternative"));
                    }
                    if (e.volume - self.input.volumes[i]).abs() > 1e-9 {
                        return Err(ProtoError::FlowMismatch("volume"));
                    }
                }
                self.phase = Phase::AwaitPrefs;
                Ok(())
            }
            (Phase::AwaitPrefs, Message::PrefList { prefs }) => {
                self.store_their_prefs(prefs)?;
                if self.side == Side::B {
                    // We disclose second (a cheater exploits A's list).
                    let prefs = self.map_own_prefs();
                    self.send(Message::PrefList { prefs });
                }
                self.phase = Phase::Turn;
                Ok(())
            }
            (Phase::Turn, Message::Propose { round, local_flow, alternative }) => {
                if self.whose_turn() == self.side {
                    return Err(ProtoError::BadProposal("proposal out of turn"));
                }
                if round != self.round {
                    return Err(ProtoError::BadProposal("round mismatch"));
                }
                let local = local_flow as usize;
                if local >= self.input.len() || !self.state.remaining[local] {
                    return Err(ProtoError::BadProposal("flow not on the table"));
                }
                if alternative.index() >= self.input.num_alternatives
                    || self.state.banned[local][alternative.index()]
                {
                    return Err(ProtoError::BadProposal("alternative unavailable"));
                }
                // Our own stop checks, exercised as the acceptor.
                if self.config.stop == StopPolicy::Early && self.my_projection() < 0 {
                    self.termination = Some(Termination::Stopped(self.side));
                    self.send(Message::Stop { side: self.side });
                    self.phase = Phase::AwaitBye;
                    return Ok(());
                }
                if self.config.stop == StopPolicy::Full
                    && self.my_gain + i64::from(self.my_true.get(local, alternative)) < 0
                {
                    self.termination = Some(Termination::Stopped(self.side));
                    self.send(Message::Stop { side: self.side });
                    self.phase = Phase::AwaitBye;
                    return Ok(());
                }
                let accepted = match self.config.accept {
                    AcceptRule::Always => true,
                    AcceptRule::VetoNegativeCumulative => {
                        self.my_gain + i64::from(self.my_true.get(local, alternative)) >= 0
                    }
                    AcceptRule::CreditVeto { credit } => {
                        self.my_gain + i64::from(self.my_true.get(local, alternative))
                            >= -credit
                    }
                };
                self.send(Message::Response {
                    round: self.round,
                    accepted,
                });
                self.apply_round_result(local, alternative, accepted);
                Ok(())
            }
            (Phase::AwaitResponse, Message::Response { round, accepted }) => {
                if round != self.round {
                    return Err(ProtoError::BadProposal("response round mismatch"));
                }
                let (local, alt) = self
                    .pending
                    .take()
                    .expect("AwaitResponse without pending proposal");
                self.apply_round_result(local, alt, accepted);
                Ok(())
            }
            (Phase::AwaitResponse | Phase::Turn, Message::Stop { side }) => {
                self.termination = Some(Termination::Stopped(side));
                self.pending = None;
                self.send(Message::Bye);
                self.finish();
                Ok(())
            }
            (Phase::AwaitResponse | Phase::Turn, Message::Bye) => {
                self.termination = Some(Termination::Exhausted);
                self.pending = None;
                self.send(Message::Bye);
                self.finish();
                Ok(())
            }
            (Phase::AwaitBye, Message::Bye) => {
                self.finish();
                Ok(())
            }
            (Phase::AwaitBye, Message::Stop { side }) => {
                // Simultaneous stop from the peer while ours is in
                // flight: keep the earlier (our) termination, still
                // answer with Bye.
                let _ = side;
                self.send(Message::Bye);
                self.finish();
                Ok(())
            }
            (Phase::AwaitReassignList, Message::PrefList { prefs }) => {
                self.store_their_prefs(prefs)?;
                if self.side == Side::B {
                    let prefs = self.map_own_prefs();
                    self.send(Message::PrefList { prefs });
                }
                self.phase = Phase::Turn;
                Ok(())
            }
            (phase, msg) => Err(ProtoError::UnexpectedMessage {
                state: phase_name(phase),
                got: msg_name(&msg),
            }),
        }
    }

    /// Close the session: apply the credit-veto rollback (computed
    /// identically by both sides from disclosed state) and mark Done.
    fn finish(&mut self) {
        if matches!(self.config.accept, AcceptRule::CreditVeto { .. }) {
            let (da, db) = match self.side {
                Side::A => (&self.my_disclosed, &self.their_disclosed),
                Side::B => (&self.their_disclosed, &self.my_disclosed),
            };
            let plan = selection::rollback_plan(
                da,
                db,
                &self.accepted_log,
                self.disclosed_gain_a,
                self.disclosed_gain_b,
            );
            for idx in plan {
                let (local, alt) = self.accepted_log[idx];
                self.assignment
                    .set(self.input.flow_ids[local], self.input.defaults[local]);
                self.my_gain -= i64::from(self.my_true.get(local, alt));
                self.disclosed_gain_a -= i64::from(match self.side {
                    Side::A => self.my_disclosed.get(local, alt),
                    Side::B => self.their_disclosed.get(local, alt),
                });
                self.disclosed_gain_b -= i64::from(match self.side {
                    Side::A => self.their_disclosed.get(local, alt),
                    Side::B => self.my_disclosed.get(local, alt),
                });
            }
        }
        self.phase = Phase::Done;
    }

    /// Apply one completed round (both sides run this identically).
    fn apply_round_result(&mut self, local: usize, alt: IcxId, accepted: bool) {
        self.round += 1;
        if !accepted {
            self.state.banned[local][alt.index()] = true;
            self.phase = Phase::Turn;
            return;
        }
        self.state.remaining[local] = false;
        self.num_remaining -= 1;
        self.accepted_log.push((local, alt));
        self.assignment.set(self.input.flow_ids[local], alt);
        self.my_gain += i64::from(self.my_true.get(local, alt));
        let (da, db) = self.tables_ab();
        let (ga, gb) = (
            i64::from(da.get(local, alt)),
            i64::from(db.get(local, alt)),
        );
        self.disclosed_gain_a += ga;
        self.disclosed_gain_b += gb;
        self.volume_since_reassign += self.input.volumes[local];

        // Reassignment trigger: computed identically on both sides.
        if let Some(frac) = self.config.reassign_interval_frac {
            let threshold = frac * self.input.total_volume();
            if self.volume_since_reassign >= threshold && self.num_remaining > 0 {
                self.reassignments += 1;
                self.volume_since_reassign = 0.0;
                if self.side == Side::A {
                    let prefs = self.map_own_prefs();
                    self.send(Message::PrefList { prefs });
                }
                // Both sides now wait for the peer's fresh list (B
                // computes its own only after seeing A's).
                self.phase = Phase::AwaitReassignList;
                return;
            }
        }
        self.phase = Phase::Turn;
    }
}

fn phase_name(p: Phase) -> &'static str {
    match p {
        Phase::AwaitHello => "AwaitHello",
        Phase::AwaitAnnounce => "AwaitAnnounce",
        Phase::AwaitPrefs => "AwaitPrefs",
        Phase::Turn => "Turn",
        Phase::AwaitResponse => "AwaitResponse",
        Phase::AwaitReassignList => "AwaitReassignList",
        Phase::AwaitBye => "AwaitBye",
        Phase::Done => "Done",
        Phase::Failed => "Failed",
    }
}

fn msg_name(m: &Message) -> &'static str {
    match m {
        Message::Hello { .. } => "Hello",
        Message::FlowAnnounce { .. } => "FlowAnnounce",
        Message::PrefList { .. } => "PrefList",
        Message::Propose { .. } => "Propose",
        Message::Response { .. } => "Response",
        Message::Stop { .. } => "Stop",
        Message::Bye => "Bye",
    }
}
