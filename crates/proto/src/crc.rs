//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Used as the frame integrity check. Implemented from scratch — the
//! offline crate set has no checksum crate — with the standard reflected
//! algorithm (polynomial `0xEDB88320`, init `0xFFFFFFFF`, final XOR
//! `0xFFFFFFFF`), byte-at-a-time over a 256-entry table.

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

/// Incremental CRC-32 state for multi-part inputs.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feed bytes.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.state = (self.state >> 8) ^ TABLE[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Final checksum.
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"negotiation-based routing between neighboring ISPs";
        let mut inc = Crc32::new();
        inc.update(&data[..10]);
        inc.update(&data[10..30]);
        inc.update(&data[30..]);
        assert_eq!(inc.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let data = b"some frame payload";
        let original = crc32(data);
        let mut corrupted = data.to_vec();
        for byte in 0..corrupted.len() {
            for bit in 0..8 {
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), original, "missed flip at {byte}:{bit}");
                corrupted[byte] ^= 1 << bit;
            }
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn split_invariance(data in proptest::collection::vec(any::<u8>(), 0..512), split in 0usize..512) {
                let split = split.min(data.len());
                let mut inc = Crc32::new();
                inc.update(&data[..split]);
                inc.update(&data[split..]);
                prop_assert_eq!(inc.finish(), crc32(&data));
            }
        }
    }
}
