//! The negotiation message set and its binary codec.
//!
//! One message type per protocol step (paper §4 plus session management):
//!
//! | type | message        | direction        | purpose                          |
//! |------|----------------|------------------|----------------------------------|
//! | 1    | `Hello`        | both, A first    | identify side, agree on config   |
//! | 2    | `FlowAnnounce` | upstream → down  | the flow set on the table        |
//! | 3    | `PrefList`     | both, A first    | disclosed preference classes     |
//! | 4    | `Propose`      | proposer → other | one (flow, alternative) proposal |
//! | 5    | `Response`     | other → proposer | accept / reject                  |
//! | 6    | `Stop`         | either           | early/full termination           |
//! | 7    | `Bye`          | both             | orderly shutdown                 |
//!
//! All integers are big-endian; preferences travel as `i16` (classes are
//! tiny); volumes as IEEE-754 `f64` bits.

use crate::frame::{encode_frame, Frame};
use bytes::{Buf, BufMut};
use nexit_core::{NexitConfig, Side};
use nexit_routing::FlowId;
use nexit_topology::IcxId;

/// Decoding failures at the message layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessageError {
    /// Unknown message-type byte.
    UnknownType(u8),
    /// Payload ended before the message was complete, or had trailing
    /// garbage.
    Malformed(&'static str),
}

impl std::fmt::Display for MessageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MessageError::UnknownType(t) => write!(f, "unknown message type {t}"),
            MessageError::Malformed(what) => write!(f, "malformed message: {what}"),
        }
    }
}

impl std::error::Error for MessageError {}

/// One announced flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowEntry {
    /// Global flow id (shared numbering between the ISPs; see paper §6 on
    /// flow signatures).
    pub flow: FlowId,
    /// The flow's default alternative.
    pub default: IcxId,
    /// Estimated volume.
    pub volume: f64,
}

/// A negotiation message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Session opening: who I am and the contractually agreed parameters
    /// (echoed by the responder; mismatch aborts the session).
    Hello {
        /// Sender's side of the pair.
        side: Side,
        /// Sender's display name.
        name: String,
        /// Number of alternatives (interconnections).
        num_alternatives: u16,
        /// The agreed engine configuration.
        config: NexitConfig,
    },
    /// Upstream announces the negotiated flow set.
    FlowAnnounce {
        /// Flows on the table, in session (local) order.
        flows: Vec<FlowEntry>,
    },
    /// Full disclosed preference table for the remaining flows.
    PrefList {
        /// `prefs[local_flow][alternative]`, dense.
        prefs: Vec<Vec<i16>>,
    },
    /// Proposal for one flow.
    Propose {
        /// Round number (must match the receiver's view).
        round: u32,
        /// Local flow index.
        local_flow: u32,
        /// Proposed alternative.
        alternative: IcxId,
    },
    /// Accept/reject a proposal.
    Response {
        /// Round being answered.
        round: u32,
        /// Acceptance.
        accepted: bool,
    },
    /// Sender terminates the negotiation (early/full stop).
    Stop {
        /// Which side stopped.
        side: Side,
    },
    /// Orderly close acknowledgement.
    Bye,
}

fn side_byte(side: Side) -> u8 {
    match side {
        Side::A => 0,
        Side::B => 1,
    }
}

fn byte_side(b: u8) -> Result<Side, MessageError> {
    match b {
        0 => Ok(Side::A),
        1 => Ok(Side::B),
        _ => Err(MessageError::Malformed("bad side byte")),
    }
}

fn put_config(out: &mut Vec<u8>, config: &NexitConfig) {
    use nexit_core::{AcceptRule, ProposalRule, StopPolicy, TurnPolicy};
    out.put_i32(config.pref_range);
    match config.turn {
        TurnPolicy::Alternate => {
            out.put_u8(0);
            out.put_u64(0);
        }
        TurnPolicy::LowerGain => {
            out.put_u8(1);
            out.put_u64(0);
        }
        TurnPolicy::CoinToss { seed } => {
            out.put_u8(2);
            out.put_u64(seed);
        }
    }
    out.put_u8(match config.proposal {
        ProposalRule::MaxCombined => 0,
        ProposalRule::BestLocalMinHarm => 1,
    });
    match config.accept {
        AcceptRule::Always => {
            out.put_u8(0);
            out.put_i64(0);
        }
        AcceptRule::VetoNegativeCumulative => {
            out.put_u8(1);
            out.put_i64(0);
        }
        AcceptRule::CreditVeto { credit } => {
            out.put_u8(2);
            out.put_i64(credit);
        }
    }
    out.put_u8(match config.stop {
        StopPolicy::Early => 0,
        StopPolicy::Full => 1,
        StopPolicy::NegotiateAll => 2,
    });
    out.put_f64(config.reassign_interval_frac.unwrap_or(f64::NAN));
}

fn get_config(buf: &mut &[u8]) -> Result<NexitConfig, MessageError> {
    use nexit_core::{AcceptRule, ProposalRule, StopPolicy, TurnPolicy};
    if buf.remaining() < 4 + 1 + 8 + 1 + 1 + 8 + 1 + 8 {
        return Err(MessageError::Malformed("config truncated"));
    }
    let pref_range = buf.get_i32();
    let turn_tag = buf.get_u8();
    let seed = buf.get_u64();
    let turn = match turn_tag {
        0 => TurnPolicy::Alternate,
        1 => TurnPolicy::LowerGain,
        2 => TurnPolicy::CoinToss { seed },
        _ => return Err(MessageError::Malformed("bad turn policy")),
    };
    let proposal = match buf.get_u8() {
        0 => ProposalRule::MaxCombined,
        1 => ProposalRule::BestLocalMinHarm,
        _ => return Err(MessageError::Malformed("bad proposal rule")),
    };
    let accept_tag = buf.get_u8();
    let credit = buf.get_i64();
    let accept = match accept_tag {
        0 => AcceptRule::Always,
        1 => AcceptRule::VetoNegativeCumulative,
        2 => AcceptRule::CreditVeto { credit },
        _ => return Err(MessageError::Malformed("bad accept rule")),
    };
    let stop = match buf.get_u8() {
        0 => StopPolicy::Early,
        1 => StopPolicy::Full,
        2 => StopPolicy::NegotiateAll,
        _ => return Err(MessageError::Malformed("bad stop policy")),
    };
    let frac = buf.get_f64();
    Ok(NexitConfig {
        pref_range,
        turn,
        proposal,
        accept,
        stop,
        reassign_interval_frac: if frac.is_nan() { None } else { Some(frac) },
    })
}

impl Message {
    /// The frame type byte for this message.
    pub fn msg_type(&self) -> u8 {
        match self {
            Message::Hello { .. } => 1,
            Message::FlowAnnounce { .. } => 2,
            Message::PrefList { .. } => 3,
            Message::Propose { .. } => 4,
            Message::Response { .. } => 5,
            Message::Stop { .. } => 6,
            Message::Bye => 7,
        }
    }

    /// Encode to a complete wire frame (header + payload + CRC).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        match self {
            Message::Hello {
                side,
                name,
                num_alternatives,
                config,
            } => {
                payload.put_u8(side_byte(*side));
                let name_bytes = name.as_bytes();
                payload.put_u16(name_bytes.len() as u16);
                payload.extend_from_slice(name_bytes);
                payload.put_u16(*num_alternatives);
                put_config(&mut payload, config);
            }
            Message::FlowAnnounce { flows } => {
                payload.put_u32(flows.len() as u32);
                for e in flows {
                    payload.put_u32(e.flow.0);
                    payload.put_u16(e.default.0 as u16);
                    payload.put_f64(e.volume);
                }
            }
            Message::PrefList { prefs } => {
                payload.put_u32(prefs.len() as u32);
                let k = prefs.first().map_or(0, Vec::len);
                payload.put_u16(k as u16);
                for row in prefs {
                    debug_assert_eq!(row.len(), k, "ragged preference list");
                    for &p in row {
                        payload.put_i16(p);
                    }
                }
            }
            Message::Propose {
                round,
                local_flow,
                alternative,
            } => {
                payload.put_u32(*round);
                payload.put_u32(*local_flow);
                payload.put_u16(alternative.0 as u16);
            }
            Message::Response { round, accepted } => {
                payload.put_u32(*round);
                payload.put_u8(u8::from(*accepted));
            }
            Message::Stop { side } => {
                payload.put_u8(side_byte(*side));
            }
            Message::Bye => {}
        }
        encode_frame(self.msg_type(), &payload)
    }

    /// Decode from a received frame.
    pub fn decode(frame: &Frame) -> Result<Message, MessageError> {
        let mut buf: &[u8] = &frame.payload;
        let msg = match frame.msg_type {
            1 => {
                if buf.remaining() < 3 {
                    return Err(MessageError::Malformed("hello truncated"));
                }
                let side = byte_side(buf.get_u8())?;
                let name_len = buf.get_u16() as usize;
                if buf.remaining() < name_len + 2 {
                    return Err(MessageError::Malformed("hello name truncated"));
                }
                let name = String::from_utf8(buf[..name_len].to_vec())
                    .map_err(|_| MessageError::Malformed("hello name not UTF-8"))?;
                buf.advance(name_len);
                let num_alternatives = buf.get_u16();
                let config = get_config(&mut buf)?;
                Message::Hello {
                    side,
                    name,
                    num_alternatives,
                    config,
                }
            }
            2 => {
                if buf.remaining() < 4 {
                    return Err(MessageError::Malformed("announce truncated"));
                }
                let n = buf.get_u32() as usize;
                if buf.remaining() != n * (4 + 2 + 8) {
                    return Err(MessageError::Malformed("announce length mismatch"));
                }
                let mut flows = Vec::with_capacity(n);
                for _ in 0..n {
                    flows.push(FlowEntry {
                        flow: FlowId(buf.get_u32()),
                        default: IcxId(buf.get_u16() as u32),
                        volume: buf.get_f64(),
                    });
                }
                Message::FlowAnnounce { flows }
            }
            3 => {
                if buf.remaining() < 6 {
                    return Err(MessageError::Malformed("preflist truncated"));
                }
                let n = buf.get_u32() as usize;
                let k = buf.get_u16() as usize;
                if buf.remaining() != n * k * 2 {
                    return Err(MessageError::Malformed("preflist length mismatch"));
                }
                let mut prefs = Vec::with_capacity(n);
                for _ in 0..n {
                    let mut row = Vec::with_capacity(k);
                    for _ in 0..k {
                        row.push(buf.get_i16());
                    }
                    prefs.push(row);
                }
                Message::PrefList { prefs }
            }
            4 => {
                if buf.remaining() != 4 + 4 + 2 {
                    return Err(MessageError::Malformed("propose length mismatch"));
                }
                Message::Propose {
                    round: buf.get_u32(),
                    local_flow: buf.get_u32(),
                    alternative: IcxId(buf.get_u16() as u32),
                }
            }
            5 => {
                if buf.remaining() != 5 {
                    return Err(MessageError::Malformed("response length mismatch"));
                }
                let round = buf.get_u32();
                let accepted = match buf.get_u8() {
                    0 => false,
                    1 => true,
                    _ => return Err(MessageError::Malformed("bad accept byte")),
                };
                Message::Response { round, accepted }
            }
            6 => {
                if buf.remaining() != 1 {
                    return Err(MessageError::Malformed("stop length mismatch"));
                }
                Message::Stop {
                    side: byte_side(buf.get_u8())?,
                }
            }
            7 => {
                if !buf.is_empty() {
                    return Err(MessageError::Malformed("bye with payload"));
                }
                Message::Bye
            }
            t => return Err(MessageError::UnknownType(t)),
        };
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameCodec;

    fn roundtrip(msg: Message) -> Message {
        let wire = msg.encode();
        let mut codec = FrameCodec::new();
        codec.feed(&wire);
        let frame = codec.next_frame().unwrap().unwrap();
        Message::decode(&frame).unwrap()
    }

    #[test]
    fn hello_roundtrip() {
        let msg = Message::Hello {
            side: Side::B,
            name: "isp-07 (Frankfurt)".into(),
            num_alternatives: 5,
            config: NexitConfig::bandwidth(),
        };
        assert_eq!(roundtrip(msg.clone()), msg);
    }

    #[test]
    fn hello_all_policies_roundtrip() {
        use nexit_core::{AcceptRule, ProposalRule, StopPolicy, TurnPolicy};
        for turn in [
            TurnPolicy::Alternate,
            TurnPolicy::LowerGain,
            TurnPolicy::CoinToss { seed: 12345 },
        ] {
            for proposal in [ProposalRule::MaxCombined, ProposalRule::BestLocalMinHarm] {
                for accept in [AcceptRule::Always, AcceptRule::VetoNegativeCumulative] {
                    for stop in [
                        StopPolicy::Early,
                        StopPolicy::Full,
                        StopPolicy::NegotiateAll,
                    ] {
                        let msg = Message::Hello {
                            side: Side::A,
                            name: "x".into(),
                            num_alternatives: 2,
                            config: NexitConfig {
                                pref_range: 7,
                                turn,
                                proposal,
                                accept,
                                stop,
                                reassign_interval_frac: Some(0.05),
                            },
                        };
                        assert_eq!(roundtrip(msg.clone()), msg);
                    }
                }
            }
        }
    }

    #[test]
    fn announce_roundtrip() {
        let msg = Message::FlowAnnounce {
            flows: vec![
                FlowEntry {
                    flow: FlowId(9),
                    default: IcxId(1),
                    volume: 2.5,
                },
                FlowEntry {
                    flow: FlowId(17),
                    default: IcxId(0),
                    volume: 0.125,
                },
            ],
        };
        assert_eq!(roundtrip(msg.clone()), msg);
    }

    #[test]
    fn preflist_roundtrip() {
        let msg = Message::PrefList {
            prefs: vec![vec![0, 10, -10], vec![0, -3, 7]],
        };
        assert_eq!(roundtrip(msg.clone()), msg);
    }

    #[test]
    fn small_messages_roundtrip() {
        for msg in [
            Message::Propose {
                round: 42,
                local_flow: 7,
                alternative: IcxId(3),
            },
            Message::Response {
                round: 42,
                accepted: true,
            },
            Message::Response {
                round: 43,
                accepted: false,
            },
            Message::Stop { side: Side::A },
            Message::Bye,
        ] {
            assert_eq!(roundtrip(msg.clone()), msg);
        }
    }

    #[test]
    fn rejects_unknown_type() {
        let frame = crate::frame::Frame {
            msg_type: 200,
            payload: vec![],
        };
        assert_eq!(Message::decode(&frame), Err(MessageError::UnknownType(200)));
    }

    #[test]
    fn rejects_truncated_payloads() {
        for (t, payload) in [
            (1u8, vec![0u8]),            // hello with just a side byte
            (2, vec![0, 0, 0, 2, 1]),    // announce claiming 2 entries
            (3, vec![0, 0, 0, 1, 0, 3]), // preflist missing rows
            (4, vec![1, 2, 3]),          // short propose
            (5, vec![]),                 // empty response
            (6, vec![]),                 // empty stop
            (7, vec![1]),                // bye with payload
        ] {
            let frame = crate::frame::Frame {
                msg_type: t,
                payload,
            };
            assert!(
                Message::decode(&frame).is_err(),
                "type {t} should have been rejected"
            );
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn preflist_roundtrips(
                prefs in (1usize..5).prop_flat_map(|k| proptest::collection::vec(
                    proptest::collection::vec(-100i16..100, k), 0..30)),
            ) {
                let msg = Message::PrefList { prefs };
                prop_assert_eq!(super::roundtrip(msg.clone()), msg);
            }

            #[test]
            fn decode_never_panics_on_garbage(
                msg_type in 0u8..10,
                payload in proptest::collection::vec(any::<u8>(), 0..128),
            ) {
                let frame = crate::frame::Frame { msg_type, payload };
                let _ = Message::decode(&frame); // must not panic
            }
        }
    }
}
