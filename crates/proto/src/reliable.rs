//! Sans-IO ARQ reliability layer under the negotiation protocol.
//!
//! The wire protocol itself assumes a reliable, ordered transport; this
//! module supplies that assumption over a lossy link. Every outgoing
//! wire frame is wrapped in a sequenced `ArqData` envelope and held in a
//! retransmit queue until the peer's cumulative `ArqAck` covers it:
//!
//! ```text
//! +-----------+        ArqData { seq, inner frame }        +-----------+
//! |  Agent A  | -----------------------------------------> |  Agent B  |
//! | (codec)   | <----------------------------------------- | (codec)   |
//! +-----------+            ArqAck { cumulative }           +-----------+
//! ```
//!
//! * **Loss** — an unacked frame is retransmitted after a deterministic,
//!   tick-based timeout with exponential backoff, up to a bounded
//!   [`ReliableConfig::retry_budget`]; exhausting the budget surfaces
//!   [`ReliableError::RetryExhausted`] so the supervisor (broker /
//!   driver) can terminate or degrade the session.
//! * **Corruption** — a frame failing its CRC is *discarded and
//!   counted*, never fatal: the retransmit timer recovers it. This turns
//!   [`crate::frame::FrameError::BadCrc`] from session death into a
//!   transient.
//! * **Duplication / reordering** — the receiver keeps a cumulative
//!   in-order sequence cursor plus a bounded out-of-order window:
//!   duplicated frames are dropped (and re-acked, so a lost ack cannot
//!   wedge the sender), reordered frames are buffered and released in
//!   sequence.
//!
//! The endpoint is sans-IO in the same style as [`crate::agent::Agent`]:
//! feed received transport units with [`ReliableEndpoint::on_datagram`],
//! drain outgoing wire bytes with [`ReliableEndpoint::poll_transmit`],
//! pop recovered in-order frames with [`ReliableEndpoint::poll_deliver`],
//! and advance time with [`ReliableEndpoint::on_tick`]. Everything is
//! deterministic — no clocks, no randomness — so broker batches recover
//! byte-identically at any worker count.
//!
//! One caveat is inherited from CRC framing: after a corrupted frame the
//! byte stream has no trustworthy length field to resynchronize on, so
//! the endpoint consumes *datagrams* (one transport unit = the frames
//! handed to one [`on_datagram`](ReliableEndpoint::on_datagram) call,
//! e.g. one [`crate::channel::FaultyLink`] queue entry). A corrupt
//! prefix poisons only its own datagram, and retransmission re-delivers
//! the frames it carried.

use crate::agent::{Agent, AgentOutcome, ProtoError};
use crate::channel::FaultyLink;
use crate::frame::{encode_frame, FrameCodec};
use std::collections::{BTreeMap, VecDeque};

/// Frame-type byte for a sequenced data envelope (`u32 seq || inner`).
pub const ARQ_DATA: u8 = 8;
/// Frame-type byte for a cumulative acknowledgement (`u32 next expected`).
pub const ARQ_ACK: u8 = 9;

/// Tuning knobs for the ARQ layer. All timings are in abstract ticks
/// (one tick = one supervisor poll round), keeping the layer
/// deterministic and clock-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliableConfig {
    /// Retransmissions allowed per frame before the session is declared
    /// dead ([`ReliableError::RetryExhausted`]).
    pub retry_budget: usize,
    /// Ticks an unacked frame waits before its first retransmission.
    pub retransmit_ticks: u64,
    /// Cap on the exponential backoff: the timeout doubles per retry up
    /// to `retransmit_ticks << backoff_cap`.
    pub backoff_cap: u32,
    /// Receive-side out-of-order window: frames up to this many
    /// sequence numbers ahead of the cursor are buffered for in-order
    /// release; anything further is dropped (and retransmitted later).
    pub window: u32,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        Self {
            retry_budget: 8,
            retransmit_ticks: 4,
            backoff_cap: 4,
            window: 64,
        }
    }
}

/// Terminal ARQ failures. Transient faults (loss, corruption,
/// duplication, reordering) never error — only a persistently dead link
/// does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReliableError {
    /// A frame exhausted its retransmission budget without being acked.
    RetryExhausted {
        /// Sequence number of the abandoned frame.
        seq: u32,
        /// Retransmissions already attempted.
        retries: usize,
    },
}

impl std::fmt::Display for ReliableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReliableError::RetryExhausted { seq, retries } => {
                write!(f, "frame seq {seq} unacked after {retries} retransmissions")
            }
        }
    }
}

impl std::error::Error for ReliableError {}

impl From<ReliableError> for ProtoError {
    fn from(e: ReliableError) -> Self {
        match e {
            ReliableError::RetryExhausted { seq, retries } => {
                ProtoError::RetryExhausted { seq, retries }
            }
        }
    }
}

/// Counters of everything the ARQ layer absorbed or re-sent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliableStats {
    /// Frames retransmitted after a timeout.
    pub retransmits: u64,
    /// Received frames discarded as duplicates (seq below the cursor).
    pub duplicates: u64,
    /// Received frames buffered out of order and released in sequence.
    pub reordered: u64,
    /// Received frames discarded for CRC / framing corruption.
    pub corrupt_dropped: u64,
    /// Received frames beyond the out-of-order window, discarded.
    pub out_of_window: u64,
    /// Cumulative acks transmitted.
    pub acks_sent: u64,
}

impl ReliableStats {
    /// Whether the link ever misbehaved (anything absorbed or re-sent).
    pub fn any_faults(&self) -> bool {
        self.retransmits > 0
            || self.duplicates > 0
            || self.reordered > 0
            || self.corrupt_dropped > 0
            || self.out_of_window > 0
    }
}

/// An unacked outgoing frame awaiting its cumulative ack.
#[derive(Debug)]
struct Pending {
    seq: u32,
    wire: Vec<u8>,
    retries: usize,
    due: u64,
}

/// One side's ARQ endpoint: sequences outgoing frames, retransmits
/// unacked ones, and reassembles the incoming stream in order. See the
/// module docs for the sans-IO call pattern.
#[derive(Debug)]
pub struct ReliableEndpoint {
    config: ReliableConfig,
    tick: u64,
    next_seq: u32,
    /// Unacked frames in ascending seq order (cumulative acks pop from
    /// the front).
    pending: VecDeque<Pending>,
    /// Wire-ready ARQ frames (fresh data and due retransmissions).
    outbox: VecDeque<Vec<u8>>,
    /// Next in-order sequence number expected from the peer.
    recv_next: u32,
    /// Out-of-order frames buffered for in-sequence release.
    reorder: BTreeMap<u32, Vec<u8>>,
    /// Recovered in-order inner frames awaiting the application.
    delivery: VecDeque<Vec<u8>>,
    ack_pending: bool,
    stats: ReliableStats,
}

impl ReliableEndpoint {
    /// A fresh endpoint at tick 0, sequence 0.
    pub fn new(config: ReliableConfig) -> Self {
        Self {
            config,
            tick: 0,
            next_seq: 0,
            pending: VecDeque::new(),
            outbox: VecDeque::new(),
            recv_next: 0,
            reorder: BTreeMap::new(),
            delivery: VecDeque::new(),
            ack_pending: false,
            stats: ReliableStats::default(),
        }
    }

    /// Queue one application frame (a complete wire frame from
    /// [`Agent::poll_transmit`]) for sequenced transmission.
    pub fn send(&mut self, inner: Vec<u8>) {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        let mut payload = Vec::with_capacity(4 + inner.len());
        payload.extend_from_slice(&seq.to_be_bytes());
        payload.extend_from_slice(&inner);
        let wire = encode_frame(ARQ_DATA, &payload);
        self.outbox.push_back(wire.clone());
        self.pending.push_back(Pending {
            seq,
            wire,
            retries: 0,
            due: self.tick + self.config.retransmit_ticks,
        });
    }

    /// Pop the next outgoing wire unit: a pending cumulative ack first
    /// (cheap, unblocks the peer's retransmit queue), then queued data.
    pub fn poll_transmit(&mut self) -> Option<Vec<u8>> {
        if self.ack_pending {
            self.ack_pending = false;
            self.stats.acks_sent += 1;
            return Some(encode_frame(ARQ_ACK, &self.recv_next.to_be_bytes()));
        }
        self.outbox.pop_front()
    }

    /// Feed one received transport unit (one or more ARQ frames).
    /// Corruption is absorbed: a frame failing CRC/framing validation is
    /// discarded and counted, and the rest of the datagram is dropped
    /// with it (no trustworthy resync point past a bad length field).
    pub fn on_datagram(&mut self, data: &[u8]) {
        let mut codec = FrameCodec::new();
        codec.feed(data);
        loop {
            match codec.next_frame() {
                Ok(Some(frame)) => match frame.msg_type {
                    ARQ_DATA if frame.payload.len() >= 4 => {
                        let seq = u32::from_be_bytes([
                            frame.payload[0],
                            frame.payload[1],
                            frame.payload[2],
                            frame.payload[3],
                        ]);
                        self.on_data(seq, &frame.payload[4..]);
                    }
                    ARQ_ACK if frame.payload.len() == 4 => {
                        let cum = u32::from_be_bytes([
                            frame.payload[0],
                            frame.payload[1],
                            frame.payload[2],
                            frame.payload[3],
                        ]);
                        self.on_ack(cum);
                    }
                    // Wrong layer or mangled payload: treat like
                    // corruption — drop and let retransmission heal it.
                    _ => {
                        self.stats.corrupt_dropped += 1;
                    }
                },
                Ok(None) => return,
                Err(_) => {
                    self.stats.corrupt_dropped += 1;
                    return;
                }
            }
        }
    }

    fn on_data(&mut self, seq: u32, inner: &[u8]) {
        // Every data arrival warrants a (re-)ack: fresh data advances
        // the cursor, duplicates mean the peer missed our last ack, and
        // out-of-order frames re-state the gap.
        self.ack_pending = true;
        if seq < self.recv_next {
            self.stats.duplicates += 1;
            return;
        }
        if seq == self.recv_next {
            self.delivery.push_back(inner.to_vec());
            self.recv_next = self.recv_next.wrapping_add(1);
            // Release any directly following buffered frames.
            while let Some(next) = self.reorder.remove(&self.recv_next) {
                self.delivery.push_back(next);
                self.recv_next = self.recv_next.wrapping_add(1);
            }
            return;
        }
        if seq - self.recv_next < self.config.window {
            if self.reorder.insert(seq, inner.to_vec()).is_none() {
                self.stats.reordered += 1;
            } else {
                self.stats.duplicates += 1;
            }
        } else {
            self.stats.out_of_window += 1;
        }
    }

    fn on_ack(&mut self, cumulative: u32) {
        while self.pending.front().is_some_and(|p| p.seq < cumulative) {
            self.pending.pop_front();
        }
    }

    /// Pop the next recovered in-order application frame.
    pub fn poll_deliver(&mut self) -> Option<Vec<u8>> {
        self.delivery.pop_front()
    }

    /// Advance one tick: retransmit every due unacked frame with
    /// exponential backoff, or fail once a frame exhausts its budget.
    pub fn on_tick(&mut self) -> Result<(), ReliableError> {
        self.tick += 1;
        for p in &mut self.pending {
            if p.due > self.tick {
                continue;
            }
            if p.retries >= self.config.retry_budget {
                return Err(ReliableError::RetryExhausted {
                    seq: p.seq,
                    retries: p.retries,
                });
            }
            p.retries += 1;
            self.stats.retransmits += 1;
            let shift = (p.retries as u32).min(self.config.backoff_cap);
            p.due = self.tick + (self.config.retransmit_ticks << shift);
            self.outbox.push_back(p.wire.clone());
        }
        Ok(())
    }

    /// Whether any frame is still unacked or queued for the wire — i.e.
    /// future progress is scheduled (a supervisor should not declare a
    /// stall while this holds).
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty() || !self.outbox.is_empty() || self.ack_pending
    }

    /// Whether recovered frames await [`ReliableEndpoint::poll_deliver`].
    pub fn has_deliveries(&self) -> bool {
        !self.delivery.is_empty()
    }

    /// Fault/retransmission counters.
    pub fn stats(&self) -> &ReliableStats {
        &self.stats
    }
}

/// Pump two agents over faulty links *through* a pair of ARQ endpoints
/// until both sessions finish, a frame exhausts its retry budget, or
/// `max_ticks` elapses. The reliable counterpart of
/// [`crate::driver::run_session`]: transient drop / corrupt / duplicate
/// / reorder faults heal instead of killing the session, so on success
/// the outcome is byte-identical to the fault-free run.
pub fn run_reliable_session(
    agent_a: &mut Agent<'_>,
    agent_b: &mut Agent<'_>,
    link_ab: &mut FaultyLink,
    link_ba: &mut FaultyLink,
    config: ReliableConfig,
    max_ticks: u64,
) -> Result<(AgentOutcome, AgentOutcome), ProtoError> {
    let mut arq_a = ReliableEndpoint::new(config);
    let mut arq_b = ReliableEndpoint::new(config);
    for _ in 0..max_ticks {
        // Sequence fresh application frames.
        while let Some(frame) = agent_a.poll_transmit() {
            arq_a.send(frame);
        }
        while let Some(frame) = agent_b.poll_transmit() {
            arq_b.send(frame);
        }
        // Move wire units through the (faulty) links.
        while let Some(unit) = arq_a.poll_transmit() {
            link_ab.send(unit);
        }
        while let Some(unit) = arq_b.poll_transmit() {
            link_ba.send(unit);
        }
        while let Some(unit) = link_ab.recv() {
            arq_b.on_datagram(&unit);
        }
        while let Some(unit) = link_ba.recv() {
            arq_a.on_datagram(&unit);
        }
        // Hand recovered in-order frames to the agents.
        while let Some(inner) = arq_b.poll_deliver() {
            agent_b.handle_bytes(&inner)?;
        }
        while let Some(inner) = arq_a.poll_deliver() {
            agent_a.handle_bytes(&inner)?;
        }
        if agent_a.is_done() && agent_b.is_done() {
            let a = agent_a.outcome().ok_or(ProtoError::Closed)?;
            let b = agent_b.outcome().ok_or(ProtoError::Closed)?;
            return Ok((a, b));
        }
        arq_a.on_tick()?;
        arq_b.on_tick()?;
    }
    Err(ProtoError::DeadlineExceeded { ticks: max_ticks })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_to(link: &mut Vec<Vec<u8>>, ep: &mut ReliableEndpoint) {
        while let Some(u) = ep.poll_transmit() {
            link.push(u);
        }
    }

    #[test]
    fn in_order_delivery_roundtrip() {
        let mut tx = ReliableEndpoint::new(ReliableConfig::default());
        let mut rx = ReliableEndpoint::new(ReliableConfig::default());
        tx.send(b"alpha".to_vec());
        tx.send(b"beta".to_vec());
        let mut wire = Vec::new();
        drain_to(&mut wire, &mut tx);
        for unit in wire {
            rx.on_datagram(&unit);
        }
        assert_eq!(rx.poll_deliver().unwrap(), b"alpha");
        assert_eq!(rx.poll_deliver().unwrap(), b"beta");
        assert!(rx.poll_deliver().is_none());
        // The receiver owes one cumulative ack covering both frames.
        let ack = rx.poll_transmit().expect("ack pending");
        tx.on_datagram(&ack);
        assert!(!tx.has_pending());
    }

    #[test]
    fn lost_frame_is_retransmitted_and_recovered() {
        let cfg = ReliableConfig {
            retransmit_ticks: 2,
            ..ReliableConfig::default()
        };
        let mut tx = ReliableEndpoint::new(cfg);
        let mut rx = ReliableEndpoint::new(cfg);
        tx.send(b"lost".to_vec());
        let _dropped = tx.poll_transmit().unwrap(); // the link eats it
        assert!(tx.poll_transmit().is_none());
        // Tick past the timeout: the frame comes back out.
        tx.on_tick().unwrap();
        tx.on_tick().unwrap();
        tx.on_tick().unwrap();
        let retx = tx.poll_transmit().expect("retransmission due");
        assert_eq!(tx.stats().retransmits, 1);
        rx.on_datagram(&retx);
        assert_eq!(rx.poll_deliver().unwrap(), b"lost");
    }

    #[test]
    fn corruption_is_absorbed_not_fatal() {
        let mut tx = ReliableEndpoint::new(ReliableConfig::default());
        let mut rx = ReliableEndpoint::new(ReliableConfig::default());
        tx.send(b"payload".to_vec());
        let mut unit = tx.poll_transmit().unwrap();
        let last = unit.len() - 1;
        unit[last] ^= 0x01; // break the CRC
        rx.on_datagram(&unit);
        assert_eq!(rx.stats().corrupt_dropped, 1);
        assert!(rx.poll_deliver().is_none());
        // The retransmission (clean) still delivers it.
        for _ in 0..8 {
            tx.on_tick().unwrap();
        }
        let retx = tx.poll_transmit().expect("retransmission due");
        rx.on_datagram(&retx);
        assert_eq!(rx.poll_deliver().unwrap(), b"payload");
    }

    #[test]
    fn duplicates_are_dropped_and_reacked() {
        let mut tx = ReliableEndpoint::new(ReliableConfig::default());
        let mut rx = ReliableEndpoint::new(ReliableConfig::default());
        tx.send(b"once".to_vec());
        let unit = tx.poll_transmit().unwrap();
        rx.on_datagram(&unit);
        let _first_ack = rx.poll_transmit().unwrap();
        rx.on_datagram(&unit); // duplicate delivery
        assert_eq!(rx.stats().duplicates, 1);
        assert_eq!(rx.poll_deliver().unwrap(), b"once");
        assert!(rx.poll_deliver().is_none(), "duplicate must not deliver");
        // The duplicate triggered a fresh ack (covers a lost first ack).
        assert!(rx.poll_transmit().is_some());
    }

    #[test]
    fn reordered_frames_release_in_sequence() {
        let mut tx = ReliableEndpoint::new(ReliableConfig::default());
        let mut rx = ReliableEndpoint::new(ReliableConfig::default());
        tx.send(b"first".to_vec());
        tx.send(b"second".to_vec());
        let u1 = tx.poll_transmit().unwrap();
        let u2 = tx.poll_transmit().unwrap();
        rx.on_datagram(&u2); // out of order
        assert!(rx.poll_deliver().is_none(), "gap must hold delivery");
        assert_eq!(rx.stats().reordered, 1);
        rx.on_datagram(&u1);
        assert_eq!(rx.poll_deliver().unwrap(), b"first");
        assert_eq!(rx.poll_deliver().unwrap(), b"second");
    }

    #[test]
    fn retry_budget_exhaustion_is_terminal() {
        let cfg = ReliableConfig {
            retry_budget: 2,
            retransmit_ticks: 1,
            backoff_cap: 0,
            ..ReliableConfig::default()
        };
        let mut tx = ReliableEndpoint::new(cfg);
        tx.send(b"doomed".to_vec());
        let _ = tx.poll_transmit();
        let mut err = None;
        for _ in 0..64 {
            if let Err(e) = tx.on_tick() {
                err = Some(e);
                break;
            }
            // Nobody acks; drain retransmissions into the void.
            while tx.poll_transmit().is_some() {}
        }
        match err.expect("budget must exhaust") {
            ReliableError::RetryExhausted { seq: 0, retries } => assert_eq!(retries, 2),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn frames_beyond_the_window_are_dropped() {
        let cfg = ReliableConfig {
            window: 2,
            ..ReliableConfig::default()
        };
        let mut tx = ReliableEndpoint::new(cfg);
        let mut rx = ReliableEndpoint::new(cfg);
        for i in 0..4u8 {
            tx.send(vec![i]);
        }
        let units: Vec<_> = std::iter::from_fn(|| tx.poll_transmit()).collect();
        // Deliver only the frame 3 windows ahead: outside the window.
        rx.on_datagram(&units[3]);
        assert_eq!(rx.stats().out_of_window, 1);
        assert!(rx.poll_deliver().is_none());
        // In-window out-of-order frame is buffered instead.
        rx.on_datagram(&units[1]);
        assert_eq!(rx.stats().reordered, 1);
    }
}
