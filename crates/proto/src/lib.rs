//! Out-of-band negotiation wire protocol and agents.
//!
//! The paper's deployment story (§6, Figure 12) places a *negotiation
//! agent* in each ISP, logically above the routing infrastructure: it
//! collects network state, maps alternatives to preference classes,
//! negotiates with the peer agent out-of-band (not inside BGP), and
//! configures routers to implement the agreed paths. This crate is that
//! agent's protocol layer:
//!
//! * [`crc`] — CRC-32 (IEEE) for frame integrity,
//! * [`frame`] — length-prefixed binary framing with incremental decode,
//! * [`messages`] — the message set: session hello, flow announcements,
//!   preference lists, proposals, accept/reject responses, stop and bye,
//! * [`agent`] — a poll-based (sans-io) state machine driving one side of
//!   a negotiation; transport-agnostic in the style of event-driven
//!   network stacks: feed it received frames with
//!   [`agent::Agent::handle_frame`], drain outgoing frames with
//!   [`agent::Agent::poll_transmit`],
//! * [`channel`] — an in-memory duplex link with fault injection (drop /
//!   corrupt / duplicate / reorder) for exercising the agent's error
//!   handling and the ARQ layer's recovery,
//! * [`driver`] — synchronous and threaded (crossbeam) session drivers,
//! * [`reliable`] — a sans-IO ARQ layer (sequence numbers, cumulative
//!   acks, deterministic tick-based retransmission, dedup/reorder
//!   window) supplying the reliable-transport assumption over a lossy
//!   link.
//!
//! The negotiation protocol itself assumes a reliable, ordered transport
//! (deployments would run it over TCP/TLS between the two agents). On a
//! *raw* link, fault injection verifies that the framing layer *detects*
//! corruption and that agents fail cleanly on protocol violations; under
//! [`reliable`], the same faults are absorbed by retransmission and
//! deduplication so transient loss never becomes a lost outcome.
//!
//! The decision logic is not shared with the in-process engine — it is
//! the *same object*: both drive a [`nexit_core::machine::NegotiationMachine`],
//! so a distributed session reaches the same assignment as
//! [`nexit_core::negotiate`] on the same inputs by construction (still
//! pinned end to end, bytes included, by the integration suite).

pub mod agent;
pub mod channel;
pub mod crc;
pub mod driver;
pub mod frame;
pub mod messages;
pub mod reliable;

pub use agent::{Agent, AgentOutcome, ProtoError};
pub use channel::{FaultConfig, FaultyLink};
pub use driver::{run_session, run_session_threaded};
pub use frame::{FrameCodec, FrameError, MAX_FRAME_PAYLOAD};
pub use messages::Message;
pub use reliable::{
    run_reliable_session, ReliableConfig, ReliableEndpoint, ReliableError, ReliableStats,
};
