//! In-memory duplex link with fault injection.
//!
//! Models the byte pipe between two negotiation agents. Faults — drop,
//! corrupt (single-byte flip), duplicate — are injected per *frame* with
//! seeded probabilities, in the spirit of the fault-injection options of
//! event-driven stack examples. The protocol assumes a reliable transport,
//! so injected faults are expected to surface as clean session errors
//! (e.g. [`crate::frame::FrameError::BadCrc`]), never as silent
//! corruption; the tests assert exactly that.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Per-frame fault probabilities (all in `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability of dropping a frame entirely.
    pub drop_chance: f64,
    /// Probability of flipping one random bit in a frame.
    pub corrupt_chance: f64,
    /// Probability of delivering a frame twice.
    pub duplicate_chance: f64,
}

impl FaultConfig {
    /// A perfectly reliable link.
    pub const RELIABLE: FaultConfig = FaultConfig {
        drop_chance: 0.0,
        corrupt_chance: 0.0,
        duplicate_chance: 0.0,
    };
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::RELIABLE
    }
}

/// One direction of a faulty link: frames go in, possibly-mangled frames
/// come out, in order.
#[derive(Debug)]
pub struct FaultyLink {
    config: FaultConfig,
    rng: StdRng,
    queue: VecDeque<Vec<u8>>,
    /// Statistics: frames dropped.
    pub dropped: usize,
    /// Statistics: frames corrupted.
    pub corrupted: usize,
    /// Statistics: frames duplicated.
    pub duplicated: usize,
}

impl FaultyLink {
    /// New link with the given faults and seed.
    pub fn new(config: FaultConfig, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&config.drop_chance));
        assert!((0.0..=1.0).contains(&config.corrupt_chance));
        assert!((0.0..=1.0).contains(&config.duplicate_chance));
        Self {
            config,
            rng: StdRng::seed_from_u64(seed),
            queue: VecDeque::new(),
            dropped: 0,
            corrupted: 0,
            duplicated: 0,
        }
    }

    /// A reliable link.
    pub fn reliable() -> Self {
        Self::new(FaultConfig::RELIABLE, 0)
    }

    /// Send one frame into the link.
    pub fn send(&mut self, frame: Vec<u8>) {
        if self.rng.gen_bool(self.config.drop_chance) {
            self.dropped += 1;
            return;
        }
        let mut frame = frame;
        if !frame.is_empty() && self.rng.gen_bool(self.config.corrupt_chance) {
            let byte = self.rng.gen_range(0..frame.len());
            let bit = self.rng.gen_range(0u32..8);
            frame[byte] ^= 1u8 << bit;
            self.corrupted += 1;
        }
        if self.rng.gen_bool(self.config.duplicate_chance) {
            self.queue.push_back(frame.clone());
            self.duplicated += 1;
        }
        self.queue.push_back(frame);
    }

    /// Receive the next frame, if any.
    pub fn recv(&mut self) -> Option<Vec<u8>> {
        self.queue.pop_front()
    }

    /// Frames currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_link_is_fifo() {
        let mut link = FaultyLink::reliable();
        link.send(vec![1]);
        link.send(vec![2]);
        link.send(vec![3]);
        assert_eq!(link.recv(), Some(vec![1]));
        assert_eq!(link.recv(), Some(vec![2]));
        assert_eq!(link.recv(), Some(vec![3]));
        assert_eq!(link.recv(), None);
    }

    #[test]
    fn drop_all() {
        let mut link = FaultyLink::new(
            FaultConfig {
                drop_chance: 1.0,
                ..FaultConfig::RELIABLE
            },
            1,
        );
        link.send(vec![1, 2, 3]);
        assert_eq!(link.recv(), None);
        assert_eq!(link.dropped, 1);
    }

    #[test]
    fn corrupt_changes_exactly_one_bit() {
        let mut link = FaultyLink::new(
            FaultConfig {
                corrupt_chance: 1.0,
                ..FaultConfig::RELIABLE
            },
            2,
        );
        let original = vec![0u8; 16];
        link.send(original.clone());
        let got = link.recv().unwrap();
        let flipped: u32 = original
            .iter()
            .zip(&got)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
        assert_eq!(link.corrupted, 1);
    }

    #[test]
    fn duplicate_delivers_twice() {
        let mut link = FaultyLink::new(
            FaultConfig {
                duplicate_chance: 1.0,
                ..FaultConfig::RELIABLE
            },
            3,
        );
        link.send(vec![7]);
        assert_eq!(link.recv(), Some(vec![7]));
        assert_eq!(link.recv(), Some(vec![7]));
        assert_eq!(link.recv(), None);
    }

    #[test]
    fn faults_are_seed_deterministic() {
        let run = |seed| {
            let mut link = FaultyLink::new(
                FaultConfig {
                    drop_chance: 0.3,
                    corrupt_chance: 0.3,
                    duplicate_chance: 0.3,
                },
                seed,
            );
            let mut out = Vec::new();
            for i in 0..50u8 {
                link.send(vec![i; 4]);
            }
            while let Some(f) = link.recv() {
                out.push(f);
            }
            out
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
