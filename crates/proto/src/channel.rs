//! In-memory duplex link with fault injection.
//!
//! Models the byte pipe between two negotiation agents. Faults — drop,
//! corrupt (single-byte flip), duplicate, reorder (hold one frame back a
//! slot) — are injected per *frame* with seeded probabilities, in the
//! spirit of the fault-injection options of event-driven stack examples.
//! The raw protocol assumes a reliable transport, so on the bare link
//! injected faults surface as clean session errors (e.g.
//! [`crate::frame::FrameError::BadCrc`]), never as silent corruption;
//! under the [`crate::reliable`] ARQ layer the same faults are absorbed
//! and the session completes unchanged. The tests assert both.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Per-frame fault probabilities (all in `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability of dropping a frame entirely.
    pub drop_chance: f64,
    /// Probability of flipping one random bit in a frame.
    pub corrupt_chance: f64,
    /// Probability of delivering a frame twice.
    pub duplicate_chance: f64,
    /// Probability of holding a frame back one slot: the frame waits
    /// until the *next* frame is sent and is delivered after it (a
    /// one-slot reordering). A held frame is never lost — if no
    /// successor arrives it is released on the next receive.
    pub reorder_chance: f64,
}

impl FaultConfig {
    /// A perfectly reliable link.
    pub const RELIABLE: FaultConfig = FaultConfig {
        drop_chance: 0.0,
        corrupt_chance: 0.0,
        duplicate_chance: 0.0,
        reorder_chance: 0.0,
    };
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::RELIABLE
    }
}

/// One direction of a faulty link: frames go in, possibly-mangled frames
/// come out, in order.
#[derive(Debug)]
pub struct FaultyLink {
    config: FaultConfig,
    rng: StdRng,
    queue: VecDeque<Vec<u8>>,
    /// A frame held back one slot by `reorder_chance`, awaiting its
    /// successor.
    held: Option<Vec<u8>>,
    /// Statistics: frames dropped.
    pub dropped: usize,
    /// Statistics: frames corrupted.
    pub corrupted: usize,
    /// Statistics: frames duplicated.
    pub duplicated: usize,
    /// Statistics: frames delivered out of order.
    pub reordered: usize,
}

impl FaultyLink {
    /// New link with the given faults and seed.
    pub fn new(config: FaultConfig, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&config.drop_chance));
        assert!((0.0..=1.0).contains(&config.corrupt_chance));
        assert!((0.0..=1.0).contains(&config.duplicate_chance));
        assert!((0.0..=1.0).contains(&config.reorder_chance));
        Self {
            config,
            rng: StdRng::seed_from_u64(seed),
            queue: VecDeque::new(),
            held: None,
            dropped: 0,
            corrupted: 0,
            duplicated: 0,
            reordered: 0,
        }
    }

    /// A reliable link.
    pub fn reliable() -> Self {
        Self::new(FaultConfig::RELIABLE, 0)
    }

    /// Send one frame into the link.
    pub fn send(&mut self, frame: Vec<u8>) {
        if self.rng.gen_bool(self.config.drop_chance) {
            self.dropped += 1;
            return;
        }
        let mut frame = frame;
        if !frame.is_empty() && self.rng.gen_bool(self.config.corrupt_chance) {
            let byte = self.rng.gen_range(0..frame.len());
            let bit = self.rng.gen_range(0u32..8);
            frame[byte] ^= 1u8 << bit;
            self.corrupted += 1;
        }
        if self.rng.gen_bool(self.config.duplicate_chance) {
            self.queue.push_back(frame.clone());
            self.duplicated += 1;
        }
        self.enqueue(frame);
    }

    /// Final delivery stage: a previously held frame trails the current
    /// one (the one-slot reorder); the current frame may itself be held
    /// back to trail its successor.
    fn enqueue(&mut self, frame: Vec<u8>) {
        if let Some(held) = self.held.take() {
            self.queue.push_back(frame);
            self.queue.push_back(held);
            self.reordered += 1;
            return;
        }
        if self.rng.gen_bool(self.config.reorder_chance) {
            self.held = Some(frame);
        } else {
            self.queue.push_back(frame);
        }
    }

    /// Receive the next frame, if any. A held frame with no successor is
    /// released here (delayed, but never lost).
    pub fn recv(&mut self) -> Option<Vec<u8>> {
        if self.queue.is_empty() {
            if let Some(held) = self.held.take() {
                return Some(held);
            }
        }
        self.queue.pop_front()
    }

    /// Frames currently in flight (including a held frame).
    pub fn in_flight(&self) -> usize {
        self.queue.len() + usize::from(self.held.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_link_is_fifo() {
        let mut link = FaultyLink::reliable();
        link.send(vec![1]);
        link.send(vec![2]);
        link.send(vec![3]);
        assert_eq!(link.recv(), Some(vec![1]));
        assert_eq!(link.recv(), Some(vec![2]));
        assert_eq!(link.recv(), Some(vec![3]));
        assert_eq!(link.recv(), None);
    }

    #[test]
    fn drop_all() {
        let mut link = FaultyLink::new(
            FaultConfig {
                drop_chance: 1.0,
                ..FaultConfig::RELIABLE
            },
            1,
        );
        link.send(vec![1, 2, 3]);
        assert_eq!(link.recv(), None);
        assert_eq!(link.dropped, 1);
    }

    #[test]
    fn corrupt_changes_exactly_one_bit() {
        let mut link = FaultyLink::new(
            FaultConfig {
                corrupt_chance: 1.0,
                ..FaultConfig::RELIABLE
            },
            2,
        );
        let original = vec![0u8; 16];
        link.send(original.clone());
        let got = link.recv().unwrap();
        let flipped: u32 = original
            .iter()
            .zip(&got)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
        assert_eq!(link.corrupted, 1);
    }

    #[test]
    fn duplicate_delivers_twice() {
        let mut link = FaultyLink::new(
            FaultConfig {
                duplicate_chance: 1.0,
                ..FaultConfig::RELIABLE
            },
            3,
        );
        link.send(vec![7]);
        assert_eq!(link.recv(), Some(vec![7]));
        assert_eq!(link.recv(), Some(vec![7]));
        assert_eq!(link.recv(), None);
    }

    #[test]
    fn reorder_holds_one_frame_back_a_slot() {
        let mut link = FaultyLink::new(
            FaultConfig {
                reorder_chance: 1.0,
                ..FaultConfig::RELIABLE
            },
            4,
        );
        link.send(vec![1]);
        link.send(vec![2]);
        // Frame 1 was held; frame 2 went first, frame 1 trails it.
        assert_eq!(link.recv(), Some(vec![2]));
        assert_eq!(link.recv(), Some(vec![1]));
        assert_eq!(link.recv(), None);
        assert_eq!(link.reordered, 1);
    }

    #[test]
    fn held_frame_without_successor_is_released_not_lost() {
        let mut link = FaultyLink::new(
            FaultConfig {
                reorder_chance: 1.0,
                ..FaultConfig::RELIABLE
            },
            5,
        );
        link.send(vec![9]);
        assert_eq!(link.in_flight(), 1, "held frame still counts in flight");
        assert_eq!(link.recv(), Some(vec![9]), "held frame must not vanish");
        assert_eq!(link.recv(), None);
        assert_eq!(link.reordered, 0, "delayed in order is not a reorder");
    }

    #[test]
    fn faults_are_seed_deterministic() {
        let run = |seed| {
            let mut link = FaultyLink::new(
                FaultConfig {
                    drop_chance: 0.3,
                    corrupt_chance: 0.3,
                    duplicate_chance: 0.3,
                    reorder_chance: 0.3,
                },
                seed,
            );
            let mut out = Vec::new();
            for i in 0..50u8 {
                link.send(vec![i; 4]);
            }
            while let Some(f) = link.recv() {
                out.push(f);
            }
            out
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
