//! LP problem construction.
//!
//! Problems are built incrementally: declare variables (all implicitly
//! `>= 0`), set objective coefficients, add constraints as sparse rows.
//! The solver converts to standard form internally.

/// Direction of one linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `coeffs · x <= rhs`
    Le,
    /// `coeffs · x >= rhs`
    Ge,
    /// `coeffs · x == rhs`
    Eq,
}

/// One sparse constraint row.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// `(variable index, coefficient)` pairs; indices must be unique.
    pub coeffs: Vec<(usize, f64)>,
    /// Relation between the row and `rhs`.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A minimization LP over non-negative variables.
#[derive(Debug, Clone, Default)]
pub struct LpProblem {
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl LpProblem {
    /// Empty problem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a variable with the given objective coefficient (minimized);
    /// returns its index. Variables are constrained to `x >= 0`.
    pub fn add_variable(&mut self, objective_coeff: f64) -> usize {
        assert!(
            objective_coeff.is_finite(),
            "objective coefficient must be finite"
        );
        self.objective.push(objective_coeff);
        self.objective.len() - 1
    }

    /// Add a constraint row. Panics on out-of-range variable indices,
    /// duplicate indices, or non-finite values.
    pub fn add_constraint(&mut self, coeffs: Vec<(usize, f64)>, op: ConstraintOp, rhs: f64) {
        assert!(rhs.is_finite(), "rhs must be finite");
        let mut seen = vec![false; self.objective.len()];
        for &(var, coeff) in &coeffs {
            assert!(
                var < self.objective.len(),
                "constraint references unknown variable {var}"
            );
            assert!(coeff.is_finite(), "coefficient must be finite");
            assert!(!seen[var], "duplicate variable {var} in constraint");
            seen[var] = true;
        }
        self.constraints.push(Constraint { coeffs, op, rhs });
    }

    /// Patch one constraint's right-hand side in place. The constraint's
    /// coefficients and operator — its *structure* — are untouched, which
    /// is what lets a [`crate::SimplexWorkspace`] warm-start the
    /// re-solve. Panics on an out-of-range row or non-finite rhs.
    pub fn set_rhs(&mut self, row: usize, rhs: f64) {
        assert!(rhs.is_finite(), "rhs must be finite");
        self.constraints[row].rhs = rhs;
    }

    /// One constraint's current right-hand side.
    #[inline]
    pub fn rhs(&self, row: usize) -> f64 {
        self.constraints[row].rhs
    }

    /// Patch one coefficient of an existing constraint in place. The
    /// variable must already appear in the row — the sparsity *pattern*
    /// (which variables each row touches, and the operators) stays
    /// fixed, which is what lets a [`crate::SimplexWorkspace`] re-enter
    /// the re-solve through a column refresh of its retained basis
    /// factorization instead of a cold start. Panics on an out-of-range
    /// row, a variable absent from the row, or a non-finite value.
    pub fn set_coefficient(&mut self, row: usize, var: usize, coeff: f64) {
        assert!(coeff.is_finite(), "coefficient must be finite");
        let slot = self.constraints[row]
            .coeffs
            .iter_mut()
            .find(|(v, _)| *v == var)
            .unwrap_or_else(|| panic!("variable {var} not present in constraint {row}"));
        slot.1 = coeff;
    }

    /// Number of variables.
    #[inline]
    pub fn num_variables(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    #[inline]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Objective coefficient vector.
    #[inline]
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Constraint rows.
    #[inline]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Evaluate the objective at a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.objective.len());
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Check whether `x` satisfies every constraint (within `tol`) and
    /// non-negativity. Useful for tests and for validating solver output.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.objective.len() {
            return false;
        }
        if x.iter().any(|&v| v < -tol) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.coeffs.iter().map(|&(i, a)| a * x[i]).sum();
            match c.op {
                ConstraintOp::Le => lhs <= c.rhs + tol,
                ConstraintOp::Ge => lhs >= c.rhs - tol,
                ConstraintOp::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_problem() {
        let mut p = LpProblem::new();
        let x = p.add_variable(1.0);
        let y = p.add_variable(2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 10.0);
        assert_eq!(p.num_variables(), 2);
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.objective_value(&[3.0, 4.0]), 11.0);
    }

    #[test]
    fn feasibility_check() {
        let mut p = LpProblem::new();
        let x = p.add_variable(1.0);
        p.add_constraint(vec![(x, 2.0)], ConstraintOp::Ge, 4.0);
        assert!(p.is_feasible(&[2.0], 1e-9));
        assert!(p.is_feasible(&[3.0], 1e-9));
        assert!(!p.is_feasible(&[1.0], 1e-9));
        assert!(!p.is_feasible(&[-1.0], 1e-9), "negativity rejected");
        assert!(!p.is_feasible(&[1.0, 2.0], 1e-9), "wrong arity rejected");
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn rejects_unknown_variable() {
        let mut p = LpProblem::new();
        p.add_constraint(vec![(3, 1.0)], ConstraintOp::Le, 1.0);
    }

    #[test]
    #[should_panic(expected = "duplicate variable")]
    fn rejects_duplicate_variable() {
        let mut p = LpProblem::new();
        let x = p.add_variable(0.0);
        p.add_constraint(vec![(x, 1.0), (x, 2.0)], ConstraintOp::Le, 1.0);
    }
}
