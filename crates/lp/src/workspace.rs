//! Warm-started solving: a reusable [`SimplexWorkspace`].
//!
//! The failure-scenario sweeps solve long runs of LPs that share one
//! constraint skeleton and differ only in their right-hand sides
//! (`baselines::BandwidthLp` patches residuals and conservation targets
//! per scenario). Cold-starting the two-phase simplex on every member of
//! such a run wastes almost all of its work: phase 1 re-derives a basic
//! feasible solution from scratch and phase 2 re-walks to an optimum the
//! previous solve already sat next to.
//!
//! A [`SimplexWorkspace`] keeps the **final tableau** of the last
//! successful solve. When the next problem has the *same structure* —
//! identical objective, constraint operators and coefficients; only rhs
//! values changed — the workspace re-enters the simplex from the saved
//! optimal basis:
//!
//! 1. The new `b = B^{-1} b̃` is recomputed in `O(m^2)` from the unit
//!    columns the tableau carries anyway (each row's slack or artificial
//!    column starts as `e_r`, and row operations preserve
//!    `column == B^{-1} e_r`, so those columns *are* the basis inverse).
//! 2. The saved basis is still **dual feasible** (reduced costs do not
//!    depend on `b`), so primal infeasibility is repaired with
//!    **dual-simplex** pivots — typically a handful, each reflecting one
//!    constraint whose rhs change actually moved the optimum.
//! 3. A primal phase-2 pass polishes to optimality (usually zero
//!    pivots), and the solution is verified against the *problem itself*
//!    (`is_feasible`) before being returned.
//!
//! Any mismatch or trouble — different structure, a stale/singular
//! basis, a blocked dual pivot, a budget overrun, a solution that fails
//! verification — falls back to the ordinary cold start, so a warm solve
//! can never return anything a cold solve would not. Structure matching
//! is by content (an FNV-1a hash over the objective and every row's
//! operator and coefficients), not by pointer, so callers may rebuild
//! problems freely.
//!
//! Accumulated float drift is bounded two ways: reduced costs are
//! recomputed from the tableau on every warm entry, and
//! [`SimplexOptions::tolerance`]-scaled verification rejects drifted
//! solutions, forcing a refresh from a cold factorization.

use crate::problem::{ConstraintOp, LpProblem};
use crate::simplex::{LpOutcome, PhaseResult, SimplexOptions, Tableau};

/// Counters describing how a [`SimplexWorkspace`] resolved its solves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmStats {
    /// Solves that ran the full two-phase cold path.
    pub cold_solves: usize,
    /// Solves answered from the saved basis (dual repair + polish).
    pub warm_solves: usize,
    /// Warm attempts that had to fall back to a cold start (stale or
    /// infeasible-at-basis); each also counts as a cold solve.
    pub warm_fallbacks: usize,
}

/// A reusable simplex solver that warm-starts structurally-identical
/// problems from the previous solve's final basis. See the module docs
/// for the algorithm and the fallback rules.
pub struct SimplexWorkspace {
    options: SimplexOptions,
    saved: Option<Saved>,
    stats: WarmStats,
    /// Scratch for the sign-normalized rhs and the recomputed `b`.
    rhs_scratch: Vec<f64>,
}

struct Saved {
    signature: u64,
    tableau: Tableau,
}

impl Default for SimplexWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl SimplexWorkspace {
    /// A workspace with default [`SimplexOptions`].
    pub fn new() -> Self {
        Self::with_options(SimplexOptions::default())
    }

    /// A workspace with explicit solver options.
    pub fn with_options(options: SimplexOptions) -> Self {
        Self {
            options,
            saved: None,
            stats: WarmStats::default(),
            rhs_scratch: Vec::new(),
        }
    }

    /// How the workspace resolved its solves so far.
    pub fn stats(&self) -> WarmStats {
        self.stats
    }

    /// Drop the saved basis: the next solve is forced cold. Useful when
    /// the caller knows the upcoming problem is unrelated, and for
    /// benchmarking the cold path through the same interface.
    pub fn invalidate(&mut self) {
        self.saved = None;
    }

    /// Solve, warm-starting from the previous solve's basis when the
    /// problem differs from it only in right-hand sides. Outcomes are
    /// identical to [`crate::solve_with`] up to the solver tolerance
    /// (degenerate optima may pick a different optimal vertex).
    pub fn solve(&mut self, problem: &LpProblem) -> LpOutcome {
        let signature = structure_signature(problem);
        if let Some(saved) = &mut self.saved {
            if saved.signature == signature {
                if let Some(outcome) = try_warm(
                    &mut saved.tableau,
                    problem,
                    self.options,
                    &mut self.rhs_scratch,
                ) {
                    self.stats.warm_solves += 1;
                    return outcome;
                }
                self.saved = None;
                self.stats.warm_fallbacks += 1;
            } else {
                self.saved = None;
            }
        }

        self.stats.cold_solves += 1;
        let mut tableau = Tableau::build(problem, self.options);
        let outcome = tableau.run(problem);
        if matches!(outcome, LpOutcome::Optimal { .. }) {
            self.saved = Some(Saved { signature, tableau });
        }
        outcome
    }
}

/// Re-enter the simplex from the saved final tableau. `None` means the
/// basis could not be reused (the caller falls back to a cold start).
fn try_warm(
    tableau: &mut Tableau,
    problem: &LpProblem,
    options: SimplexOptions,
    scratch: &mut Vec<f64>,
) -> Option<LpOutcome> {
    let (m, n) = (tableau.m, tableau.n);
    let nv = problem.num_variables();
    debug_assert_eq!(m, problem.num_constraints());
    let tol = options.tolerance;
    let feas_tol = tol.max(1e-7);

    // New tableau rhs: b = B^{-1} (sign ∘ rhs), reading B^{-1} off the
    // unit columns.
    scratch.clear();
    scratch.extend(
        problem
            .constraints()
            .iter()
            .zip(&tableau.signs)
            .map(|(c, sign)| sign * c.rhs),
    );
    let mut new_b = vec![0.0; m];
    for (r, &srhs) in scratch.iter().enumerate() {
        if srhs != 0.0 {
            let unit = tableau.unit_cols[r];
            for (i, bi) in new_b.iter_mut().enumerate() {
                *bi += tableau.a[i * n + unit] * srhs;
            }
        }
    }
    tableau.b.copy_from_slice(&new_b);

    // Fresh phase-2 reduced costs from the current tableau (removes any
    // drift accumulated over previous warm solves).
    let mut phase2 = vec![0.0; n];
    phase2[..nv].copy_from_slice(problem.objective());
    tableau.reset_costs(&phase2);
    tableau.phase_cost = Some(phase2);
    tableau.iterations_used = 0;

    // Repair primal feasibility with dual-simplex pivots, then polish
    // with an (almost always trivial) primal phase-2 pass.
    if !tableau.dual_optimize(4 * m + 64) {
        return None;
    }
    match tableau.optimize(true) {
        PhaseResult::Optimal => {}
        PhaseResult::Unbounded | PhaseResult::IterationLimit => return None,
    }

    // An artificial still basic at a meaningfully positive value means
    // the saved basis cannot represent the patched problem.
    for (row, &var) in tableau.basis.iter().enumerate() {
        if var >= tableau.artificial_start && tableau.b[row] > feas_tol {
            return None;
        }
    }

    // Trust, but verify: the warm path must never return a point the
    // problem itself rejects.
    let solution = tableau.extract_solution(nv);
    if !problem.is_feasible(&solution, 1e-6) {
        return None;
    }
    Some(LpOutcome::Optimal {
        objective: problem.objective_value(&solution),
        solution,
    })
}

/// Content hash of everything except right-hand sides: variable count,
/// objective, and each constraint's operator and coefficient list.
/// Problems with equal signatures share a standard-form column layout,
/// so a saved basis from one is meaningful for the other.
fn structure_signature(problem: &LpProblem) -> u64 {
    let mut h = Fnv::new();
    h.write_usize(problem.num_variables());
    h.write_usize(problem.num_constraints());
    for &c in problem.objective() {
        h.write_u64(c.to_bits());
    }
    for constraint in problem.constraints() {
        h.write_usize(match constraint.op {
            ConstraintOp::Le => 1,
            ConstraintOp::Ge => 2,
            ConstraintOp::Eq => 3,
        });
        h.write_usize(constraint.coeffs.len());
        for &(var, coeff) in &constraint.coeffs {
            h.write_usize(var);
            h.write_u64(coeff.to_bits());
        }
    }
    h.finish()
}

/// Minimal FNV-1a, enough for structure fingerprints.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintOp, LpProblem};
    use crate::solve;

    fn objective(outcome: &LpOutcome) -> f64 {
        match outcome {
            LpOutcome::Optimal { objective, .. } => *objective,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    /// The min-max-ratio shape the bandwidth optimum uses, with
    /// patchable capacity residuals.
    fn min_max_problem(residuals: &[f64; 2]) -> LpProblem {
        // min t  s.t. x1 + x2 == 1, 5 x1 - 10 t <= -r1, 5 x2 - 2 t <= -r2.
        let mut p = LpProblem::new();
        let t = p.add_variable(1.0);
        let x1 = p.add_variable(0.0);
        let x2 = p.add_variable(0.0);
        p.add_constraint(vec![(x1, 1.0), (x2, 1.0)], ConstraintOp::Eq, 1.0);
        p.add_constraint(vec![(x1, 5.0), (t, -10.0)], ConstraintOp::Le, -residuals[0]);
        p.add_constraint(vec![(x2, 5.0), (t, -2.0)], ConstraintOp::Le, -residuals[1]);
        p
    }

    #[test]
    fn warm_rhs_patch_matches_cold() {
        let mut ws = SimplexWorkspace::new();
        let mut p = min_max_problem(&[0.0, 0.0]);
        let first = objective(&ws.solve(&p));
        assert!((first - 5.0 / 12.0).abs() < 1e-9);
        assert_eq!(ws.stats().cold_solves, 1);

        // Patch the residuals (rhs only) and re-solve warm.
        for (r1, r2) in [(1.0, 0.5), (3.0, 0.0), (0.0, 1.5), (2.0, 2.0)] {
            p.set_rhs(1, -r1);
            p.set_rhs(2, -r2);
            let warm = objective(&ws.solve(&p));
            let cold = objective(&solve(&p));
            assert!(
                (warm - cold).abs() < 1e-9,
                "warm {warm} != cold {cold} for residuals ({r1}, {r2})"
            );
        }
        let stats = ws.stats();
        assert!(stats.warm_solves >= 3, "stats = {stats:?}");
        assert_eq!(stats.cold_solves + stats.warm_solves, 5);
    }

    #[test]
    fn structural_change_falls_back_cold() {
        let mut ws = SimplexWorkspace::new();
        let p = min_max_problem(&[0.0, 0.0]);
        ws.solve(&p);
        // New coefficient => different signature => cold, not a fallback.
        let mut q = min_max_problem(&[0.0, 0.0]);
        q.add_constraint(vec![(1, 1.0)], ConstraintOp::Le, 0.9);
        let warm = objective(&ws.solve(&q));
        let cold = objective(&solve(&q));
        assert!((warm - cold).abs() < 1e-9);
        assert_eq!(ws.stats().cold_solves, 2);
        assert_eq!(ws.stats().warm_solves, 0);
        assert_eq!(ws.stats().warm_fallbacks, 0);
    }

    #[test]
    fn infeasible_after_patch_detected() {
        let mut p = LpProblem::new();
        let x = p.add_variable(1.0);
        p.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 5.0);
        p.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 1.0);
        let mut ws = SimplexWorkspace::new();
        assert!((objective(&ws.solve(&p)) - 1.0).abs() < 1e-9);
        // x <= 5 becomes x <= 0.5 while x >= 1 stays: infeasible.
        p.set_rhs(0, 0.5);
        assert_eq!(ws.solve(&p), LpOutcome::Infeasible);
        // And feasible again after widening.
        p.set_rhs(0, 2.0);
        assert!((objective(&ws.solve(&p)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalidate_forces_cold() {
        let mut ws = SimplexWorkspace::new();
        let mut p = min_max_problem(&[0.0, 0.0]);
        ws.solve(&p);
        p.set_rhs(1, -1.0);
        ws.invalidate();
        ws.solve(&p);
        assert_eq!(ws.stats().cold_solves, 2);
        assert_eq!(ws.stats().warm_solves, 0);
    }

    #[test]
    fn rhs_sign_flip_still_warm_and_correct() {
        // The cold build flips rows with negative rhs; a warm re-solve
        // keeps the old signs. Crossing zero must still be handled.
        let mut p = LpProblem::new();
        let x = p.add_variable(1.0);
        let y = p.add_variable(2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 2.0);
        p.add_constraint(vec![(x, -1.0)], ConstraintOp::Le, -1.0); // x >= 1
        let mut ws = SimplexWorkspace::new();
        assert!((objective(&ws.solve(&p)) - 2.0).abs() < 1e-9);
        // Flip the second row's rhs sign: x >= -3 (vacuous).
        p.set_rhs(1, 3.0);
        let warm = objective(&ws.solve(&p));
        let cold = objective(&solve(&p));
        assert!((warm - cold).abs() < 1e-9, "warm {warm} cold {cold}");
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        // Randomized feasible-by-construction LPs with a sequence of rhs
        // patches: every warm solve must match a fresh cold solve's
        // objective to 1e-9 and return a feasible point.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn warm_matches_cold_across_rhs_patches(
                nv in 1usize..5,
                seed_rows in proptest::collection::vec(
                    (proptest::collection::vec(-5.0f64..5.0, 5), 0.0f64..3.0), 1..6),
                cost in proptest::collection::vec(0.0f64..4.0, 5),
                x0 in proptest::collection::vec(0.0f64..3.0, 5),
                patches in proptest::collection::vec(
                    (0usize..6, 0.0f64..4.0), 1..8),
            ) {
                let mut p = LpProblem::new();
                for &c in cost.iter().take(nv) {
                    p.add_variable(c);
                }
                for (coeffs, slack) in &seed_rows {
                    let row: Vec<(usize, f64)> =
                        (0..nv).map(|i| (i, coeffs[i])).collect();
                    let rhs: f64 =
                        (0..nv).map(|i| coeffs[i] * x0[i]).sum::<f64>() + slack;
                    p.add_constraint(row, ConstraintOp::Le, rhs);
                }
                let mut ws = SimplexWorkspace::new();
                ws.solve(&p);
                for &(row, extra) in &patches {
                    let row = row % seed_rows.len();
                    // Keep the problem feasible: rhs >= the known point's
                    // row value.
                    let base: f64 = (0..nv)
                        .map(|i| seed_rows[row].0[i] * x0[i])
                        .sum();
                    p.set_rhs(row, base + extra);
                    let warm = ws.solve(&p);
                    let cold = solve(&p);
                    match (warm, cold) {
                        (
                            LpOutcome::Optimal { objective: w, solution },
                            LpOutcome::Optimal { objective: c, .. },
                        ) => {
                            prop_assert!((w - c).abs() < 1e-9,
                                "warm {w} != cold {c}");
                            prop_assert!(p.is_feasible(&solution, 1e-6));
                        }
                        (w, c) => prop_assert!(
                            false, "outcome mismatch: warm {w:?} cold {c:?}"),
                    }
                }
                // The sequence must actually exercise the warm path.
                prop_assert!(ws.stats().warm_solves + ws.stats().warm_fallbacks
                    + ws.stats().cold_solves >= patches.len());
            }

            // Coefficient patches change the structure signature: the
            // workspace must transparently cold-start and still agree.
            #[test]
            fn coefficient_patch_falls_back_and_agrees(
                c0 in 0.5f64..4.0,
                c1 in 0.5f64..4.0,
            ) {
                let build = |coeff: f64| {
                    let mut p = LpProblem::new();
                    let x = p.add_variable(1.0);
                    let y = p.add_variable(1.5);
                    p.add_constraint(
                        vec![(x, coeff), (y, 1.0)], ConstraintOp::Ge, 3.0);
                    p
                };
                let mut ws = SimplexWorkspace::new();
                let a = ws.solve(&build(c0));
                let b = ws.solve(&build(c1));
                match (a, b, solve(&build(c1))) {
                    (
                        LpOutcome::Optimal { .. },
                        LpOutcome::Optimal { objective: w, .. },
                        LpOutcome::Optimal { objective: c, .. },
                    ) => prop_assert!((w - c).abs() < 1e-9),
                    other => prop_assert!(false, "unexpected: {other:?}"),
                }
            }
        }
    }
}
