//! Warm-started solving: a reusable [`SimplexWorkspace`].
//!
//! The what-if sweeps solve long runs of LPs that share one constraint
//! skeleton: failure-scenario ladders patch right-hand sides
//! (`baselines::BandwidthLp` scales residuals per scenario), and the
//! capacity-model grids patch constraint *coefficients* (every capacity
//! model rewrites the `-cap` column of the same rows). Cold-starting the
//! two-phase simplex on every member of such a run wastes almost all of
//! its work: phase 1 re-derives a basic feasible solution from scratch
//! and phase 2 re-walks to an optimum the previous solve already sat
//! next to.
//!
//! A [`SimplexWorkspace`] keeps the **revised-simplex engine** of the
//! last successful solve — the basis (a set of column indices), its LU
//! factorization and the standard-form layout. Re-entry depends on what
//! changed relative to the saved problem:
//!
//! * **rhs-only patch** (identical objective and coefficients): the new
//!   `x_B = B^{-1} b̃` is one FTRAN against the retained factorization;
//!   the saved basis is still dual feasible, so primal feasibility is
//!   repaired with **dual-simplex** pivots and polished with an (almost
//!   always trivial) primal pass.
//! * **coefficient patch** (same sparsity pattern and operators,
//!   different values — capacity-model and volume grids): the engine
//!   **reloads only the column values and refactorizes the retained
//!   basis** — no rebuild, no phase 1. From that basis the cheapest
//!   applicable repair runs: a primal polish when still primal feasible,
//!   dual-simplex repair when still dual feasible, or an rhs-homotopy
//!   bridge when neither survives the patch.
//! * **structural change** (rows, operators or sparsity differ): cold.
//!
//! Any trouble — a stale/singular basis, a blocked pivot, a budget
//! overrun, a solution that fails verification — falls back to the
//! ordinary cold start, so a warm solve can never return anything a cold
//! solve would not. Matching is by content (FNV-1a hashes of the
//! sparsity pattern and of the value vector), not by pointer, so callers
//! may rebuild problems freely.
//!
//! Accumulated float drift is bounded three ways: reduced costs are
//! recomputed from scratch on every pricing pass, the factorization is
//! rebuilt periodically (re-deriving `x_B` from the raw rhs), and
//! solutions are verified against the problem itself before being
//! returned, forcing a cold refresh when drift ever won.

use crate::problem::{ConstraintOp, LpProblem};
use crate::revised::{EngineCounters, RevisedSimplex};
use crate::simplex::{LpOutcome, SimplexOptions};

/// Counters describing how a [`SimplexWorkspace`] resolved its solves,
/// plus the engine's factorization/pricing telemetry: path counters
/// (`*_solves`, `*_fallbacks`) say *which* re-entry each solve took,
/// the engine counters say what the basis machinery did along the way.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmStats {
    /// Solves that ran the full two-phase cold path.
    pub cold_solves: usize,
    /// Rhs-only solves answered from the saved basis (dual repair +
    /// polish).
    pub warm_solves: usize,
    /// Warm attempts that had to fall back to a cold start (stale or
    /// infeasible-at-basis); each also counts as a cold solve.
    pub warm_fallbacks: usize,
    /// Coefficient-patched solves answered by refreshing the changed
    /// columns against the retained basis factorization.
    pub refresh_solves: usize,
    /// Column-refresh attempts that had to fall back to a cold start
    /// (singular refreshed basis, blocked repair, failed verification);
    /// each also counts as a cold solve.
    pub refresh_fallbacks: usize,
    /// Sparse-LU basis refactorizations (scheduled eta-limit rebuilds,
    /// cold builds, and coefficient patches too broad to absorb).
    pub refactorizations: usize,
    /// Basis changes recorded as product-form eta updates.
    pub eta_pivots: usize,
    /// Longest eta file any FTRAN/BTRAN had to walk (peak, not a sum).
    pub max_eta_chain: usize,
    /// Worst L+U fill-in (stored nonzeros) any factorization produced
    /// (peak, not a sum).
    pub lu_fill_nnz: usize,
    /// Devex-to-Bland pricing hand-overs (anti-cycling stalls).
    pub pricing_fallbacks: usize,
}

impl WarmStats {
    /// Accumulate another workspace's counters (sweep-level reporting).
    /// Count fields add; the two peak fields (`max_eta_chain`,
    /// `lu_fill_nnz`) take the maximum.
    pub fn absorb(&mut self, other: WarmStats) {
        self.cold_solves += other.cold_solves;
        self.warm_solves += other.warm_solves;
        self.warm_fallbacks += other.warm_fallbacks;
        self.refresh_solves += other.refresh_solves;
        self.refresh_fallbacks += other.refresh_fallbacks;
        self.refactorizations += other.refactorizations;
        self.eta_pivots += other.eta_pivots;
        self.max_eta_chain = self.max_eta_chain.max(other.max_eta_chain);
        self.lu_fill_nnz = self.lu_fill_nnz.max(other.lu_fill_nnz);
        self.pricing_fallbacks += other.pricing_fallbacks;
    }

    /// Fold one engine's drained telemetry into the totals.
    pub(crate) fn absorb_engine(&mut self, c: EngineCounters) {
        self.refactorizations += c.refactorizations;
        self.eta_pivots += c.eta_pivots;
        self.max_eta_chain = self.max_eta_chain.max(c.max_eta_chain);
        self.lu_fill_nnz = self.lu_fill_nnz.max(c.lu_fill_nnz);
        self.pricing_fallbacks += c.pricing_fallbacks;
    }

    /// Total solves recorded.
    pub fn total_solves(&self) -> usize {
        self.cold_solves + self.warm_solves + self.refresh_solves
    }

    /// Solves answered without a cold two-phase start: rhs re-entries
    /// through the saved basis plus coefficient-patch column refreshes.
    /// Streaming drivers report this to show their event loop actually
    /// re-enters warm instead of silently falling back.
    pub fn warm_reentries(&self) -> usize {
        self.warm_solves + self.refresh_solves
    }

    /// Fraction of all solves answered warm (0 when nothing solved).
    pub fn warm_fraction(&self) -> f64 {
        let total = self.total_solves();
        if total == 0 {
            0.0
        } else {
            self.warm_reentries() as f64 / total as f64
        }
    }
}

/// A reusable simplex solver that warm-starts patched problems from the
/// previous solve's retained basis factorization. See the module docs
/// for the re-entry matrix and the fallback rules.
pub struct SimplexWorkspace {
    options: SimplexOptions,
    saved: Option<Saved>,
    stats: WarmStats,
}

struct Saved {
    /// Hash of the sparsity pattern: variable/constraint counts, row
    /// operators and per-row variable indices. Must match for any reuse.
    pattern: u64,
    /// Hash of the objective and coefficient values. Equal values mean
    /// an rhs-only patch; differing values mean a column refresh.
    values: u64,
    engine: RevisedSimplex,
}

impl Default for SimplexWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl SimplexWorkspace {
    /// A workspace with default [`SimplexOptions`].
    pub fn new() -> Self {
        Self::with_options(SimplexOptions::default())
    }

    /// A workspace with explicit solver options.
    pub fn with_options(options: SimplexOptions) -> Self {
        Self {
            options,
            saved: None,
            stats: WarmStats::default(),
        }
    }

    /// How the workspace resolved its solves so far.
    pub fn stats(&self) -> WarmStats {
        self.stats
    }

    /// Drop the saved basis: the next solve is forced cold. Useful when
    /// the caller knows the upcoming problem is unrelated, and for
    /// benchmarking the cold path through the same interface.
    pub fn invalidate(&mut self) {
        self.saved = None;
    }

    /// Solve, re-entering from the previous solve's basis when the
    /// problem shares its constraint pattern: rhs-only patches repair
    /// via dual simplex, coefficient patches refresh the changed columns
    /// against the retained factorization. Outcomes are identical to
    /// [`crate::solve_with`] up to the solver tolerance (degenerate
    /// optima may pick a different optimal vertex).
    pub fn solve(&mut self, problem: &LpProblem) -> LpOutcome {
        let pattern = pattern_signature(problem);
        let values = value_signature(problem);
        if let Some(saved) = &mut self.saved {
            if saved.pattern == pattern {
                let rhs_only = saved.values == values;
                let attempt = if rhs_only {
                    saved.engine.install_rhs(problem);
                    Some(&mut saved.engine)
                } else if saved.engine.reload_values(problem) {
                    Some(&mut saved.engine)
                } else {
                    None
                };
                let outcome = attempt.and_then(|e| finish_warm(e, problem));
                // Telemetry accrues even on a failed attempt (partial
                // repairs still refactorize and push etas).
                let drained = saved.engine.take_counters();
                self.stats.absorb_engine(drained);
                if let Some(outcome) = outcome {
                    saved.values = values;
                    if rhs_only {
                        self.stats.warm_solves += 1;
                    } else {
                        self.stats.refresh_solves += 1;
                    }
                    return outcome;
                }
                self.saved = None;
                if rhs_only {
                    self.stats.warm_fallbacks += 1;
                } else {
                    self.stats.refresh_fallbacks += 1;
                }
            } else {
                self.saved = None;
            }
        }

        self.stats.cold_solves += 1;
        let Some(mut engine) = RevisedSimplex::build(problem, self.options) else {
            // Unreachable in practice (the initial basis is a permuted
            // identity); classify like any other numerical failure.
            return LpOutcome::IterationLimit { iterations: 0 };
        };
        let outcome = engine.run(problem);
        let drained = engine.take_counters();
        self.stats.absorb_engine(drained);
        if matches!(outcome, LpOutcome::Optimal { .. }) {
            self.saved = Some(Saved {
                pattern,
                values,
                engine,
            });
        }
        outcome
    }
}

/// Run the warm re-optimization on a re-entered engine and verify the
/// result. `None` means the basis could not be reused (the caller falls
/// back to a cold start).
fn finish_warm(engine: &mut RevisedSimplex, problem: &LpProblem) -> Option<LpOutcome> {
    if !engine.reoptimize(problem.objective()) {
        return None;
    }
    // An artificial still basic at a meaningfully positive value means
    // the saved basis cannot represent the patched problem.
    if engine.artificial_still_basic() {
        return None;
    }
    // Trust, but verify: the warm path must never return a point the
    // problem itself rejects.
    let solution = engine.extract_solution(problem.num_variables());
    if !problem.is_feasible(&solution, 1e-6) {
        return None;
    }
    Some(LpOutcome::Optimal {
        objective: problem.objective_value(&solution),
        solution,
    })
}

/// Content hash of the constraint *pattern*: variable and constraint
/// counts, each row's operator and the variable indices it touches.
/// Problems with equal patterns share a standard-form column layout, so
/// a saved basis from one is meaningful for the other (values are
/// refreshed separately).
fn pattern_signature(problem: &LpProblem) -> u64 {
    let mut h = Fnv::new();
    h.write_usize(problem.num_variables());
    h.write_usize(problem.num_constraints());
    for constraint in problem.constraints() {
        h.write_usize(match constraint.op {
            ConstraintOp::Le => 1,
            ConstraintOp::Ge => 2,
            ConstraintOp::Eq => 3,
        });
        h.write_usize(constraint.coeffs.len());
        for &(var, _) in &constraint.coeffs {
            h.write_usize(var);
        }
    }
    h.finish()
}

/// Content hash of everything except right-hand sides: the objective and
/// every coefficient value. Together with an equal pattern this certifies
/// an rhs-only patch (the dual-simplex fast path).
fn value_signature(problem: &LpProblem) -> u64 {
    let mut h = Fnv::new();
    for &c in problem.objective() {
        h.write_u64(c.to_bits());
    }
    for constraint in problem.constraints() {
        for &(_, coeff) in &constraint.coeffs {
            h.write_u64(coeff.to_bits());
        }
    }
    h.finish()
}

/// Minimal FNV-1a, enough for structure fingerprints.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintOp, LpProblem};
    use crate::solve;

    fn objective(outcome: &LpOutcome) -> f64 {
        match outcome {
            LpOutcome::Optimal { objective, .. } => *objective,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    /// The min-max-ratio shape the bandwidth optimum uses, with
    /// patchable capacity residuals.
    fn min_max_problem(residuals: &[f64; 2]) -> LpProblem {
        // min t  s.t. x1 + x2 == 1, 5 x1 - 10 t <= -r1, 5 x2 - 2 t <= -r2.
        let mut p = LpProblem::new();
        let t = p.add_variable(1.0);
        let x1 = p.add_variable(0.0);
        let x2 = p.add_variable(0.0);
        p.add_constraint(vec![(x1, 1.0), (x2, 1.0)], ConstraintOp::Eq, 1.0);
        p.add_constraint(vec![(x1, 5.0), (t, -10.0)], ConstraintOp::Le, -residuals[0]);
        p.add_constraint(vec![(x2, 5.0), (t, -2.0)], ConstraintOp::Le, -residuals[1]);
        p
    }

    #[test]
    fn warm_rhs_patch_matches_cold() {
        let mut ws = SimplexWorkspace::new();
        let mut p = min_max_problem(&[0.0, 0.0]);
        let first = objective(&ws.solve(&p));
        assert!((first - 5.0 / 12.0).abs() < 1e-9);
        assert_eq!(ws.stats().cold_solves, 1);

        // Patch the residuals (rhs only) and re-solve warm.
        for (r1, r2) in [(1.0, 0.5), (3.0, 0.0), (0.0, 1.5), (2.0, 2.0)] {
            p.set_rhs(1, -r1);
            p.set_rhs(2, -r2);
            let warm = objective(&ws.solve(&p));
            let cold = objective(&solve(&p));
            assert!(
                (warm - cold).abs() < 1e-9,
                "warm {warm} != cold {cold} for residuals ({r1}, {r2})"
            );
        }
        let stats = ws.stats();
        assert!(stats.warm_solves >= 3, "stats = {stats:?}");
        assert_eq!(stats.cold_solves + stats.warm_solves, 5);
        assert_eq!(stats.refresh_solves, 0, "no coefficient changed");
    }

    #[test]
    fn coefficient_patch_refreshes_the_basis() {
        // Capacity-model style patch: the t-column coefficients change,
        // the pattern does not. Must run as a refresh, not a cold start.
        let mut ws = SimplexWorkspace::new();
        let mut p = min_max_problem(&[1.0, 0.5]);
        ws.solve(&p);
        for (c1, c2) in [(-8.0, -3.0), (-16.0, -1.0), (-6.0, -6.0), (-9.0, -2.5)] {
            p.set_coefficient(1, 0, c1);
            p.set_coefficient(2, 0, c2);
            let warm = objective(&ws.solve(&p));
            let cold = objective(&solve(&p));
            assert!(
                (warm - cold).abs() < 1e-9,
                "refresh {warm} != cold {cold} for caps ({c1}, {c2})"
            );
        }
        let stats = ws.stats();
        assert_eq!(stats.cold_solves, 1, "stats = {stats:?}");
        assert_eq!(stats.refresh_solves + stats.refresh_fallbacks, 4);
        assert!(stats.refresh_solves >= 3, "stats = {stats:?}");
    }

    #[test]
    fn mixed_rhs_and_coefficient_patches_agree() {
        let mut ws = SimplexWorkspace::new();
        let mut p = min_max_problem(&[0.5, 0.5]);
        ws.solve(&p);
        // Alternate rhs-only and coefficient patches; every solve must
        // match a fresh cold solve.
        for step in 0..6 {
            if step % 2 == 0 {
                p.set_rhs(1, -(step as f64) * 0.4);
            } else {
                p.set_coefficient(1, 0, -10.0 - step as f64);
                p.set_coefficient(0, 1, 1.0 + 0.1 * step as f64);
            }
            let warm = objective(&ws.solve(&p));
            let cold = objective(&solve(&p));
            assert!(
                (warm - cold).abs() < 1e-9,
                "step {step}: warm {warm} != cold {cold}"
            );
        }
        let stats = ws.stats();
        assert!(
            stats.warm_solves + stats.refresh_solves >= 4,
            "patch chain barely warm: {stats:?}"
        );
    }

    #[test]
    fn structural_change_falls_back_cold() {
        let mut ws = SimplexWorkspace::new();
        let p = min_max_problem(&[0.0, 0.0]);
        ws.solve(&p);
        // New constraint => different pattern => cold, not a fallback.
        let mut q = min_max_problem(&[0.0, 0.0]);
        q.add_constraint(vec![(1, 1.0)], ConstraintOp::Le, 0.9);
        let warm = objective(&ws.solve(&q));
        let cold = objective(&solve(&q));
        assert!((warm - cold).abs() < 1e-9);
        assert_eq!(ws.stats().cold_solves, 2);
        assert_eq!(ws.stats().warm_solves, 0);
        assert_eq!(ws.stats().warm_fallbacks, 0);
        assert_eq!(ws.stats().refresh_solves, 0);
    }

    #[test]
    fn infeasible_after_patch_detected() {
        let mut p = LpProblem::new();
        let x = p.add_variable(1.0);
        p.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 5.0);
        p.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 1.0);
        let mut ws = SimplexWorkspace::new();
        assert!((objective(&ws.solve(&p)) - 1.0).abs() < 1e-9);
        // x <= 5 becomes x <= 0.5 while x >= 1 stays: infeasible.
        p.set_rhs(0, 0.5);
        assert_eq!(ws.solve(&p), LpOutcome::Infeasible);
        // And feasible again after widening.
        p.set_rhs(0, 2.0);
        assert!((objective(&ws.solve(&p)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_after_coefficient_patch_detected() {
        let mut p = LpProblem::new();
        let x = p.add_variable(1.0);
        p.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 2.0);
        p.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 1.0);
        let mut ws = SimplexWorkspace::new();
        assert!((objective(&ws.solve(&p)) - 1.0).abs() < 1e-9);
        // x <= 2 becomes 5x <= 2 while x >= 1 stays: infeasible.
        p.set_coefficient(0, x, 5.0);
        assert_eq!(ws.solve(&p), LpOutcome::Infeasible);
        // Relax back: feasible again.
        p.set_coefficient(0, x, 0.5);
        assert!((objective(&ws.solve(&p)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalidate_forces_cold() {
        let mut ws = SimplexWorkspace::new();
        let mut p = min_max_problem(&[0.0, 0.0]);
        ws.solve(&p);
        p.set_rhs(1, -1.0);
        ws.invalidate();
        ws.solve(&p);
        assert_eq!(ws.stats().cold_solves, 2);
        assert_eq!(ws.stats().warm_solves, 0);
    }

    #[test]
    fn rhs_sign_flip_still_warm_and_correct() {
        // The cold build flips rows with negative rhs; a warm re-solve
        // keeps the old signs. Crossing zero must still be handled.
        let mut p = LpProblem::new();
        let x = p.add_variable(1.0);
        let y = p.add_variable(2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 2.0);
        p.add_constraint(vec![(x, -1.0)], ConstraintOp::Le, -1.0); // x >= 1
        let mut ws = SimplexWorkspace::new();
        assert!((objective(&ws.solve(&p)) - 2.0).abs() < 1e-9);
        // Flip the second row's rhs sign: x >= -3 (vacuous).
        p.set_rhs(1, 3.0);
        let warm = objective(&ws.solve(&p));
        let cold = objective(&solve(&p));
        assert!((warm - cold).abs() < 1e-9, "warm {warm} cold {cold}");
    }

    #[test]
    fn absorb_accumulates_counters() {
        let mut total = WarmStats::default();
        total.absorb(WarmStats {
            cold_solves: 1,
            warm_solves: 2,
            warm_fallbacks: 3,
            refresh_solves: 4,
            refresh_fallbacks: 5,
            refactorizations: 6,
            eta_pivots: 7,
            max_eta_chain: 8,
            lu_fill_nnz: 90,
            pricing_fallbacks: 1,
        });
        total.absorb(WarmStats {
            cold_solves: 10,
            refactorizations: 2,
            eta_pivots: 3,
            max_eta_chain: 4,
            lu_fill_nnz: 120,
            ..WarmStats::default()
        });
        assert_eq!(total.cold_solves, 11);
        assert_eq!(total.warm_solves, 2);
        assert_eq!(total.warm_fallbacks, 3);
        assert_eq!(total.refresh_solves, 4);
        assert_eq!(total.refresh_fallbacks, 5);
        // Counts sum; the two peak fields take the max.
        assert_eq!(total.refactorizations, 8);
        assert_eq!(total.eta_pivots, 10);
        assert_eq!(total.max_eta_chain, 8);
        assert_eq!(total.lu_fill_nnz, 120);
        assert_eq!(total.pricing_fallbacks, 1);
        assert_eq!(total.total_solves(), 17);
    }

    #[test]
    fn engine_counters_reach_warm_stats() {
        // A cold solve must record at least the build factorization and
        // its fill-in; a warm rhs patch keeps accruing on the same
        // workspace.
        let mut ws = SimplexWorkspace::new();
        let mut p = min_max_problem(&[0.0, 0.0]);
        ws.solve(&p);
        let after_cold = ws.stats();
        assert!(after_cold.refactorizations >= 1, "{after_cold:?}");
        assert!(after_cold.lu_fill_nnz >= 3, "{after_cold:?}");
        assert!(after_cold.eta_pivots >= 1, "{after_cold:?}");
        p.set_rhs(1, -1.5);
        ws.solve(&p);
        let after_warm = ws.stats();
        assert!(
            after_warm.refactorizations >= after_cold.refactorizations,
            "{after_warm:?}"
        );
        assert!(after_warm.max_eta_chain >= 1, "{after_warm:?}");
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        // Randomized feasible-by-construction LPs with a sequence of rhs
        // patches: every warm solve must match a fresh cold solve's
        // objective to 1e-9 and return a feasible point.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn warm_matches_cold_across_rhs_patches(
                nv in 1usize..5,
                seed_rows in proptest::collection::vec(
                    (proptest::collection::vec(-5.0f64..5.0, 5), 0.0f64..3.0), 1..6),
                cost in proptest::collection::vec(0.0f64..4.0, 5),
                x0 in proptest::collection::vec(0.0f64..3.0, 5),
                patches in proptest::collection::vec(
                    (0usize..6, 0.0f64..4.0), 1..8),
            ) {
                let mut p = LpProblem::new();
                for &c in cost.iter().take(nv) {
                    p.add_variable(c);
                }
                for (coeffs, slack) in &seed_rows {
                    let row: Vec<(usize, f64)> =
                        (0..nv).map(|i| (i, coeffs[i])).collect();
                    let rhs: f64 =
                        (0..nv).map(|i| coeffs[i] * x0[i]).sum::<f64>() + slack;
                    p.add_constraint(row, ConstraintOp::Le, rhs);
                }
                let mut ws = SimplexWorkspace::new();
                ws.solve(&p);
                for &(row, extra) in &patches {
                    let row = row % seed_rows.len();
                    // Keep the problem feasible: rhs >= the known point's
                    // row value.
                    let base: f64 = (0..nv)
                        .map(|i| seed_rows[row].0[i] * x0[i])
                        .sum();
                    p.set_rhs(row, base + extra);
                    let warm = ws.solve(&p);
                    let cold = solve(&p);
                    match (warm, cold) {
                        (
                            LpOutcome::Optimal { objective: w, solution },
                            LpOutcome::Optimal { objective: c, .. },
                        ) => {
                            prop_assert!((w - c).abs() < 1e-9,
                                "warm {w} != cold {c}");
                            prop_assert!(p.is_feasible(&solution, 1e-6));
                        }
                        (w, c) => prop_assert!(
                            false, "outcome mismatch: warm {w:?} cold {c:?}"),
                    }
                }
                // The sequence must actually exercise the warm path.
                prop_assert!(ws.stats().warm_solves + ws.stats().warm_fallbacks
                    + ws.stats().cold_solves >= patches.len());
            }

            // Randomized *rhs and coefficient* patch chains: the revised
            // warm/refresh paths must match both a fresh revised cold
            // solve and the dense oracle to 1e-9, on every step.
            #[test]
            fn warm_matches_cold_and_dense_across_mixed_patches(
                nv in 1usize..5,
                seed_rows in proptest::collection::vec(
                    (proptest::collection::vec(-5.0f64..5.0, 5), 0.2f64..3.0), 1..6),
                cost in proptest::collection::vec(0.0f64..4.0, 5),
                x0 in proptest::collection::vec(0.0f64..3.0, 5),
                // `var >= 5` encodes "patch a coefficient too" (the
                // vendored proptest tuples stop at four elements).
                patches in proptest::collection::vec(
                    (0usize..6, 0usize..10, -4.0f64..4.0, 0.0f64..4.0),
                    1..8),
            ) {
                let mut p = LpProblem::new();
                for &c in cost.iter().take(nv) {
                    p.add_variable(c);
                }
                for (coeffs, slack) in &seed_rows {
                    let row: Vec<(usize, f64)> =
                        (0..nv).map(|i| (i, coeffs[i])).collect();
                    let rhs: f64 =
                        (0..nv).map(|i| coeffs[i] * x0[i]).sum::<f64>() + slack;
                    p.add_constraint(row, ConstraintOp::Le, rhs);
                }
                let mut ws = SimplexWorkspace::new();
                ws.solve(&p);
                for &(row, var, coeff, extra) in &patches {
                    let row = row % seed_rows.len();
                    let coeff_patch = var >= 5;
                    let var = var % nv;
                    if coeff_patch {
                        p.set_coefficient(row, var, coeff);
                    }
                    // Re-derive a feasible rhs for the (possibly patched)
                    // row so the program stays feasible at x0.
                    let base: f64 = p.constraints()[row]
                        .coeffs
                        .iter()
                        .map(|&(i, a)| a * x0[i])
                        .sum();
                    p.set_rhs(row, base + extra);
                    let warm = ws.solve(&p);
                    let cold = solve(&p);
                    let dense = crate::simplex::solve_dense(&p);
                    match (warm, cold, dense) {
                        (
                            LpOutcome::Optimal { objective: w, solution },
                            LpOutcome::Optimal { objective: c, .. },
                            LpOutcome::Optimal { objective: d, .. },
                        ) => {
                            prop_assert!((w - c).abs() < 1e-9,
                                "warm {w} != cold {c}");
                            prop_assert!((w - d).abs() < 1e-9,
                                "warm {w} != dense oracle {d}");
                            prop_assert!(p.is_feasible(&solution, 1e-6));
                        }
                        (w, c, d) => prop_assert!(
                            false,
                            "outcome mismatch: warm {w:?} cold {c:?} dense {d:?}"),
                    }
                }
                // Every solve lands in exactly one terminal bucket
                // (fallbacks re-run cold and are counted there).
                prop_assert_eq!(ws.stats().total_solves(), patches.len() + 1);
            }
        }
    }
}
