//! Revised simplex with a maintained basis factorization.
//!
//! The production engine behind [`crate::solve`] and
//! [`crate::SimplexWorkspace`]. Where the dense tableau
//! ([`crate::simplex`], kept as the property-tested oracle) rewrites the
//! whole `m x n` matrix on every pivot, the revised method keeps the
//! constraint matrix **immutable and column-sparse** and works through a
//! factorization of the current basis `B`:
//!
//! * a **sparse LU factorization** ([`crate::lu::SparseLu`]: threshold-
//!   Markowitz fill-aware pivoting over column-compressed factors) of
//!   the basis is computed at build time and rebuilt periodically,
//! * each pivot appends a **sparse product-form eta vector** instead of
//!   touching the factorization — `FTRAN` (solve `B w = v`) and `BTRAN`
//!   (solve `B^T y = v`) apply the LU base and then the eta file, with
//!   zero-skips end to end so hyper-sparse right-hand sides and eta
//!   columns cost only their stored nonzeros,
//! * after a dimension-scaled number of etas (or numerical trouble) the basis is
//!   **refactorized** from scratch, which also re-derives the basic
//!   solution from the raw right-hand side and so bounds drift,
//! * pricing recomputes reduced costs from `y = B^{-T} c_B` every
//!   iteration — nothing stale survives a pivot.
//!
//! The payoff is warm restarts: the basis is a *set of column indices*
//! plus a factorization, so a patched problem can re-enter without any
//! saved tableau. Right-hand-side patches re-solve `x_B = B^{-1} b` and
//! repair primal feasibility with dual-simplex pivots; **coefficient
//! patches reload only the column values, refactorize the retained basis
//! and re-optimize from it** — no phase 1, no rebuild (see
//! [`RevisedSimplex::reload_values`] and [`RevisedSimplex::reoptimize`]).
//! When a patch leaves the basis neither primal- nor dual-feasible, an
//! **rhs homotopy** bridges: solve the (primal-feasible by construction)
//! problem with `b' = B max(x_B, 0)`, then walk `b' -> b` with dual
//! pivots from the now dual-feasible optimum.
//!
//! Pricing is **devex** (Forrest's approximate steepest edge): the
//! entering column maximizes `d_j^2 / w_j` over reference-framework
//! weights `w_j` that are updated from the pivot row after every basis
//! change, so the engine steers by expected objective progress per unit
//! step instead of raw reduced cost. The weights survive
//! refactorization (they depend only on the pivot history, not the
//! factorization), are reset to the unit framework at every phase
//! boundary, and hand over to **Bland's rule** after a
//! `stall_threshold`-long run of non-improving pivots (termination on
//! degenerate/cycling programs; counted in
//! [`EngineCounters::pricing_fallbacks`]). The hand-over is
//! *non-sticky*: the first strictly improving pivot returns control to
//! devex, so one degenerate plateau does not condemn the rest of the
//! solve to Bland's slow crawl — each Bland stretch either terminates
//! the phase or improves the objective, and an improved objective can
//! never revisit a vertex, so termination is preserved. Ratio-test
//! near-ties break on the largest pivot magnitude (numerically safest,
//! and a Harris-style escape hatch out of degenerate plateaus) except
//! under Bland's rule, whose termination proof needs the lowest basic
//! index. The two-phase structure bans artificials from re-entering in
//! phase 2, exactly like the dense oracle.

use crate::lu::{SparseLu, PIVOT_MIN};
use crate::problem::{ConstraintOp, LpProblem};
use crate::simplex::{LpOutcome, PhaseResult, SimplexOptions};

/// Eta vectors tolerated before the basis is refactorized. The sparse
/// Markowitz factorization is cheap (near-linear in basis nnz on these
/// programs), so the balance tilts toward frequent refactorization:
/// short eta chains keep every FTRAN/BTRAN hyper-sparse, which is where
/// cold-solve time goes. Swept empirically on the bench min-max
/// programs (limits 8..100): 12–48 is flat-optimal, long chains lose.
fn refactor_limit(m: usize) -> usize {
    (m / 6).clamp(12, 48)
}

/// Devex weights are approximate; long pivot chains can inflate them
/// until the ratio `d_j^2 / w_j` loses all contrast. Past this bound
/// the reference framework is reset to the unit weights.
const DEVEX_WEIGHT_CEILING: f64 = 1e12;

/// Factorization and pricing telemetry accumulated by one engine across
/// its lifetime (cold build, warm re-entries, everything). Drained by
/// [`RevisedSimplex::take_counters`] into
/// [`crate::WarmStats`] so sweep reports can tell *why* a solve was
/// slow: `refactorizations` and `eta_pivots` measure basis churn,
/// `max_eta_chain` the longest product-form file any FTRAN had to walk,
/// `lu_fill_nnz` the worst fill-in a factorization produced, and
/// `pricing_fallbacks` how often devex handed over to Bland's rule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct EngineCounters {
    pub(crate) refactorizations: usize,
    pub(crate) eta_pivots: usize,
    pub(crate) max_eta_chain: usize,
    pub(crate) lu_fill_nnz: usize,
    pub(crate) pricing_fallbacks: usize,
}

/// Solve with default options on the revised engine.
pub fn solve(problem: &LpProblem) -> LpOutcome {
    solve_with(problem, SimplexOptions::default())
}

/// Solve with explicit options on the revised engine.
pub fn solve_with(problem: &LpProblem, options: SimplexOptions) -> LpOutcome {
    match RevisedSimplex::build(problem, options) {
        Some(mut engine) => engine.run(problem),
        // A singular *initial* basis cannot happen (it is a permuted
        // identity), so this is unreachable in practice; report as a
        // numerical iteration-limit rather than panicking.
        None => LpOutcome::IterationLimit { iterations: 0 },
    }
}

/// One product-form update: basis column `row` was replaced, and
/// `B_old^{-1} a_entering` is the eta vector — stored sparse as its
/// pivot-row entry plus the off-pivot nonzeros `nz` (rows ascending).
/// The eta columns of these LPs are as hyper-sparse as the basis
/// itself, so FTRAN/BTRAN walk `nz` instead of a dense length-`m`
/// column.
struct Eta {
    row: usize,
    pivot: f64,
    nz: Vec<(u32, f64)>,
}

/// The revised-simplex engine over one problem's standard form. See the
/// module docs for the algorithm; [`crate::SimplexWorkspace`] keeps one
/// of these alive between solves as the retained basis.
pub(crate) struct RevisedSimplex {
    /// Column-sparse equality-form matrix: `cols[j]` lists the non-zero
    /// `(row, value)` entries of column `j`, rows ascending.
    cols: Vec<Vec<(u32, f64)>>,
    /// Sign-normalized right-hand side.
    b: Vec<f64>,
    m: usize,
    n: usize,
    /// Structural (original) variable count; columns `nv..` are slack,
    /// surplus and artificial.
    nv: usize,
    /// First artificial column.
    pub(crate) artificial_start: usize,
    /// Row normalization signs fixed at the cold build (`-1.0` for rows
    /// flipped to make the original rhs non-negative); value patches are
    /// re-signed with these so the retained layout stays valid.
    signs: Vec<f64>,
    /// Basic variable of each row; `B`'s column `i` is `cols[basis[i]]`.
    pub(crate) basis: Vec<usize>,
    /// Column -> basis row, `usize::MAX` when nonbasic.
    position: Vec<usize>,
    /// Current basic values `x_B = B^{-1} b`, updated per pivot and
    /// recomputed from scratch at every refactorization.
    pub(crate) xb: Vec<f64>,
    lu: SparseLu,
    etas: Vec<Eta>,
    /// Cost vector of the phase currently optimized (length `n`).
    phase_cost: Vec<f64>,
    /// Devex reference-framework weights, one per column. Reset to the
    /// unit framework at each phase boundary, updated per pivot.
    devex: Vec<f64>,
    pub(crate) options: SimplexOptions,
    pub(crate) iterations_used: usize,
    /// Recycled length-`m` buffers (pricing multipliers, pivot
    /// columns): the solve loop allocates nothing in steady state.
    scratch: Vec<Vec<f64>>,
    /// Permutation staging for the sparse LU solves (length `m`).
    ptmp: Vec<f64>,
    /// Recycled sparse eta payloads (retired at refactorization).
    eta_pool: Vec<Vec<(u32, f64)>>,
    counters: EngineCounters,
}

impl RevisedSimplex {
    /// Build the standard form and the initial (unit) basis. The column
    /// layout, row signs and initial basis match the dense oracle's
    /// tableau build exactly. `None` only on a singular initial basis,
    /// which cannot occur (it is a permuted identity).
    pub(crate) fn build(problem: &LpProblem, options: SimplexOptions) -> Option<Self> {
        let m = problem.num_constraints();
        let nv = problem.num_variables();

        struct RowPlan {
            flip: bool,
            op: ConstraintOp,
        }
        let plans: Vec<RowPlan> = problem
            .constraints()
            .iter()
            .map(|c| {
                let flip = c.rhs < 0.0;
                let op = match (c.op, flip) {
                    (ConstraintOp::Le, true) => ConstraintOp::Ge,
                    (ConstraintOp::Ge, true) => ConstraintOp::Le,
                    (op, _) => op,
                };
                RowPlan { flip, op }
            })
            .collect();
        let num_slack = problem
            .constraints()
            .iter()
            .filter(|c| c.op != ConstraintOp::Eq)
            .count();
        let num_artificial = plans.iter().filter(|p| p.op != ConstraintOp::Le).count();
        let n = nv + num_slack + num_artificial;

        let mut cols: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        let mut b = vec![0.0; m];
        let mut basis = vec![usize::MAX; m];
        let mut signs = Vec::with_capacity(m);
        let mut slack_col = nv;
        let mut art_col = nv + num_slack;
        for (i, (c, plan)) in problem.constraints().iter().zip(&plans).enumerate() {
            let sign = if plan.flip { -1.0 } else { 1.0 };
            signs.push(sign);
            for &(var, coeff) in &c.coeffs {
                cols[var].push((i as u32, sign * coeff));
            }
            b[i] = sign * c.rhs;
            match plan.op {
                ConstraintOp::Le => {
                    cols[slack_col].push((i as u32, 1.0));
                    basis[i] = slack_col;
                    slack_col += 1;
                }
                ConstraintOp::Ge => {
                    cols[slack_col].push((i as u32, -1.0)); // surplus
                    slack_col += 1;
                    cols[art_col].push((i as u32, 1.0));
                    basis[i] = art_col;
                    art_col += 1;
                }
                ConstraintOp::Eq => {
                    cols[art_col].push((i as u32, 1.0));
                    basis[i] = art_col;
                    art_col += 1;
                }
            }
        }
        debug_assert_eq!(slack_col, nv + num_slack);
        debug_assert_eq!(art_col, n);

        let mut position = vec![usize::MAX; n];
        for (row, &var) in basis.iter().enumerate() {
            position[var] = row;
        }
        let mut engine = Self {
            cols,
            b,
            m,
            n,
            nv,
            artificial_start: nv + num_slack,
            signs,
            basis,
            position,
            xb: Vec::new(),
            lu: SparseLu::empty(),
            etas: Vec::new(),
            phase_cost: vec![0.0; n],
            devex: vec![1.0; n],
            options,
            iterations_used: 0,
            scratch: Vec::new(),
            ptmp: vec![0.0; m],
            eta_pool: Vec::new(),
            counters: EngineCounters::default(),
        };
        if !engine.refactor() {
            return None;
        }
        Some(engine)
    }

    /// Rebuild the LU factorization from the current basis columns, drop
    /// the eta file, and re-derive `x_B` from the raw rhs (bounding
    /// accumulated drift). `false` when the basis matrix is singular.
    fn refactor(&mut self) -> bool {
        let Some(lu) = SparseLu::factor(&self.cols, &self.basis) else {
            return false;
        };
        self.counters.refactorizations += 1;
        self.counters.lu_fill_nnz = self.counters.lu_fill_nnz.max(lu.fill_nnz());
        self.lu = lu;
        let retired: Vec<Eta> = self.etas.drain(..).collect();
        self.eta_pool.extend(retired.into_iter().map(|e| e.nz));
        self.xb = self.ftran_b();
        true
    }

    /// Drain the accumulated factorization/pricing telemetry (resets the
    /// counters — callers absorb the delta per solve).
    pub(crate) fn take_counters(&mut self) -> EngineCounters {
        std::mem::take(&mut self.counters)
    }

    /// A zeroed length-`m` buffer from the recycle pool.
    fn take_buffer(&mut self) -> Vec<f64> {
        let mut v = self.scratch.pop().unwrap_or_default();
        v.clear();
        v.resize(self.m, 0.0);
        v
    }

    /// `B^{-1} b` for the current rhs.
    fn ftran_b(&mut self) -> Vec<f64> {
        let mut w = self.b.clone();
        self.apply_ftran(&mut w);
        w
    }

    /// FTRAN: overwrite `v` with `B^{-1} v` (sparse LU base, then etas
    /// in application order). Each eta pass walks only the stored
    /// off-pivot nonzeros and skips entirely on a zero pivot-row value.
    fn apply_ftran(&mut self, v: &mut [f64]) {
        self.lu.solve(v, &mut self.ptmp);
        for eta in &self.etas {
            let r = eta.row;
            let wr = v[r] / eta.pivot;
            if wr != 0.0 {
                for &(i, e) in &eta.nz {
                    v[i as usize] -= e * wr;
                }
            }
            v[r] = wr;
        }
    }

    /// BTRAN: overwrite `v` with `B^{-T} v` (etas in reverse, then the
    /// sparse LU base transposed). Each eta contributes one sparse dot
    /// product over its stored nonzeros.
    fn apply_btran(&mut self, v: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let r = eta.row;
            let dot: f64 = eta.nz.iter().map(|&(i, e)| e * v[i as usize]).sum();
            v[r] = (v[r] - dot) / eta.pivot;
        }
        self.lu.solve_transpose(v, &mut self.ptmp);
    }

    /// `B^{-1} a_j` for one column (buffer drawn from the pool).
    fn ftran_col(&mut self, j: usize) -> Vec<f64> {
        let mut w = self.take_buffer();
        for &(r, v) in &self.cols[j] {
            w[r as usize] = v;
        }
        self.apply_ftran(&mut w);
        w
    }

    /// Simplex multipliers `y = B^{-T} c_B` for the current phase cost
    /// (buffer drawn from the pool; return it with `retire_buffer`).
    fn multipliers(&mut self) -> Vec<f64> {
        let mut y = self.take_buffer();
        for (yi, &var) in y.iter_mut().zip(&self.basis) {
            *yi = self.phase_cost[var];
        }
        self.apply_btran(&mut y);
        y
    }

    /// Return a pooled buffer.
    fn retire_buffer(&mut self, v: Vec<f64>) {
        self.scratch.push(v);
    }

    /// Reduced cost `d_j = c_j - y · a_j` of one column.
    fn reduced_cost(&self, j: usize, y: &[f64]) -> f64 {
        let mut d = self.phase_cost[j];
        for &(r, v) in &self.cols[j] {
            d -= y[r as usize] * v;
        }
        d
    }

    /// Execute one basis change: entering column `q` replaces the basic
    /// variable of row `r`, with `w = B^{-1} a_q` already computed.
    /// Updates `x_B`, the basis maps and the eta file, and refactorizes
    /// on schedule. `false` on a numerically unusable pivot.
    fn pivot(&mut self, r: usize, q: usize, w: Vec<f64>) -> bool {
        if w[r].abs() <= PIVOT_MIN {
            return false;
        }
        let theta = self.xb[r] / w[r];
        for (i, (xi, &wi)) in self.xb.iter_mut().zip(&w).enumerate() {
            if i != r {
                *xi -= theta * wi;
            }
        }
        self.xb[r] = theta;
        self.position[self.basis[r]] = usize::MAX;
        self.basis[r] = q;
        self.position[q] = r;
        self.push_eta(r, w);
        self.counters.eta_pivots += 1;
        self.counters.max_eta_chain = self.counters.max_eta_chain.max(self.etas.len());
        if self.etas.len() >= refactor_limit(self.m) && !self.refactor() {
            return false;
        }
        true
    }

    /// Compress the dense pivot column `w = B^{-1} a_entering` into a
    /// sparse eta (payload recycled through the pool) and retire the
    /// dense buffer back to scratch.
    fn push_eta(&mut self, r: usize, w: Vec<f64>) {
        let mut nz = self.eta_pool.pop().unwrap_or_default();
        nz.clear();
        for (i, &wi) in w.iter().enumerate() {
            if i != r && wi != 0.0 {
                nz.push((i as u32, wi));
            }
        }
        self.etas.push(Eta {
            row: r,
            pivot: w[r],
            nz,
        });
        self.scratch.push(w);
    }

    /// Current phase objective `c_B · x_B`.
    fn current_objective(&self) -> f64 {
        self.basis
            .iter()
            .zip(&self.xb)
            .map(|(&var, &x)| self.phase_cost[var] * x)
            .sum()
    }

    /// One primal phase: pivot until optimal, unbounded or the budget
    /// runs out. Devex pricing (entering column maximizes `d_j^2 / w_j`
    /// over the reference-framework weights, reset to the unit
    /// framework at the start of the phase) with a non-sticky Bland
    /// fallback after a stall; ratio-test near-ties break on the
    /// largest pivot magnitude, or the lowest basic index while Bland
    /// is engaged. `ban_artificials` excludes artificial columns from
    /// entering (phase 2 and every warm path).
    pub(crate) fn optimize(&mut self, ban_artificials: bool) -> PhaseResult {
        let tol = self.options.tolerance;
        let limit = if ban_artificials {
            self.artificial_start
        } else {
            self.n
        };
        self.reset_devex();
        let mut stall = 0usize;
        let mut bland = false;
        let mut last_obj = f64::INFINITY;
        loop {
            if self.iterations_used >= self.options.max_iterations {
                return PhaseResult::IterationLimit;
            }
            // Entering column: lowest eligible index under Bland,
            // otherwise the devex winner (ties to the lowest index,
            // keeping the pick deterministic).
            let y = self.multipliers();
            let mut entering: Option<usize> = None;
            let mut best_score = 0.0f64;
            for j in 0..limit {
                if self.position[j] != usize::MAX {
                    continue;
                }
                let dj = self.reduced_cost(j, &y);
                if dj < -tol {
                    if bland {
                        entering = Some(j);
                        break;
                    }
                    let score = dj * dj / self.devex[j];
                    if score > best_score {
                        best_score = score;
                        entering = Some(j);
                    }
                }
            }
            self.retire_buffer(y);
            let Some(q) = entering else {
                return PhaseResult::Optimal;
            };
            // Ratio test. Near-tied ratios break on the largest pivot
            // magnitude (numerically safest and the escape hatch out of
            // degenerate plateaus), except under Bland's rule, whose
            // termination proof needs the lowest basic index.
            let w = self.ftran_col(q);
            let mut pivot_row: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for (i, &wi) in w.iter().enumerate() {
                if wi > tol {
                    let ratio = self.xb[i] / wi;
                    let better = ratio < best_ratio - tol
                        || (ratio < best_ratio + tol
                            && pivot_row.is_none_or(|r| {
                                if bland {
                                    self.basis[i] < self.basis[r]
                                } else {
                                    wi > w[r]
                                }
                            }));
                    if better {
                        best_ratio = ratio;
                        pivot_row = Some(i);
                    }
                }
            }
            let Some(r) = pivot_row else {
                return PhaseResult::Unbounded;
            };
            if !bland {
                self.update_devex(r, q, &w, limit);
            }
            if !self.pivot(r, q, w) {
                return PhaseResult::IterationLimit;
            }
            self.iterations_used += 1;

            let current = self.current_objective();
            if current < last_obj - tol {
                stall = 0;
                last_obj = current;
                bland = false;
            } else {
                stall += 1;
                if stall >= self.options.stall_threshold && !bland {
                    bland = true;
                    self.counters.pricing_fallbacks += 1;
                }
            }
        }
    }

    /// Reset the devex reference framework to unit weights (every column
    /// is its own reference). Done at each phase boundary: the weights
    /// approximate steepest-edge norms relative to the basis the
    /// framework was anchored at, and a phase switch re-anchors.
    fn reset_devex(&mut self) {
        self.devex.iter_mut().for_each(|w| *w = 1.0);
    }

    /// Devex weight update for the pivot `(r, q)` with pivot column
    /// `w = B^{-1} a_q` (pre-pivot basis). Using the pivot row
    /// `rho = B^{-T} e_r`, every nonbasic column's weight becomes
    /// `max(w_j, (alpha_j / alpha_q)^2 w_q)` where `alpha_j = rho · a_j`
    /// (Forrest–Goldfarb reference-framework recurrence), and the
    /// leaving variable re-enters the nonbasic pool with
    /// `max(w_q / alpha_q^2, 1)`. Weights only ever grow within a
    /// framework; past [`DEVEX_WEIGHT_CEILING`] the framework is
    /// re-anchored to unit weights.
    fn update_devex(&mut self, r: usize, q: usize, w: &[f64], limit: usize) {
        let alpha_q = w[r];
        if alpha_q.abs() <= PIVOT_MIN {
            return;
        }
        let wq = self.devex[q].max(1.0);
        let scale = wq / (alpha_q * alpha_q);
        let mut rho = self.take_buffer();
        rho[r] = 1.0;
        self.apply_btran(&mut rho);
        let mut peak = 0.0f64;
        for j in 0..limit {
            if self.position[j] != usize::MAX || j == q {
                continue;
            }
            let mut alpha = 0.0;
            for &(row, v) in &self.cols[j] {
                alpha += rho[row as usize] * v;
            }
            if alpha != 0.0 {
                let candidate = alpha * alpha * scale;
                if candidate > self.devex[j] {
                    self.devex[j] = candidate;
                }
            }
            peak = peak.max(self.devex[j]);
        }
        self.retire_buffer(rho);
        // The leaving variable joins the nonbasic pool.
        self.devex[self.basis[r]] = scale.max(1.0);
        if peak > DEVEX_WEIGHT_CEILING {
            self.reset_devex();
        }
    }

    /// Dual-simplex pivoting from a dual-feasible basis towards primal
    /// feasibility: leave on the most negative `x_B` row, enter on the
    /// column minimizing `d_j / -alpha_j` over negative pivot
    /// candidates (`alpha = row r of B^{-1} A`, obtained via BTRAN).
    /// Artificials never enter. `false` when blocked (dual ray, bad
    /// pivot, or the pivot budget ran out) — the caller falls back.
    pub(crate) fn dual_optimize(&mut self, max_pivots: usize) -> bool {
        let tol = self.options.tolerance;
        // Primal-feasibility threshold for the leaving test: looser than
        // the pivot tolerance, like every practical dual simplex — after
        // an aggressive coefficient patch, roundoff alone can push a
        // genuinely-tight basic value a few 1e-9 below zero, and trying
        // to "repair" that phantom infeasibility dead-ends in a spurious
        // dual ray (no eligible pivot). End-of-solve verification still
        // checks the solution against the problem at 1e-6.
        let feas = tol.max(1e-7);
        let mut pivots = 0usize;
        loop {
            // Leaving row: most negative basic value.
            let mut leaving: Option<(usize, f64)> = None;
            for (i, &xi) in self.xb.iter().enumerate() {
                if xi < -feas && leaving.is_none_or(|(_, best)| xi < best) {
                    leaving = Some((i, xi));
                }
            }
            let Some((r, _)) = leaving else {
                return true;
            };
            if pivots >= max_pivots {
                return false;
            }
            // Row r of B^{-1} A: rho = B^{-T} e_r, alpha_j = rho · a_j.
            let mut rho = self.take_buffer();
            rho[r] = 1.0;
            self.apply_btran(&mut rho);
            let y = self.multipliers();
            let mut entering: Option<(usize, f64)> = None;
            for j in 0..self.artificial_start {
                if self.position[j] != usize::MAX {
                    continue;
                }
                let mut alpha = 0.0;
                for &(row, v) in &self.cols[j] {
                    alpha += rho[row as usize] * v;
                }
                if alpha < -tol {
                    let ratio = self.reduced_cost(j, &y) / -alpha;
                    if entering.is_none_or(|(_, best)| ratio < best - tol) {
                        entering = Some((j, ratio));
                    }
                }
            }
            self.retire_buffer(rho);
            self.retire_buffer(y);
            let Some((q, _)) = entering else {
                return false;
            };
            let w = self.ftran_col(q);
            if !self.pivot(r, q, w) {
                return false;
            }
            self.iterations_used += 1;
            pivots += 1;
        }
    }

    /// Install a phase cost vector: zero everywhere except `values` on
    /// the leading columns.
    fn set_phase_cost(&mut self, values: &[f64]) {
        self.phase_cost.iter_mut().for_each(|c| *c = 0.0);
        self.phase_cost[..values.len()].copy_from_slice(values);
    }

    /// Install the phase-1 cost (1 on artificials).
    fn set_phase1_cost(&mut self) {
        for (j, c) in self.phase_cost.iter_mut().enumerate() {
            *c = if j >= self.artificial_start { 1.0 } else { 0.0 };
        }
    }

    /// Full two-phase cold solve, mirroring the dense oracle's `run`.
    pub(crate) fn run(&mut self, problem: &LpProblem) -> LpOutcome {
        let tol = self.options.tolerance;
        if self.artificial_start < self.n {
            self.set_phase1_cost();
            match self.optimize(false) {
                PhaseResult::Optimal => {}
                // Phase 1 is bounded below by 0; "unbounded" means
                // numerical trouble. Report as an iteration limit.
                PhaseResult::Unbounded | PhaseResult::IterationLimit => {
                    return LpOutcome::IterationLimit {
                        iterations: self.iterations_used,
                    }
                }
            }
            if self.current_objective() > tol.max(1e-7) {
                return LpOutcome::Infeasible;
            }
            self.drive_out_artificials();
        }

        self.set_phase_cost(problem.objective());
        match self.optimize(true) {
            PhaseResult::Optimal => {
                let solution = self.extract_solution(problem.num_variables());
                LpOutcome::Optimal {
                    objective: problem.objective_value(&solution),
                    solution,
                }
            }
            PhaseResult::Unbounded => LpOutcome::Unbounded,
            PhaseResult::IterationLimit => LpOutcome::IterationLimit {
                iterations: self.iterations_used,
            },
        }
    }

    /// Pivot any artificial still basic (at value ~0) out of the basis
    /// when a structural/slack pivot exists in its row; rows without one
    /// are redundant and the artificial stays harmlessly basic at 0
    /// (phase 2 bans artificial entering columns).
    fn drive_out_artificials(&mut self) {
        let tol = self.options.tolerance;
        for r in 0..self.m {
            if self.basis[r] < self.artificial_start {
                continue;
            }
            let mut rho = self.take_buffer();
            rho[r] = 1.0;
            self.apply_btran(&mut rho);
            let candidate = (0..self.artificial_start)
                .filter(|&j| self.position[j] == usize::MAX)
                .find(|&j| {
                    let mut alpha = 0.0;
                    for &(row, v) in &self.cols[j] {
                        alpha += rho[row as usize] * v;
                    }
                    alpha.abs() > tol
                });
            self.retire_buffer(rho);
            if let Some(q) = candidate {
                let w = self.ftran_col(q);
                // The pivot element may still be tiny after drift; leave
                // the artificial in place in that case (harmless at 0).
                if w[r].abs() > tol {
                    self.pivot(r, q, w);
                }
            }
        }
    }

    /// Read the current basic solution (non-basic variables are zero).
    pub(crate) fn extract_solution(&self, num_variables: usize) -> Vec<f64> {
        let mut solution = vec![0.0; num_variables];
        for (row, &var) in self.basis.iter().enumerate() {
            if var < solution.len() {
                solution[var] = self.xb[row].max(0.0);
            }
        }
        solution
    }

    /// Install a patched rhs (re-signed with the retained row signs) and
    /// recompute `x_B`. Used by the rhs-only warm path; the basis and
    /// column values are untouched.
    pub(crate) fn install_rhs(&mut self, problem: &LpProblem) {
        for (i, c) in problem.constraints().iter().enumerate() {
            self.b[i] = self.signs[i] * c.rhs;
        }
        self.xb = self.ftran_b();
    }

    /// Reload the structural column values and rhs from a
    /// pattern-identical problem (the coefficient-patch warm path),
    /// keeping the basis. The factorization only stale-dates where a
    /// **basic** column's values changed; when few did (a capacity-model
    /// patch touches one shared column), each is absorbed as a rank-1
    /// **product-form update** — one FTRAN per changed basic column —
    /// instead of an `O(m^3)` refactorization. `false` when the retained
    /// basis went singular under the new values (the caller falls back
    /// to a cold start).
    pub(crate) fn reload_values(&mut self, problem: &LpProblem) -> bool {
        debug_assert_eq!(problem.num_constraints(), self.m);
        debug_assert_eq!(problem.num_variables(), self.nv);
        // Stream the new values over the retained sparsity pattern,
        // tracking which basic columns actually changed.
        let mut cursor = vec![0usize; self.nv];
        let mut changed_basic: Vec<usize> = Vec::new();
        for (i, c) in problem.constraints().iter().enumerate() {
            let sign = self.signs[i];
            for &(var, coeff) in &c.coeffs {
                let entry = &mut self.cols[var][cursor[var]];
                debug_assert_eq!(entry.0 as usize, i, "pattern mismatch");
                cursor[var] += 1;
                let value = sign * coeff;
                if entry.1.to_bits() != value.to_bits() {
                    entry.1 = value;
                    if self.position[var] != usize::MAX {
                        changed_basic.push(var);
                    }
                }
            }
            self.b[i] = sign * c.rhs;
        }
        changed_basic.sort_unstable();
        changed_basic.dedup();
        // Few changed basic columns: absorb each as an eta update
        // (`B_new = B_old * E`, `E`'s column `position[var]` being
        // `B_old^{-1} a_var_new`). Many (a workload patch rewrites every
        // volume): a fresh factorization is cheaper.
        let budget = refactor_limit(self.m).saturating_sub(self.etas.len());
        if changed_basic.len() <= 8.min(budget) {
            for var in changed_basic {
                let pos = self.position[var];
                let w = self.ftran_col(var);
                if w[pos].abs() <= PIVOT_MIN {
                    self.scratch.push(w);
                    return self.refactor();
                }
                self.push_eta(pos, w);
            }
            self.xb = self.ftran_b();
            true
        } else {
            self.refactor()
        }
    }

    /// Re-optimize from the current basis with the phase-2 objective
    /// installed, choosing the cheapest repair that applies:
    ///
    /// 1. primal feasible — a plain primal polish,
    /// 2. dual feasible — dual-simplex repair, then the polish,
    /// 3. neither — the rhs homotopy: solve with `b' = B max(x_B, 0)`
    ///    (primal feasible at the current basis by construction), then
    ///    walk back to the true `b` with dual pivots from the bridge
    ///    optimum, which *is* dual feasible.
    ///
    /// `false` means the basis could not be reused (the caller falls
    /// back to a cold start, so no outcome is ever lost).
    pub(crate) fn reoptimize(&mut self, objective: &[f64]) -> bool {
        let tol = self.options.tolerance;
        self.set_phase_cost(objective);
        self.iterations_used = 0;
        let dual_budget = 4 * self.m + 64;

        if self.xb.iter().all(|&x| x >= -tol) {
            return matches!(self.optimize(true), PhaseResult::Optimal);
        }
        if self.dual_feasible() {
            // A blocked dual repair (budget burnt with large
            // infeasibility left — measured on workload-model switches,
            // whose patches move the whole residual vector) is a basis
            // that is genuinely far from re-usable: the homotopy's
            // walk-back would burn the same budget again, so fall back
            // to a cold start instead.
            return self.dual_optimize(dual_budget)
                && matches!(self.optimize(true), PhaseResult::Optimal);
        }

        // Homotopy bridge.
        let true_b = self.b.clone();
        let target: Vec<f64> = self.xb.iter().map(|&x| x.max(0.0)).collect();
        let mut bridge = vec![0.0; self.m];
        for (i, &var) in self.basis.iter().enumerate() {
            let x = target[i];
            if x != 0.0 {
                for &(r, v) in &self.cols[var] {
                    bridge[r as usize] += v * x;
                }
            }
        }
        self.b = bridge;
        self.xb = target;
        let bridged = matches!(self.optimize(true), PhaseResult::Optimal);
        self.b = true_b;
        self.xb = self.ftran_b();
        if !bridged {
            return false;
        }
        self.dual_optimize(dual_budget) && matches!(self.optimize(true), PhaseResult::Optimal)
    }

    /// Whether every non-artificial nonbasic column prices out
    /// non-negative under the current phase cost.
    fn dual_feasible(&mut self) -> bool {
        let tol = self.options.tolerance;
        let y = self.multipliers();
        let ok = (0..self.artificial_start)
            .filter(|&j| self.position[j] == usize::MAX)
            .all(|j| self.reduced_cost(j, &y) >= -tol);
        self.retire_buffer(y);
        ok
    }

    /// Whether an artificial variable is basic at a meaningfully
    /// positive level — the retained basis cannot represent the patched
    /// problem, and the warm result must be discarded.
    pub(crate) fn artificial_still_basic(&self) -> bool {
        let feas_tol = self.options.tolerance.max(1e-7);
        self.basis
            .iter()
            .zip(&self.xb)
            .any(|(&var, &x)| var >= self.artificial_start && x > feas_tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintOp, LpProblem};

    fn assert_optimal(outcome: &LpOutcome, expect_obj: f64, tol: f64) -> Vec<f64> {
        match outcome {
            LpOutcome::Optimal {
                objective,
                solution,
            } => {
                assert!(
                    (objective - expect_obj).abs() < tol,
                    "objective {objective} != {expect_obj}"
                );
                solution.clone()
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn simple_le_problem() {
        let mut p = LpProblem::new();
        let x = p.add_variable(-1.0);
        let y = p.add_variable(-2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
        p.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 2.0);
        let sol = assert_optimal(&solve(&p), -8.0, 1e-7);
        assert!((sol[0] - 0.0).abs() < 1e-7);
        assert!((sol[1] - 4.0).abs() < 1e-7);
    }

    #[test]
    fn equality_and_ge() {
        let mut p = LpProblem::new();
        let x = p.add_variable(1.0);
        let y = p.add_variable(1.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 3.0);
        p.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 1.0);
        let sol = assert_optimal(&solve(&p), 3.0, 1e-7);
        assert!(p.is_feasible(&sol, 1e-7));
    }

    #[test]
    fn infeasible_detected() {
        let mut p = LpProblem::new();
        let x = p.add_variable(1.0);
        p.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 1.0);
        p.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 2.0);
        assert_eq!(solve(&p), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = LpProblem::new();
        let x = p.add_variable(-1.0);
        p.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 1.0);
        assert_eq!(solve(&p), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        let mut p = LpProblem::new();
        let x = p.add_variable(1.0);
        p.add_constraint(vec![(x, -1.0)], ConstraintOp::Le, -3.0);
        let sol = assert_optimal(&solve(&p), 3.0, 1e-7);
        assert!((sol[0] - 3.0).abs() < 1e-7);
    }

    #[test]
    fn min_max_ratio_shape() {
        let mut p = LpProblem::new();
        let t = p.add_variable(1.0);
        let x1 = p.add_variable(0.0);
        let x2 = p.add_variable(0.0);
        p.add_constraint(vec![(x1, 1.0), (x2, 1.0)], ConstraintOp::Eq, 1.0);
        p.add_constraint(vec![(x1, 5.0), (t, -10.0)], ConstraintOp::Le, 0.0);
        p.add_constraint(vec![(x2, 5.0), (t, -2.0)], ConstraintOp::Le, 0.0);
        let sol = assert_optimal(&solve(&p), 5.0 / 12.0, 1e-7);
        assert!((sol[1] - 5.0 / 6.0).abs() < 1e-6);
        assert!((sol[2] - 1.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn redundant_equalities_ok() {
        let mut p = LpProblem::new();
        let x = p.add_variable(1.0);
        let y = p.add_variable(3.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 2.0);
        let sol = assert_optimal(&solve(&p), 2.0, 1e-7);
        assert!((sol[0] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn zero_constraint_problem() {
        let mut p = LpProblem::new();
        let _x = p.add_variable(1.0);
        let sol = assert_optimal(&solve(&p), 0.0, 1e-9);
        assert_eq!(sol.len(), 1);
    }

    #[test]
    fn degenerate_problem_terminates() {
        let mut p = LpProblem::new();
        let x = p.add_variable(-1.0);
        let y = p.add_variable(-1.0);
        p.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 0.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 0.0);
        p.add_constraint(vec![(x, 2.0), (y, 1.0)], ConstraintOp::Le, 0.0);
        let sol = assert_optimal(&solve(&p), 0.0, 1e-7);
        assert!(p.is_feasible(&sol, 1e-7));
    }

    /// Beale's classic cycling example: pure Dantzig pricing with naive
    /// tie-breaking loops forever at the degenerate origin. The stall
    /// detector must hand over to Bland's rule and terminate at the true
    /// optimum (-1/20).
    #[test]
    fn beale_cycling_example_terminates() {
        let mut p = LpProblem::new();
        let x1 = p.add_variable(-0.75);
        let x2 = p.add_variable(150.0);
        let x3 = p.add_variable(-0.02);
        let x4 = p.add_variable(6.0);
        p.add_constraint(
            vec![(x1, 0.25), (x2, -60.0), (x3, -1.0 / 25.0), (x4, 9.0)],
            ConstraintOp::Le,
            0.0,
        );
        p.add_constraint(
            vec![(x1, 0.5), (x2, -90.0), (x3, -1.0 / 50.0), (x4, 3.0)],
            ConstraintOp::Le,
            0.0,
        );
        p.add_constraint(vec![(x3, 1.0)], ConstraintOp::Le, 1.0);
        let sol = assert_optimal(&solve(&p), -0.05, 1e-9);
        assert!(p.is_feasible(&sol, 1e-9));
    }

    /// A degenerate program forced through an aggressive stall threshold
    /// so Bland's rule engages almost immediately — termination and the
    /// optimum must be unaffected.
    #[test]
    fn blands_rule_engages_on_degenerate_program() {
        // x = y is forced by two opposing rows both active at the
        // degenerate origin; the optimum sits at (1, 1).
        let mut p = LpProblem::new();
        let x = p.add_variable(-1.0);
        let y = p.add_variable(-1.0);
        p.add_constraint(vec![(x, 1.0), (y, -1.0)], ConstraintOp::Le, 0.0);
        p.add_constraint(vec![(x, -1.0), (y, 1.0)], ConstraintOp::Le, 0.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 2.0);
        let options = SimplexOptions {
            stall_threshold: 1,
            ..SimplexOptions::default()
        };
        let outcome = solve_with(&p, options);
        let sol = assert_optimal(&outcome, -2.0, 1e-7);
        assert!(p.is_feasible(&sol, 1e-7));
    }

    /// Long pivot chains cross the eta-file refactorization limit; the
    /// result must be unaffected.
    #[test]
    fn refactorization_preserves_results() {
        // A transport-like chain with enough pivots to trip REFACTOR_LIMIT.
        let stages = 60usize;
        let mut p = LpProblem::new();
        let vars: Vec<usize> = (0..stages)
            .map(|s| p.add_variable(1.0 + (s % 7) as f64 * 0.25))
            .collect();
        for s in 0..stages {
            p.add_constraint(
                if s == 0 {
                    vec![(vars[0], 1.0)]
                } else {
                    vec![(vars[s - 1], 0.5), (vars[s], 1.0)]
                },
                ConstraintOp::Ge,
                1.0 + (s % 3) as f64,
            );
        }
        let revised = solve(&p);
        let dense = crate::simplex::solve_dense(&p);
        match (&revised, &dense) {
            (
                LpOutcome::Optimal {
                    objective: r,
                    solution,
                },
                LpOutcome::Optimal { objective: d, .. },
            ) => {
                assert!((r - d).abs() < 1e-9, "revised {r} != dense {d}");
                assert!(p.is_feasible(solution, 1e-6));
            }
            other => panic!("expected both optimal, got {other:?}"),
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        // Revised vs dense on random feasible-by-construction LPs: the
        // dense tableau is the oracle; objectives must agree to 1e-9.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn revised_matches_dense_oracle(
                nv in 1usize..5,
                seed_rows in proptest::collection::vec(
                    (proptest::collection::vec(-5.0f64..5.0, 5), 0.0f64..3.0), 1..6),
                cost in proptest::collection::vec(0.0f64..4.0, 5),
                x0 in proptest::collection::vec(0.0f64..3.0, 5),
            ) {
                let mut p = LpProblem::new();
                for &c in cost.iter().take(nv) {
                    p.add_variable(c);
                }
                for (coeffs, slack) in &seed_rows {
                    let row: Vec<(usize, f64)> =
                        (0..nv).map(|i| (i, coeffs[i])).collect();
                    let rhs: f64 =
                        (0..nv).map(|i| coeffs[i] * x0[i]).sum::<f64>() + slack;
                    p.add_constraint(row, ConstraintOp::Le, rhs);
                }
                match (solve(&p), crate::simplex::solve_dense(&p)) {
                    (
                        LpOutcome::Optimal { objective: r, solution },
                        LpOutcome::Optimal { objective: d, .. },
                    ) => {
                        prop_assert!((r - d).abs() < 1e-9,
                            "revised {r} != dense {d}");
                        prop_assert!(p.is_feasible(&solution, 1e-6));
                    }
                    other => prop_assert!(false, "outcome mismatch: {other:?}"),
                }
            }

            // Mixed-operator programs around a known interior point: the
            // two engines must agree on the outcome class and, when
            // optimal, on the objective.
            #[test]
            fn revised_matches_dense_on_mixed_ops(
                nv in 1usize..4,
                rows in proptest::collection::vec(
                    (proptest::collection::vec(-3.0f64..3.0, 4), 0usize..3, 0.0f64..2.0),
                    1..5),
                cost in proptest::collection::vec(0.0f64..3.0, 4),
                x0 in proptest::collection::vec(0.2f64..2.0, 4),
            ) {
                let mut p = LpProblem::new();
                for &c in cost.iter().take(nv) {
                    p.add_variable(c);
                }
                for (coeffs, op, slack) in &rows {
                    let row: Vec<(usize, f64)> =
                        (0..nv).map(|i| (i, coeffs[i])).collect();
                    let at_x0: f64 = (0..nv).map(|i| coeffs[i] * x0[i]).sum();
                    // Keep x0 feasible under every operator choice.
                    let (op, rhs) = match op {
                        0 => (ConstraintOp::Le, at_x0 + slack),
                        1 => (ConstraintOp::Ge, at_x0 - slack),
                        _ => (ConstraintOp::Eq, at_x0),
                    };
                    p.add_constraint(row, op, rhs);
                }
                match (solve(&p), crate::simplex::solve_dense(&p)) {
                    (
                        LpOutcome::Optimal { objective: r, solution },
                        LpOutcome::Optimal { objective: d, .. },
                    ) => {
                        prop_assert!((r - d).abs() < 1e-9,
                            "revised {r} != dense {d}");
                        prop_assert!(p.is_feasible(&solution, 1e-6));
                    }
                    (LpOutcome::Infeasible, LpOutcome::Infeasible)
                    | (LpOutcome::Unbounded, LpOutcome::Unbounded) => {}
                    other => prop_assert!(false, "outcome mismatch: {other:?}"),
                }
            }

            // Degenerate-vertex programs: every constraint is active at
            // the origin (rhs 0), so the first vertex is maximally
            // degenerate and ties riddle the ratio test — exactly where
            // devex-era cycling bugs would live. The engine must
            // terminate and agree with the dense oracle. Bounding rows
            // keep the program from being unbounded in most draws;
            // when it is anyway, the engines must agree on that too.
            #[test]
            fn devex_terminates_on_degenerate_vertices(
                nv in 2usize..5,
                zero_rows in proptest::collection::vec(
                    (proptest::collection::vec(-3.0f64..3.0, 5), 0usize..2), 2..7),
                cost in proptest::collection::vec(-2.0f64..2.0, 5),
                bound in 0.5f64..4.0,
            ) {
                let mut p = LpProblem::new();
                for &c in cost.iter().take(nv) {
                    p.add_variable(c);
                }
                // Active-at-origin rows: `a·x <= 0` or `a·x >= 0`.
                for (coeffs, op) in &zero_rows {
                    let row: Vec<(usize, f64)> =
                        (0..nv).map(|i| (i, coeffs[i])).collect();
                    let op = if *op == 0 {
                        ConstraintOp::Le
                    } else {
                        ConstraintOp::Ge
                    };
                    p.add_constraint(row, op, 0.0);
                }
                // A box keeps the feasible cone bounded.
                p.add_constraint(
                    (0..nv).map(|i| (i, 1.0)).collect::<Vec<_>>(),
                    ConstraintOp::Le,
                    bound,
                );
                match (solve(&p), crate::simplex::solve_dense(&p)) {
                    (
                        LpOutcome::Optimal { objective: r, solution },
                        LpOutcome::Optimal { objective: d, .. },
                    ) => {
                        prop_assert!((r - d).abs() < 1e-9,
                            "revised {r} != dense {d}");
                        prop_assert!(p.is_feasible(&solution, 1e-6));
                    }
                    (LpOutcome::Infeasible, LpOutcome::Infeasible)
                    | (LpOutcome::Unbounded, LpOutcome::Unbounded) => {}
                    other => prop_assert!(false, "outcome mismatch: {other:?}"),
                }
            }

            // The same degenerate family with `stall_threshold: 1`, so
            // the devex-to-Bland hand-over fires on the very first
            // non-improving pivot: the fallback path itself must
            // terminate at the oracle's optimum.
            #[test]
            fn bland_fallback_matches_dense_on_degenerate_vertices(
                nv in 2usize..4,
                zero_rows in proptest::collection::vec(
                    (proptest::collection::vec(-2.0f64..2.0, 4), 0usize..2), 2..6),
                cost in proptest::collection::vec(-2.0f64..2.0, 4),
            ) {
                let mut p = LpProblem::new();
                for &c in cost.iter().take(nv) {
                    p.add_variable(c);
                }
                for (coeffs, op) in &zero_rows {
                    let row: Vec<(usize, f64)> =
                        (0..nv).map(|i| (i, coeffs[i])).collect();
                    let op = if *op == 0 {
                        ConstraintOp::Le
                    } else {
                        ConstraintOp::Ge
                    };
                    p.add_constraint(row, op, 0.0);
                }
                p.add_constraint(
                    (0..nv).map(|i| (i, 1.0)).collect::<Vec<_>>(),
                    ConstraintOp::Le,
                    1.0,
                );
                let options = SimplexOptions {
                    stall_threshold: 1,
                    ..SimplexOptions::default()
                };
                match (solve_with(&p, options), crate::simplex::solve_dense(&p)) {
                    (
                        LpOutcome::Optimal { objective: r, solution },
                        LpOutcome::Optimal { objective: d, .. },
                    ) => {
                        prop_assert!((r - d).abs() < 1e-9,
                            "revised {r} != dense {d}");
                        prop_assert!(p.is_feasible(&solution, 1e-6));
                    }
                    (LpOutcome::Infeasible, LpOutcome::Infeasible)
                    | (LpOutcome::Unbounded, LpOutcome::Unbounded) => {}
                    other => prop_assert!(false, "outcome mismatch: {other:?}"),
                }
            }
        }
    }
}
