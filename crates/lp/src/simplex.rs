//! Two-phase dense primal simplex — the property-tested **oracle**.
//!
//! The production engine is the revised simplex in [`crate::revised`]
//! (maintained basis factorization, warm restarts); this module keeps
//! the textbook full-tableau method as an independent reference
//! implementation that the revised path is proptested against
//! ([`solve_dense`]). Hardened for the problems this workspace
//! generates:
//!
//! * rows are normalized so every right-hand side is non-negative,
//! * phase 1 minimizes the sum of artificial variables to find a basic
//!   feasible solution (or prove infeasibility),
//! * phase 2 minimizes the real objective,
//! * **Dantzig pricing** (most negative reduced cost) runs by default and
//!   the solver switches to **Bland's rule** after a stall, so degenerate
//!   problems cannot cycle,
//! * an iteration cap turns pathological inputs into an explicit
//!   [`LpOutcome::IterationLimit`] instead of a hang.

use crate::problem::{ConstraintOp, LpProblem};

/// Solver knobs.
#[derive(Debug, Clone, Copy)]
pub struct SimplexOptions {
    /// Hard cap on total pivots across both phases.
    pub max_iterations: usize,
    /// Numerical tolerance for reduced costs, pivots and feasibility.
    pub tolerance: f64,
    /// Consecutive non-improving pivots before switching to Bland's rule.
    pub stall_threshold: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        Self {
            max_iterations: 200_000,
            tolerance: 1e-9,
            stall_threshold: 64,
        }
    }
}

/// Result of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// Optimum found.
    Optimal {
        /// Minimal objective value.
        objective: f64,
        /// Optimal assignment of the problem's variables.
        solution: Vec<f64>,
    },
    /// No feasible point exists.
    Infeasible,
    /// Objective unbounded below over the feasible region.
    Unbounded,
    /// Pivot cap exhausted before convergence.
    IterationLimit {
        /// Pivots consumed before the solver gave up.
        iterations: usize,
    },
}

/// Solve with default options on the dense oracle path.
pub fn solve_dense(problem: &LpProblem) -> LpOutcome {
    solve_dense_with(problem, SimplexOptions::default())
}

/// Solve with explicit options on the dense oracle path.
pub fn solve_dense_with(problem: &LpProblem, options: SimplexOptions) -> LpOutcome {
    let mut tableau = Tableau::build(problem, options);
    tableau.run(problem)
}

pub(crate) struct Tableau {
    /// Constraint matrix, row-major, `m x n`.
    pub(crate) a: Vec<f64>,
    /// Right-hand sides (kept non-negative by the build).
    pub(crate) b: Vec<f64>,
    /// Reduced-cost row for the current phase.
    pub(crate) d: Vec<f64>,
    /// Basic variable of each row.
    pub(crate) basis: Vec<usize>,
    pub(crate) m: usize,
    pub(crate) n: usize,
    /// Index of the first artificial column (artificials occupy
    /// `artificial_start..n`).
    pub(crate) artificial_start: usize,
    /// Cost vector of the phase currently being optimized (used to
    /// recompute the phase objective `c_B^T b` exactly).
    pub(crate) phase_cost: Option<Vec<f64>>,
    pub(crate) options: SimplexOptions,
    pub(crate) iterations_used: usize,
}

impl Tableau {
    pub(crate) fn build(problem: &LpProblem, options: SimplexOptions) -> Self {
        let m = problem.num_constraints();
        let nv = problem.num_variables();

        // Column layout: [original variables | slack/surplus | artificials].
        // One slack or surplus per inequality row; artificials are created
        // for every row that lacks a natural basic column.
        let num_slack = problem
            .constraints()
            .iter()
            .filter(|c| c.op != ConstraintOp::Eq)
            .count();

        // First pass: determine which rows need artificials. A `<=` row
        // with rhs >= 0 uses its slack as the initial basic variable; all
        // other rows need an artificial.
        // Rows are normalized to rhs >= 0 by flipping signs (which also
        // flips Le <-> Ge).
        struct RowPlan {
            flip: bool,
            op: ConstraintOp,
        }
        let plans: Vec<RowPlan> = problem
            .constraints()
            .iter()
            .map(|c| {
                let flip = c.rhs < 0.0;
                let op = match (c.op, flip) {
                    (ConstraintOp::Le, true) => ConstraintOp::Ge,
                    (ConstraintOp::Ge, true) => ConstraintOp::Le,
                    (op, _) => op,
                };
                RowPlan { flip, op }
            })
            .collect();
        let num_artificial = plans.iter().filter(|p| p.op != ConstraintOp::Le).count();

        let n = nv + num_slack + num_artificial;
        let mut a = vec![0.0; m * n];
        let mut b = vec![0.0; m];
        let mut basis = vec![usize::MAX; m];

        let mut slack_col = nv;
        let mut art_col = nv + num_slack;
        for (i, (c, plan)) in problem.constraints().iter().zip(&plans).enumerate() {
            let sign = if plan.flip { -1.0 } else { 1.0 };
            for &(var, coeff) in &c.coeffs {
                a[i * n + var] = sign * coeff;
            }
            b[i] = sign * c.rhs;
            match plan.op {
                ConstraintOp::Le => {
                    a[i * n + slack_col] = 1.0;
                    basis[i] = slack_col;
                    slack_col += 1;
                }
                ConstraintOp::Ge => {
                    a[i * n + slack_col] = -1.0; // surplus
                    slack_col += 1;
                    a[i * n + art_col] = 1.0;
                    basis[i] = art_col;
                    art_col += 1;
                }
                ConstraintOp::Eq => {
                    a[i * n + art_col] = 1.0;
                    basis[i] = art_col;
                    art_col += 1;
                }
            }
        }
        debug_assert_eq!(slack_col, nv + num_slack);
        debug_assert_eq!(art_col, n);

        Self {
            a,
            b,
            d: vec![0.0; n],
            basis,
            m,
            n,
            artificial_start: nv + num_slack,
            phase_cost: None,
            options,
            iterations_used: 0,
        }
    }

    /// Recompute the reduced-cost row `d = c - c_B^T B^{-1} A` for a cost
    /// vector, exploiting that the tableau is kept in basis-canonical form
    /// (basic columns are unit vectors).
    pub(crate) fn reset_costs(&mut self, cost: &[f64]) {
        debug_assert_eq!(cost.len(), self.n);
        self.d.copy_from_slice(cost);
        for row in 0..self.m {
            let cb = cost[self.basis[row]];
            if cb != 0.0 {
                let base = row * self.n;
                for j in 0..self.n {
                    self.d[j] -= cb * self.a[base + j];
                }
            }
        }
    }

    pub(crate) fn pivot(&mut self, row: usize, col: usize) {
        let n = self.n;
        let pivot_val = self.a[row * n + col];
        debug_assert!(pivot_val.abs() > self.options.tolerance);
        // Normalize pivot row.
        let inv = 1.0 / pivot_val;
        for j in 0..n {
            self.a[row * n + j] *= inv;
        }
        self.b[row] *= inv;
        self.a[row * n + col] = 1.0; // exact

        // Eliminate the column elsewhere.
        for i in 0..self.m {
            if i == row {
                continue;
            }
            let factor = self.a[i * n + col];
            if factor != 0.0 {
                let (pre, post) = self.a.split_at_mut(i.max(row) * n);
                let (row_i, row_r) = if i < row {
                    (&mut pre[i * n..i * n + n], &post[..n])
                } else {
                    (&mut post[..n], &pre[row * n..row * n + n])
                };
                for j in 0..n {
                    row_i[j] -= factor * row_r[j];
                }
                row_i[col] = 0.0; // exact
                self.b[i] -= factor * self.b[row];
            }
        }
        // Objective row.
        let dfac = self.d[col];
        if dfac != 0.0 {
            for j in 0..n {
                self.d[j] -= dfac * self.a[row * n + j];
            }
            self.d[col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// One simplex phase: pivot until optimal/unbounded/limit.
    /// `ban_artificials` excludes artificial columns from entering (phase 2).
    pub(crate) fn optimize(&mut self, ban_artificials: bool) -> PhaseResult {
        let tol = self.options.tolerance;
        let mut stall = 0usize;
        let mut bland = false;
        let mut last_obj = f64::INFINITY;
        loop {
            if self.iterations_used >= self.options.max_iterations {
                return PhaseResult::IterationLimit;
            }
            let limit = if ban_artificials {
                self.artificial_start
            } else {
                self.n
            };
            // Entering column.
            let col = if bland {
                (0..limit).find(|&j| self.d[j] < -tol)
            } else {
                let mut best: Option<(usize, f64)> = None;
                for j in 0..limit {
                    let dj = self.d[j];
                    if dj < -tol && best.is_none_or(|(_, bd)| dj < bd) {
                        best = Some((j, dj));
                    }
                }
                best.map(|(j, _)| j)
            };
            let Some(col) = col else {
                return PhaseResult::Optimal;
            };
            // Ratio test.
            let mut pivot_row: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..self.m {
                let aij = self.a[i * self.n + col];
                if aij > tol {
                    let ratio = self.b[i] / aij;
                    let better = ratio < best_ratio - tol
                        || (ratio < best_ratio + tol
                            && pivot_row.is_none_or(|r| self.basis[i] < self.basis[r]));
                    if better {
                        best_ratio = ratio;
                        pivot_row = Some(i);
                    }
                }
            }
            let Some(row) = pivot_row else {
                return PhaseResult::Unbounded;
            };
            self.pivot(row, col);
            self.iterations_used += 1;

            // Stall detection: objective value is z = c_B^T b; track the
            // phase objective via the maintained reduced-cost invariant.
            let current = self.current_objective();
            if current < last_obj - tol {
                stall = 0;
                last_obj = current;
            } else {
                stall += 1;
                if stall >= self.options.stall_threshold {
                    bland = true;
                }
            }
        }
    }

    /// Current phase objective `z = c_B^T b`, recomputed exactly from the
    /// phase cost vector — O(m), negligible next to an O(m*n) pivot.
    fn current_objective(&self) -> f64 {
        self.phase_cost
            .as_ref()
            .map(|c| {
                self.basis
                    .iter()
                    .zip(&self.b)
                    .map(|(&bv, &bval)| c[bv] * bval)
                    .sum()
            })
            .unwrap_or(0.0)
    }

    pub(crate) fn run(&mut self, problem: &LpProblem) -> LpOutcome {
        let tol = self.options.tolerance;
        // Phase 1: minimize the sum of artificials, when any exist.
        if self.artificial_start < self.n {
            let mut phase1 = vec![0.0; self.n];
            for c in phase1.iter_mut().skip(self.artificial_start) {
                *c = 1.0;
            }
            self.reset_costs(&phase1);
            self.phase_cost = Some(phase1);
            match self.optimize(false) {
                PhaseResult::Optimal => {}
                PhaseResult::Unbounded => {
                    // Phase-1 objective is bounded below by 0; unbounded
                    // here indicates numerical trouble. Report as limit.
                    return LpOutcome::IterationLimit {
                        iterations: self.iterations_used,
                    };
                }
                PhaseResult::IterationLimit => {
                    return LpOutcome::IterationLimit {
                        iterations: self.iterations_used,
                    }
                }
            }
            let phase1_obj = self.current_objective();
            if phase1_obj > tol.max(1e-7) {
                return LpOutcome::Infeasible;
            }
            // Drive any artificial still basic (at value ~0) out of the
            // basis when a real pivot exists in its row.
            for row in 0..self.m {
                if self.basis[row] >= self.artificial_start {
                    let col =
                        (0..self.artificial_start).find(|&j| self.a[row * self.n + j].abs() > tol);
                    if let Some(col) = col {
                        self.pivot(row, col);
                    }
                    // If no real column exists the row is redundant; the
                    // artificial stays basic at 0 and phase 2 bans
                    // artificial entering columns, so it is harmless.
                }
            }
        }

        // Phase 2: the real objective (zero cost on slack and artificial
        // columns).
        let mut phase2 = vec![0.0; self.n];
        phase2[..problem.num_variables()].copy_from_slice(problem.objective());
        self.reset_costs(&phase2);
        self.phase_cost = Some(phase2);
        match self.optimize(true) {
            PhaseResult::Optimal => {
                let solution = self.extract_solution(problem.num_variables());
                LpOutcome::Optimal {
                    objective: problem.objective_value(&solution),
                    solution,
                }
            }
            PhaseResult::Unbounded => LpOutcome::Unbounded,
            PhaseResult::IterationLimit => LpOutcome::IterationLimit {
                iterations: self.iterations_used,
            },
        }
    }

    /// Read the current basic solution off the tableau (non-basic
    /// variables are zero).
    pub(crate) fn extract_solution(&self, num_variables: usize) -> Vec<f64> {
        let mut solution = vec![0.0; num_variables];
        for (row, &var) in self.basis.iter().enumerate() {
            if var < solution.len() {
                solution[var] = self.b[row].max(0.0);
            }
        }
        solution
    }
}

pub(crate) enum PhaseResult {
    Optimal,
    Unbounded,
    IterationLimit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintOp, LpProblem};

    fn assert_optimal(outcome: &LpOutcome, expect_obj: f64, tol: f64) -> Vec<f64> {
        match outcome {
            LpOutcome::Optimal {
                objective,
                solution,
            } => {
                assert!(
                    (objective - expect_obj).abs() < tol,
                    "objective {objective} != {expect_obj}"
                );
                solution.clone()
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn simple_le_problem() {
        // min -x - 2y  s.t. x + y <= 4, x <= 2  => x=0, y=4, obj=-8
        let mut p = LpProblem::new();
        let x = p.add_variable(-1.0);
        let y = p.add_variable(-2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
        p.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 2.0);
        let sol = assert_optimal(&solve_dense(&p), -8.0, 1e-7);
        assert!((sol[0] - 0.0).abs() < 1e-7);
        assert!((sol[1] - 4.0).abs() < 1e-7);
    }

    #[test]
    fn equality_and_ge() {
        // min x + y  s.t. x + y == 3, x >= 1  => obj 3, e.g. x=1..3
        let mut p = LpProblem::new();
        let x = p.add_variable(1.0);
        let y = p.add_variable(1.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 3.0);
        p.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 1.0);
        let sol = assert_optimal(&solve_dense(&p), 3.0, 1e-7);
        assert!(p.is_feasible(&sol, 1e-7));
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 2
        let mut p = LpProblem::new();
        let x = p.add_variable(1.0);
        p.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 1.0);
        p.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 2.0);
        assert_eq!(solve_dense(&p), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x  s.t. x >= 1
        let mut p = LpProblem::new();
        let x = p.add_variable(-1.0);
        p.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 1.0);
        assert_eq!(solve_dense(&p), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // min x  s.t. -x <= -3  (i.e. x >= 3)
        let mut p = LpProblem::new();
        let x = p.add_variable(1.0);
        p.add_constraint(vec![(x, -1.0)], ConstraintOp::Le, -3.0);
        let sol = assert_optimal(&solve_dense(&p), 3.0, 1e-7);
        assert!((sol[0] - 3.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate vertex: multiple constraints active at origin.
        let mut p = LpProblem::new();
        let x = p.add_variable(-1.0);
        let y = p.add_variable(-1.0);
        p.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 0.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 0.0);
        p.add_constraint(vec![(x, 2.0), (y, 1.0)], ConstraintOp::Le, 0.0);
        let sol = assert_optimal(&solve_dense(&p), 0.0, 1e-7);
        assert!(p.is_feasible(&sol, 1e-7));
    }

    #[test]
    fn min_max_ratio_shape() {
        // The exact structure used by optimal bandwidth routing:
        // min t  s.t. x1 + x2 == 1 (flow split),
        //             5 x1 <= 10 t (link 1), 5 x2 <= 2 t (link 2).
        // Optimum puts more on link 1: x1 = 5/6, x2 = 1/6, t = 5/12.
        let mut p = LpProblem::new();
        let t = p.add_variable(1.0);
        let x1 = p.add_variable(0.0);
        let x2 = p.add_variable(0.0);
        p.add_constraint(vec![(x1, 1.0), (x2, 1.0)], ConstraintOp::Eq, 1.0);
        p.add_constraint(vec![(x1, 5.0), (t, -10.0)], ConstraintOp::Le, 0.0);
        p.add_constraint(vec![(x2, 5.0), (t, -2.0)], ConstraintOp::Le, 0.0);
        let sol = assert_optimal(&solve_dense(&p), 5.0 / 12.0, 1e-7);
        assert!((sol[1] - 5.0 / 6.0).abs() < 1e-6);
        assert!((sol[2] - 1.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn redundant_equalities_ok() {
        // x + y == 2 twice (redundant row leaves an artificial basic at 0).
        let mut p = LpProblem::new();
        let x = p.add_variable(1.0);
        let y = p.add_variable(3.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 2.0);
        let sol = assert_optimal(&solve_dense(&p), 2.0, 1e-7);
        assert!((sol[0] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn zero_constraint_problem() {
        // min x with no constraints: optimum x = 0.
        let mut p = LpProblem::new();
        let _x = p.add_variable(1.0);
        let sol = assert_optimal(&solve_dense(&p), 0.0, 1e-9);
        assert_eq!(sol.len(), 1);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        // Random small feasible-by-construction LPs: constraints are
        // `a.x <= a.x0 + slack` around a known feasible point `x0 >= 0`,
        // so the solver's optimum must be feasible and no worse than
        // `c.x0`.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn optimum_is_feasible_and_beats_known_point(
                nv in 1usize..5,
                seed_rows in proptest::collection::vec(
                    (proptest::collection::vec(-5.0f64..5.0, 5), 0.0f64..3.0), 1..6),
                cost in proptest::collection::vec(0.0f64..4.0, 5),
                x0 in proptest::collection::vec(0.0f64..3.0, 5),
            ) {
                let mut p = LpProblem::new();
                for &c in cost.iter().take(nv) {
                    p.add_variable(c);
                }
                for (coeffs, slack) in &seed_rows {
                    let row: Vec<(usize, f64)> =
                        (0..nv).map(|i| (i, coeffs[i])).collect();
                    let rhs: f64 =
                        (0..nv).map(|i| coeffs[i] * x0[i]).sum::<f64>() + slack;
                    p.add_constraint(row, ConstraintOp::Le, rhs);
                }
                match solve_dense(&p) {
                    LpOutcome::Optimal { objective, solution } => {
                        prop_assert!(p.is_feasible(&solution, 1e-6));
                        let known: f64 = (0..nv).map(|i| cost[i] * x0[i]).sum();
                        prop_assert!(objective <= known + 1e-6,
                            "optimum {objective} worse than known point {known}");
                        // Non-negative costs + x >= 0 => objective >= 0.
                        prop_assert!(objective >= -1e-7);
                    }
                    other => prop_assert!(false, "expected optimal, got {other:?}"),
                }
            }
        }
    }
}
