//! Sparse LU factorization of a simplex basis.
//!
//! Replaces the dense `O(m^3)` basis factorization the revised simplex
//! used through PR 5. The bases these LPs produce are **hyper-sparse**:
//! most basic columns are unit slack/artificial columns, and the
//! structural columns (flow splits, capacity rows) carry a handful of
//! entries each. A dense LU pays `m^3` flops and `m^2` per solve
//! regardless; this factorization pays only for stored nonzeros:
//!
//! * **left-looking column elimination** (Gilbert–Peierls style): each
//!   basis column is scattered sparsely, eliminated against the already
//!   computed part of `L`, and appended to column-compressed `L`/`U`
//!   factors — total work proportional to the factor flops, not `m^3`,
//! * **fill-aware pivot selection**: columns are eliminated sparsest
//!   first, and within a column every candidate row whose magnitude is
//!   within [`PIVOT_TAU`] of the column maximum is acceptable; among
//!   those the row with the smallest static Markowitz count (nonzeros in
//!   that row of the basis) wins, so unit columns pivot with **zero
//!   fill-in** and the structural block only fills where it must,
//! * **sparse triangular solves**: FTRAN runs column-oriented with
//!   zero-skips (a hyper-sparse right-hand side touches only the columns
//!   it reaches), BTRAN runs as contiguous per-column dot products —
//!   both `O(nnz(L) + nnz(U) + m)` worst case and far less for sparse
//!   inputs.
//!
//! The factorization is `B = L' U' P_c^T` with `L'` unit lower
//! triangular over (original row × elimination step) and `U'` upper
//! triangular over (step × step); `P_c` maps elimination steps back to
//! basis positions. [`SparseLu::solve`] and [`SparseLu::solve_transpose`]
//! hide the permutations: both take and return vectors indexed the way
//! the engine indexes them (basis rows / basis positions).

/// Threshold-partial-pivoting relaxation: any candidate row whose
/// magnitude is within this factor of the column's largest candidate is
/// numerically acceptable, and the sparsest acceptable row becomes the
/// pivot. 0.1 is the textbook compromise between stability (1.0 =
/// partial pivoting) and fill-in (0 = pure Markowitz).
const PIVOT_TAU: f64 = 0.1;

/// Absolute floor for an acceptable pivot; a column whose best candidate
/// is below this is treated as singular and the caller falls back.
pub(crate) const PIVOT_MIN: f64 = 1e-11;

/// Sparse LU factors of one basis. See the module docs for the layout.
pub(crate) struct SparseLu {
    m: usize,
    /// Unit-lower factor `L`: column `t` holds the multipliers created
    /// at elimination step `t`, indexed by **original row** (the unit
    /// diagonal at `row_perm[t]` is implicit).
    l_ptr: Vec<u32>,
    l_rows: Vec<u32>,
    l_vals: Vec<f64>,
    /// Strictly-upper entries of `U`: column `k` holds
    /// `(elimination step t < k, value)` pairs.
    u_ptr: Vec<u32>,
    u_steps: Vec<u32>,
    u_vals: Vec<f64>,
    /// `U`'s diagonal (the pivots), in elimination order.
    u_diag: Vec<f64>,
    /// `row_perm[t]` = original row chosen as pivot at step `t`.
    row_perm: Vec<u32>,
    /// `col_perm[t]` = basis position eliminated at step `t`.
    col_perm: Vec<u32>,
}

impl SparseLu {
    /// A factorization of the 0×0 basis (placeholder before the first
    /// [`SparseLu::factor`] call).
    pub(crate) fn empty() -> Self {
        Self {
            m: 0,
            l_ptr: vec![0],
            l_rows: Vec::new(),
            l_vals: Vec::new(),
            u_ptr: vec![0],
            u_steps: Vec::new(),
            u_vals: Vec::new(),
            u_diag: Vec::new(),
            row_perm: Vec::new(),
            col_perm: Vec::new(),
        }
    }

    /// Stored nonzeros across both factors (including the `m` implicit
    /// unit / stored diagonal entries) — the fill-in figure reported
    /// through the engine counters.
    pub(crate) fn fill_nnz(&self) -> usize {
        self.l_vals.len() + self.u_vals.len() + self.m
    }

    /// Factor the basis whose column at position `j` is
    /// `cols[basis[j]]` (entries `(row, value)`, rows ascending).
    /// `None` when some elimination column has no candidate pivot above
    /// [`PIVOT_MIN`] (singular basis).
    pub(crate) fn factor(cols: &[Vec<(u32, f64)>], basis: &[usize]) -> Option<Self> {
        let m = basis.len();
        // Static Markowitz row counts over the basis matrix: how many
        // basic columns touch each row. The sparsest acceptable pivot
        // row bounds the fill a pivot can cause.
        let mut row_count = vec![0u32; m];
        for &var in basis {
            for &(r, _) in &cols[var] {
                row_count[r as usize] += 1;
            }
        }
        // Eliminate sparsest columns first (stable sort: deterministic).
        // Unit slack/artificial columns go first and factor fill-free.
        let mut order: Vec<u32> = (0..m as u32).collect();
        order.sort_by_key(|&j| (cols[basis[j as usize]].len(), j));

        let mut pinv = vec![u32::MAX; m];
        let mut row_perm = vec![0u32; m];
        // Dense scatter workspace: `x[r]` is live iff `mark[r] == k`.
        let mut x = vec![0.0f64; m];
        let mut mark = vec![u32::MAX; m];
        let mut touched: Vec<u32> = Vec::with_capacity(m);
        // Elimination steps reached by the current column, processed in
        // ascending step order (a min-heap over `Reverse`d steps): only
        // the steps the column actually touches cost anything, which is
        // what keeps a hyper-sparse column's elimination near-free.
        let mut steps: std::collections::BinaryHeap<std::cmp::Reverse<u32>> =
            std::collections::BinaryHeap::with_capacity(m);
        let mut l_ptr = Vec::with_capacity(m + 1);
        let mut l_rows: Vec<u32> = Vec::new();
        let mut l_vals: Vec<f64> = Vec::new();
        let mut u_ptr = Vec::with_capacity(m + 1);
        let mut u_steps: Vec<u32> = Vec::new();
        let mut u_vals: Vec<f64> = Vec::new();
        let mut u_diag = Vec::with_capacity(m);
        l_ptr.push(0u32);
        u_ptr.push(0u32);

        for (k, &pos) in order.iter().enumerate() {
            let stamp = k as u32;
            touched.clear();
            debug_assert!(steps.is_empty());
            for &(r, v) in &cols[basis[pos as usize]] {
                let ri = r as usize;
                x[ri] = v;
                mark[ri] = stamp;
                touched.push(r);
                if pinv[ri] != u32::MAX {
                    steps.push(std::cmp::Reverse(pinv[ri]));
                }
            }
            // Left-looking elimination in ascending step order over only
            // the touched steps. Ascending order is a valid topological
            // order: fill created at step `t` lands only on rows
            // un-pivoted at `t`, whose pivot step (if any) is > t — so
            // every step enters the heap before it is popped, and each
            // row (hence each step) is pushed at most once per column
            // (`mark`-gated).
            while let Some(std::cmp::Reverse(t)) = steps.pop() {
                let t = t as usize;
                let xt = x[row_perm[t] as usize];
                if xt == 0.0 {
                    continue;
                }
                // Final value: no later step touches a pivoted row.
                u_steps.push(t as u32);
                u_vals.push(xt);
                let lo = l_ptr[t] as usize;
                let hi = l_ptr[t + 1] as usize;
                for (&r, &lv) in l_rows[lo..hi].iter().zip(&l_vals[lo..hi]) {
                    let ri = r as usize;
                    if mark[ri] != stamp {
                        mark[ri] = stamp;
                        x[ri] = 0.0;
                        touched.push(r);
                        if pinv[ri] != u32::MAX {
                            steps.push(std::cmp::Reverse(pinv[ri]));
                        }
                    }
                    x[ri] -= lv * xt;
                }
            }
            u_ptr.push(u_steps.len() as u32);
            // Pivot selection among un-pivoted rows: numerically
            // acceptable (within PIVOT_TAU of the column max), then
            // sparsest static row count, then lowest row (determinism).
            let mut amax = 0.0f64;
            for &r in &touched {
                if pinv[r as usize] == u32::MAX {
                    amax = amax.max(x[r as usize].abs());
                }
            }
            if amax < PIVOT_MIN {
                return None;
            }
            let accept = PIVOT_TAU * amax;
            let mut best: Option<(u32, u32)> = None;
            for &r in &touched {
                let ri = r as usize;
                if pinv[ri] != u32::MAX || x[ri].abs() < accept {
                    continue;
                }
                let key = (row_count[ri], r);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
            let (_, pr) = best.expect("amax >= PIVOT_MIN guarantees a candidate");
            let pri = pr as usize;
            let pivot = x[pri];
            pinv[pri] = stamp;
            row_perm[k] = pr;
            u_diag.push(pivot);
            // L column k: remaining un-pivoted rows, as multipliers.
            for &r in &touched {
                let ri = r as usize;
                if pinv[ri] != u32::MAX {
                    continue;
                }
                let xv = x[ri];
                if xv != 0.0 {
                    l_rows.push(r);
                    l_vals.push(xv / pivot);
                }
            }
            l_ptr.push(l_rows.len() as u32);
            // No explicit clearing of `x`: `mark` gates every read.
        }

        Some(Self {
            m,
            l_ptr,
            l_rows,
            l_vals,
            u_ptr,
            u_steps,
            u_vals,
            u_diag,
            row_perm,
            col_perm: order,
        })
    }

    /// FTRAN base: overwrite `v` (indexed by basis row) with `B^{-1} v`
    /// (indexed by basis position). Both triangular passes run
    /// column-oriented with zero-skips, so a hyper-sparse `v` touches
    /// only the factor columns it reaches. `tmp` is caller-provided
    /// scratch of length `m` (permutation staging).
    pub(crate) fn solve(&self, v: &mut [f64], tmp: &mut [f64]) {
        let m = self.m;
        // Lower: L' z = v, forward over elimination steps.
        for t in 0..m {
            let c = v[self.row_perm[t] as usize];
            if c != 0.0 {
                let lo = self.l_ptr[t] as usize;
                let hi = self.l_ptr[t + 1] as usize;
                for (&r, &lv) in self.l_rows[lo..hi].iter().zip(&self.l_vals[lo..hi]) {
                    v[r as usize] -= lv * c;
                }
            }
        }
        // Upper: U' y = z, backward.
        for k in (0..m).rev() {
            let pk = self.row_perm[k] as usize;
            let val = v[pk] / self.u_diag[k];
            v[pk] = val;
            if val != 0.0 {
                let lo = self.u_ptr[k] as usize;
                let hi = self.u_ptr[k + 1] as usize;
                for (&t, &uv) in self.u_steps[lo..hi].iter().zip(&self.u_vals[lo..hi]) {
                    v[self.row_perm[t as usize] as usize] -= uv * val;
                }
            }
        }
        // Un-permute: basis position col_perm[k] takes the step-k value.
        for k in 0..m {
            tmp[self.col_perm[k] as usize] = v[self.row_perm[k] as usize];
        }
        v[..m].copy_from_slice(&tmp[..m]);
    }

    /// BTRAN base: overwrite `v` (indexed by basis position) with
    /// `B^{-T} v` (indexed by basis row). Both passes are contiguous
    /// per-column dot products over the stored factors. `tmp` is
    /// caller-provided scratch of length `m`.
    pub(crate) fn solve_transpose(&self, v: &mut [f64], tmp: &mut [f64]) {
        let m = self.m;
        // Gather into elimination-step space: rhs_k = v[col_perm[k]].
        for k in 0..m {
            tmp[k] = v[self.col_perm[k] as usize];
        }
        // U'^T s = rhs: forward; column k of U is the dot pattern.
        for k in 0..m {
            let lo = self.u_ptr[k] as usize;
            let hi = self.u_ptr[k + 1] as usize;
            let mut s = tmp[k];
            for (&t, &uv) in self.u_steps[lo..hi].iter().zip(&self.u_vals[lo..hi]) {
                s -= uv * tmp[t as usize];
            }
            tmp[k] = s / self.u_diag[k];
        }
        // L'^T y = s: backward; results land at original rows. Rows read
        // from `v` were all written at later steps (pinv > t), so the
        // input values of `v` are fully consumed by the gather above.
        for t in (0..m).rev() {
            let lo = self.l_ptr[t] as usize;
            let hi = self.l_ptr[t + 1] as usize;
            let mut s = tmp[t];
            for (&r, &lv) in self.l_rows[lo..hi].iter().zip(&self.l_vals[lo..hi]) {
                s -= lv * v[r as usize];
            }
            v[self.row_perm[t] as usize] = s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Factor a small dense matrix given row-major and check both solves
    /// against hand-multiplied products.
    fn check_roundtrip(dense: &[f64], m: usize) {
        // Column-sparse form, one "variable" per basis position.
        let cols: Vec<Vec<(u32, f64)>> = (0..m)
            .map(|j| {
                (0..m)
                    .filter(|&i| dense[i * m + j] != 0.0)
                    .map(|i| (i as u32, dense[i * m + j]))
                    .collect()
            })
            .collect();
        let basis: Vec<usize> = (0..m).collect();
        let lu = SparseLu::factor(&cols, &basis).expect("nonsingular");
        let mut tmp = vec![0.0; m];
        // FTRAN: B w = v  =>  dense * w == v.
        for rhs in 0..m {
            let mut v = vec![0.0; m];
            v[rhs] = 1.0;
            let mut w = v.clone();
            lu.solve(&mut w, &mut tmp);
            for i in 0..m {
                let prod: f64 = (0..m).map(|j| dense[i * m + j] * w[j]).sum();
                assert!(
                    (prod - v[i]).abs() < 1e-9,
                    "FTRAN rhs e{rhs}: row {i} product {prod} != {}",
                    v[i]
                );
            }
        }
        // BTRAN: B^T y = v  =>  dense^T * y == v.
        for rhs in 0..m {
            let mut v = vec![0.0; m];
            v[rhs] = 1.0;
            let mut y = v.clone();
            lu.solve_transpose(&mut y, &mut tmp);
            for j in 0..m {
                let prod: f64 = (0..m).map(|i| dense[i * m + j] * y[i]).sum();
                assert!(
                    (prod - v[j]).abs() < 1e-9,
                    "BTRAN rhs e{rhs}: col {j} product {prod} != {}",
                    v[j]
                );
            }
        }
    }

    #[test]
    fn permuted_identity_is_fill_free() {
        let m = 4;
        // Columns are unit vectors in scrambled order.
        let perm = [2usize, 0, 3, 1];
        let mut dense = vec![0.0; m * m];
        for (j, &i) in perm.iter().enumerate() {
            dense[i * m + j] = 1.0;
        }
        let cols: Vec<Vec<(u32, f64)>> = (0..m).map(|j| vec![(perm[j] as u32, 1.0)]).collect();
        let basis: Vec<usize> = (0..m).collect();
        let lu = SparseLu::factor(&cols, &basis).unwrap();
        assert_eq!(lu.fill_nnz(), m, "unit basis must factor fill-free");
        check_roundtrip(&dense, m);
    }

    #[test]
    fn small_dense_roundtrip() {
        let dense = [
            2.0, 1.0, 0.0, //
            1.0, 3.0, 1.0, //
            0.0, 1.0, 4.0,
        ];
        check_roundtrip(&dense, 3);
    }

    #[test]
    fn needs_row_pivoting() {
        // Leading entry zero: plain no-pivot elimination would divide
        // by zero.
        let dense = [
            0.0, 1.0, //
            1.0, 0.5,
        ];
        check_roundtrip(&dense, 2);
    }

    #[test]
    fn singular_detected() {
        let cols = vec![
            vec![(0u32, 1.0), (1u32, 1.0)],
            vec![(0u32, 2.0), (1u32, 2.0)],
        ];
        let basis = vec![0usize, 1];
        assert!(SparseLu::factor(&cols, &basis).is_none());
    }

    #[test]
    fn empty_basis() {
        let lu = SparseLu::factor(&[], &[]).unwrap();
        assert_eq!(lu.fill_nnz(), 0);
        let mut v: Vec<f64> = Vec::new();
        let mut tmp: Vec<f64> = Vec::new();
        lu.solve(&mut v, &mut tmp);
        lu.solve_transpose(&mut v, &mut tmp);
    }
}
