//! An LP solver stack built around a revised simplex with a maintained
//! basis factorization.
//!
//! Built from scratch as the substrate for the paper's *globally optimal*
//! bandwidth routing: "computed by solving an optimization problem that
//! minimizes the maximum increase in link load … we allow flows to be
//! fractionally divided among interconnections" (§5.2). That is a linear
//! program; the paper's authors used an off-the-shelf solver, which the
//! offline crate set does not include.
//!
//! Scope: minimize `c·x` subject to mixed `<=` / `>=` / `==` constraints
//! and `x >= 0`. Two engines share one standard form:
//!
//! * [`revised`] — the production path: column-sparse constraint matrix,
//!   dense LU of the basis with product-form (eta) updates and periodic
//!   refactorization, Dantzig pricing with a Bland's-rule anti-cycling
//!   fallback. [`solve`] / [`solve_with`] run it cold.
//! * [`simplex`] — the dense full-tableau method, kept as the
//!   independently implemented **oracle** ([`solve_dense`]) that the
//!   revised path is property-tested against.
//!
//! # Warm starts
//!
//! Sweeps that re-solve one program with patches should hold a
//! [`SimplexWorkspace`]: it retains the revised engine — the basis and
//! its factorization — between solves and re-enters it instead of
//! cold-starting. What is reused depends on what changed:
//!
//! | patch                                   | re-entry                                              |
//! |-----------------------------------------|-------------------------------------------------------|
//! | rhs only                                | `x_B = B⁻¹b` + dual-simplex repair (retained basis)   |
//! | coefficients / objective (same pattern) | column refresh against the retained factorization     |
//! | new structure (rows/sparsity/operators) | cold two-phase solve                                  |
//!
//! Every warm outcome is verified against the problem itself and falls
//! back to a cold start transparently, so a warm solve can never return
//! anything a cold solve would not ([`WarmStats`] counts which path each
//! solve actually took).

pub mod problem;
pub mod revised;
pub mod simplex;
pub mod workspace;

pub use problem::{Constraint, ConstraintOp, LpProblem};
pub use revised::{solve, solve_with};
pub use simplex::{solve_dense, solve_dense_with, LpOutcome, SimplexOptions};
pub use workspace::{SimplexWorkspace, WarmStats};
