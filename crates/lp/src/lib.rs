//! An LP solver stack built around a revised simplex with a maintained
//! basis factorization.
//!
//! Built from scratch as the substrate for the paper's *globally optimal*
//! bandwidth routing: "computed by solving an optimization problem that
//! minimizes the maximum increase in link load … we allow flows to be
//! fractionally divided among interconnections" (§5.2). That is a linear
//! program; the paper's authors used an off-the-shelf solver, which the
//! offline crate set does not include.
//!
//! Scope: minimize `c·x` subject to mixed `<=` / `>=` / `==` constraints
//! and `x >= 0`. Two engines share one standard form:
//!
//! * [`revised`] — the production path: column-sparse constraint matrix,
//!   sparse Markowitz-ordered LU of the basis (`lu`, column-compressed
//!   factors with fill-aware pivoting) with sparse product-form (eta)
//!   updates and periodic refactorization, devex pricing with a
//!   Bland's-rule anti-cycling fallback. [`solve`] / [`solve_with`] run
//!   it cold.
//! * [`simplex`] — the dense full-tableau method, kept as the
//!   independently implemented **oracle** ([`solve_dense`]) that the
//!   revised path is property-tested against.
//!
//! # Warm starts
//!
//! Sweeps that re-solve one program with patches should hold a
//! [`SimplexWorkspace`]: it retains the revised engine — the basis and
//! its factorization — between solves and re-enters it instead of
//! cold-starting. What is reused depends on what changed:
//!
//! | patch                                   | re-entry                                              |
//! |-----------------------------------------|-------------------------------------------------------|
//! | rhs only                                | `x_B = B⁻¹b` + dual-simplex repair (retained basis)   |
//! | coefficients / objective (same pattern) | column refresh against the retained factorization     |
//! | new structure (rows/sparsity/operators) | cold two-phase solve                                  |
//!
//! Every warm outcome is verified against the problem itself and falls
//! back to a cold start transparently, so a warm solve can never return
//! anything a cold solve would not ([`WarmStats`] counts which path each
//! solve actually took).
//!
//! # Pricing and refactorization policy
//!
//! Primal phases price with **devex** (approximate steepest edge):
//! reference-framework weights start at the unit framework per phase,
//! grow monotonically via the Forrest–Goldfarb pivot-row recurrence,
//! survive refactorization, and re-anchor if they overflow the
//! contrast ceiling. After `SimplexOptions::stall_threshold`
//! consecutive non-improving pivots the phase hands over to **Bland's
//! rule** for guaranteed termination on degenerate programs
//! (`WarmStats::pricing_fallbacks` counts the hand-overs); the first
//! strictly improving pivot hands control back to devex, so one
//! degenerate plateau does not slow the rest of the solve. The basis is
//! **refactorized** every `(m/6).clamp(12, 48)` eta updates, on
//! numerically unusable pivots, and whenever a coefficient patch
//! touches more basic columns than the eta budget absorbs;
//! `WarmStats::refactorizations`, `max_eta_chain` and `lu_fill_nnz`
//! expose that machinery per solve.

mod lu;
pub mod problem;
pub mod revised;
pub mod simplex;
pub mod workspace;

pub use problem::{Constraint, ConstraintOp, LpProblem};
pub use revised::{solve, solve_with};
pub use simplex::{solve_dense, solve_dense_with, LpOutcome, SimplexOptions};
pub use workspace::{SimplexWorkspace, WarmStats};
