//! A dense two-phase primal simplex LP solver.
//!
//! Built from scratch as the substrate for the paper's *globally optimal*
//! bandwidth routing: "computed by solving an optimization problem that
//! minimizes the maximum increase in link load … we allow flows to be
//! fractionally divided among interconnections" (§5.2). That is a linear
//! program; the paper's authors used an off-the-shelf solver, which the
//! offline crate set does not include.
//!
//! Scope: minimize `c·x` subject to mixed `<=` / `>=` / `==` constraints
//! and `x >= 0`. Problems in this workspace are small and dense-ish
//! (hundreds of rows, a few thousand columns), so a dense tableau with
//! Bland's anti-cycling rule is simple, robust, and fast enough. Dantzig
//! pricing is used until degeneracy stalls are detected, then the solver
//! falls back to Bland's rule, which guarantees termination.
//!
//! Sweeps that re-solve one program with patched right-hand sides
//! (failure-scenario ladders) should hold a [`SimplexWorkspace`]: it
//! retains the final tableau and re-enters via dual simplex instead of
//! cold-starting, falling back transparently whenever the structure
//! changed or the saved basis is unusable.

pub mod problem;
pub mod simplex;
pub mod workspace;

pub use problem::{Constraint, ConstraintOp, LpProblem};
pub use simplex::{solve, solve_with, LpOutcome, SimplexOptions};
pub use workspace::{SimplexWorkspace, WarmStats};
