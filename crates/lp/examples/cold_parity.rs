//! Cold-solve parity check: the revised engine (sparse LU + devex) vs
//! the dense tableau (`solve_dense`, the pre-revised engine kept as the
//! oracle) on the bench min-max programs.
//!
//! ```text
//! cargo run --release -p nexit-lp --example cold_parity
//! ```
//!
//! Prints per-size medians and the speedup ratio; the ROADMAP's
//! cold-parity number comes from this tool.

use std::time::Instant;

use nexit_lp::{solve, solve_dense, ConstraintOp, LpOutcome, LpProblem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The bench generator: min-max load-ratio LP, `flows` flows over `k`
/// choices, `links` random capacity rows (seed-stable).
fn min_max_problem(flows: usize, k: usize, links: usize, seed: u64) -> LpProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = LpProblem::new();
    let t = p.add_variable(1.0);
    let x = |f: usize, i: usize| 1 + f * k + i;
    for _ in 0..flows * k {
        p.add_variable(0.0);
    }
    for f in 0..flows {
        p.add_constraint(
            (0..k).map(|i| (x(f, i), 1.0)).collect(),
            ConstraintOp::Eq,
            1.0,
        );
    }
    for _ in 0..links {
        let mut row: Vec<(usize, f64)> = Vec::new();
        for f in 0..flows {
            for i in 0..k {
                if rng.gen_bool(0.3) {
                    row.push((x(f, i), rng.gen_range(0.1..2.0)));
                }
            }
        }
        if row.is_empty() {
            continue;
        }
        row.push((t, -rng.gen_range(1.0..10.0)));
        p.add_constraint(row, ConstraintOp::Le, 0.0);
    }
    p
}

fn median_micros(mut runs: Vec<f64>) -> f64 {
    runs.sort_by(|a, b| a.total_cmp(b));
    runs[runs.len() / 2]
}

fn time_solver(p: &LpProblem, reps: usize, f: impl Fn(&LpProblem) -> LpOutcome) -> (f64, f64) {
    let mut times = Vec::with_capacity(reps);
    let mut obj = f64::NAN;
    for _ in 0..reps {
        let start = Instant::now();
        let outcome = f(p);
        times.push(start.elapsed().as_secs_f64() * 1e6);
        match outcome {
            LpOutcome::Optimal { objective, .. } => obj = objective,
            other => panic!("bench program must be solvable, got {other:?}"),
        }
    }
    (median_micros(times), obj)
}

fn main() {
    let reps = 15;
    println!("cold-solve parity, median of {reps} runs (µs):");
    println!(
        "{:>12} {:>12} {:>12} {:>9}",
        "program", "dense", "revised", "ratio"
    );
    for &(flows, links) in &[(20usize, 20usize), (60, 40), (120, 80)] {
        let p = min_max_problem(flows, 3, links, 7);
        let (dense_us, dense_obj) = time_solver(&p, reps, solve_dense);
        let (revised_us, revised_obj) = time_solver(&p, reps, solve);
        assert!(
            (dense_obj - revised_obj).abs() < 1e-7,
            "engines disagree: dense {dense_obj} vs revised {revised_obj}"
        );
        println!(
            "{:>12} {:>12.1} {:>12.1} {:>8.2}x",
            format!("{flows}f_{links}l"),
            dense_us,
            revised_us,
            dense_us / revised_us
        );
    }
}
