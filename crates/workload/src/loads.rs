//! Per-link load computation.
//!
//! Loads drive everything in the bandwidth experiments: capacities are
//! assigned from pre-failure loads, MEL is a ratio of post- to pre-failure
//! load, and the Nexit bandwidth preference mapping inspects the load a
//! flow alternative would add to each link on its path.
//!
//! [`PathTable`] precomputes, for every (flow, alternative), the exact
//! link sequences inside both ISPs, so load accumulation and incremental
//! what-if queries are cheap inner loops.

use nexit_routing::{flow_links_into, PairFlows, ShortestPaths};
use nexit_routing::{Assignment, FlowId};
use nexit_topology::{IcxId, LinkId, PairView};

/// Precomputed link paths for every (flow, alternative) combination,
/// stored CSR-style: one flat link buffer per side plus `flows × k + 1`
/// offsets, so building the table is two allocations per side instead
/// of a `Vec` per (flow, alternative) and lookups stay cache-dense.
#[derive(Debug, Clone)]
pub struct PathTable {
    /// Alternatives per flow.
    k: usize,
    /// Flows covered.
    num_flows: usize,
    /// Concatenated upstream link sequences, segment `flow * k + icx`.
    up: Vec<LinkId>,
    /// `up_bounds[i]..up_bounds[i + 1]` bounds segment `i` of `up`.
    up_bounds: Vec<u32>,
    /// Concatenated downstream link sequences.
    down: Vec<LinkId>,
    /// Segment bounds of `down`.
    down_bounds: Vec<u32>,
}

impl PathTable {
    /// Precompute all paths for a flow set.
    pub fn build(
        view: &PairView<'_>,
        sp_up: &ShortestPaths,
        sp_down: &ShortestPaths,
        flows: &PairFlows,
    ) -> Self {
        let k = view.num_interconnections();
        let mut up = Vec::new();
        let mut down = Vec::new();
        let mut up_bounds = Vec::with_capacity(flows.len() * k + 1);
        let mut down_bounds = Vec::with_capacity(flows.len() * k + 1);
        up_bounds.push(0);
        down_bounds.push(0);
        for (_, flow, _) in flows.iter() {
            for i in 0..k {
                flow_links_into(
                    view,
                    sp_up,
                    sp_down,
                    flow,
                    IcxId::new(i),
                    &mut up,
                    &mut down,
                );
                up_bounds.push(u32::try_from(up.len()).expect("path table under 4G links"));
                down_bounds.push(u32::try_from(down.len()).expect("path table under 4G links"));
            }
        }
        Self {
            k,
            num_flows: flows.len(),
            up,
            up_bounds,
            down,
            down_bounds,
        }
    }

    /// Upstream links for one (flow, alternative).
    #[inline]
    pub fn up_links(&self, flow: FlowId, icx: IcxId) -> &[LinkId] {
        let i = flow.index() * self.k + icx.index();
        &self.up[self.up_bounds[i] as usize..self.up_bounds[i + 1] as usize]
    }

    /// Downstream links for one (flow, alternative).
    #[inline]
    pub fn down_links(&self, flow: FlowId, icx: IcxId) -> &[LinkId] {
        let i = flow.index() * self.k + icx.index();
        &self.down[self.down_bounds[i] as usize..self.down_bounds[i + 1] as usize]
    }

    /// Number of flows covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.num_flows
    }

    /// True when no flows are covered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_flows == 0
    }
}

/// Per-link loads on both sides of a pair, indexed by [`LinkId`].
#[derive(Debug, Clone, PartialEq)]
pub struct LinkLoads {
    /// Load on each upstream link.
    pub up: Vec<f64>,
    /// Load on each downstream link.
    pub down: Vec<f64>,
}

impl LinkLoads {
    /// All-zero loads sized for a pair.
    pub fn zero(view: &PairView<'_>) -> Self {
        Self {
            up: vec![0.0; view.a.num_links()],
            down: vec![0.0; view.b.num_links()],
        }
    }

    /// Add the load of one flow routed via `icx`.
    pub fn add_flow(&mut self, paths: &PathTable, flow: FlowId, icx: IcxId, volume: f64) {
        for &l in paths.up_links(flow, icx) {
            self.up[l.index()] += volume;
        }
        for &l in paths.down_links(flow, icx) {
            self.down[l.index()] += volume;
        }
    }

    /// Remove the load of one flow routed via `icx` (inverse of
    /// [`LinkLoads::add_flow`]).
    pub fn remove_flow(&mut self, paths: &PathTable, flow: FlowId, icx: IcxId, volume: f64) {
        self.add_flow(paths, flow, icx, -volume);
    }

    /// The maximum load on either side.
    pub fn max_load(&self) -> f64 {
        self.up
            .iter()
            .chain(&self.down)
            .copied()
            .fold(0.0, f64::max)
    }
}

/// Compute the loads produced by a complete assignment.
pub fn link_loads(
    view: &PairView<'_>,
    paths: &PathTable,
    flows: &PairFlows,
    assignment: &Assignment,
) -> LinkLoads {
    let mut loads = LinkLoads::zero(view);
    for (id, flow, _) in flows.iter() {
        loads.add_flow(paths, id, assignment.choice(id), flow.volume);
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexit_topology::{
        GeoPoint, Interconnection, IspId, IspPair, IspTopology, Link, Pop, PopId,
    };

    fn pop(city: &str, lon: f64) -> Pop {
        Pop {
            city: city.into(),
            geo: GeoPoint::new(0.0, lon),
            weight: 1.0,
        }
    }

    fn line(id: u32, n: usize) -> IspTopology {
        let pops = (0..n).map(|i| pop(&format!("c{i}"), i as f64)).collect();
        let links = (0..n - 1)
            .map(|i| Link {
                a: PopId::new(i),
                b: PopId::new(i + 1),
                weight: 100.0,
                length_km: 100.0,
            })
            .collect();
        IspTopology::new(IspId(id), format!("L{id}"), pops, links, false).unwrap()
    }

    fn setup() -> (IspTopology, IspTopology, IspPair) {
        let a = line(0, 3);
        let b = line(1, 3);
        let pair = IspPair::new(
            &a,
            &b,
            vec![
                Interconnection {
                    pop_a: PopId(0),
                    pop_b: PopId(0),
                    length_km: 0.0,
                },
                Interconnection {
                    pop_a: PopId(2),
                    pop_b: PopId(2),
                    length_km: 0.0,
                },
            ],
        )
        .unwrap();
        (a, b, pair)
    }

    #[test]
    fn loads_accumulate_along_paths() {
        let (a, b, pair) = setup();
        let view = PairView::new(&a, &b, &pair);
        let sp_a = ShortestPaths::compute(&a);
        let sp_b = ShortestPaths::compute(&b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let paths = PathTable::build(&view, &sp_a, &sp_b, &flows);
        // Route everything via icx 0 (at pop 0/0).
        let asg = Assignment::uniform(flows.len(), IcxId(0));
        let loads = link_loads(&view, &paths, &flows, &asg);
        // Upstream link 0 (a0-a1) carries flows sourced at a1 (3 flows,
        // traveling a1->a0) and a2 (3 flows, a2->a1->a0) = 6.
        assert_eq!(loads.up[0], 6.0);
        // Upstream link 1 (a1-a2) carries the 3 flows sourced at a2.
        assert_eq!(loads.up[1], 3.0);
        // Downstream link 0 (b0-b1) carries flows destined to b1 and b2
        // from each of 3 sources = 6.
        assert_eq!(loads.down[0], 6.0);
        assert_eq!(loads.down[1], 3.0);
    }

    #[test]
    fn incremental_add_remove_is_consistent() {
        let (a, b, pair) = setup();
        let view = PairView::new(&a, &b, &pair);
        let sp_a = ShortestPaths::compute(&a);
        let sp_b = ShortestPaths::compute(&b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |s, d| {
            1.0 + (s.index() + d.index()) as f64
        });
        let paths = PathTable::build(&view, &sp_a, &sp_b, &flows);
        let asg0 = Assignment::uniform(flows.len(), IcxId(0));
        let mut asg1 = asg0.clone();
        asg1.set(FlowId(4), IcxId(1));

        // Full recompute of asg1 vs incremental move from asg0.
        let full = link_loads(&view, &paths, &flows, &asg1);
        let mut incr = link_loads(&view, &paths, &flows, &asg0);
        let vol = flows.flows[4].volume;
        incr.remove_flow(&paths, FlowId(4), IcxId(0), vol);
        incr.add_flow(&paths, FlowId(4), IcxId(1), vol);
        for (x, y) in incr.up.iter().zip(&full.up) {
            assert!((x - y).abs() < 1e-9);
        }
        for (x, y) in incr.down.iter().zip(&full.down) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn max_load_over_both_sides() {
        let loads = LinkLoads {
            up: vec![1.0, 5.0],
            down: vec![3.0],
        };
        assert_eq!(loads.max_load(), 5.0);
    }

    #[test]
    fn conservation_total_volume_distance() {
        // Sum over links of load == sum over flows of volume * hops.
        let (a, b, pair) = setup();
        let view = PairView::new(&a, &b, &pair);
        let sp_a = ShortestPaths::compute(&a);
        let sp_b = ShortestPaths::compute(&b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 2.0);
        let paths = PathTable::build(&view, &sp_a, &sp_b, &flows);
        let asg = Assignment::uniform(flows.len(), IcxId(1));
        let loads = link_loads(&view, &paths, &flows, &asg);
        let total_load: f64 = loads.up.iter().chain(&loads.down).sum();
        let total_hops: f64 = flows
            .iter()
            .map(|(id, f, _)| {
                f.volume
                    * (paths.up_links(id, IcxId(1)).len() + paths.down_links(id, IcxId(1)).len())
                        as f64
            })
            .sum();
        assert!((total_load - total_hops).abs() < 1e-9);
    }
}
