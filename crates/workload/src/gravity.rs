//! Traffic matrix models.
//!
//! The gravity model predicts that traffic between two PoPs is proportional
//! to the product of their "weights" (paper §5.2, citing Medina et al. and
//! Zhang et al.). The paper uses city population as the weight, yielding a
//! skewed matrix where large cities source and sink more traffic — the
//! hallmark of measured Internet matrices. Identical and uniform-random
//! weights are the paper's stated alternate models.

use nexit_topology::{IspTopology, PopId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which PoP-weight model drives the traffic matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadModel {
    /// Weight = city population (the paper's headline model).
    Gravity,
    /// All PoPs weigh the same (ablation).
    Identical,
    /// Weights drawn i.i.d. uniform from `(0, 1]`, seeded (ablation).
    Uniform { seed: u64 },
}

impl WorkloadModel {
    /// The per-PoP weight vector for one ISP under this model.
    pub fn weights(&self, isp: &IspTopology) -> Vec<f64> {
        match self {
            WorkloadModel::Gravity => isp.pops.iter().map(|p| p.weight).collect(),
            WorkloadModel::Identical => vec![1.0; isp.num_pops()],
            WorkloadModel::Uniform { seed } => {
                // Mix the ISP id into the seed so each ISP gets independent
                // but reproducible weights.
                let mut rng = StdRng::seed_from_u64(
                    seed ^ (isp.id.0 as u64).wrapping_mul(0x9E3779B97F4A7C15),
                );
                (0..isp.num_pops())
                    .map(|_| 1.0 - rng.gen::<f64>().min(0.999_999))
                    .collect()
            }
        }
    }
}

/// Build a flow-volume function for a directed pair: volume of the flow
/// from `src` (in `up`) to `dst` (in `down`) is `w_up[src] * w_down[dst]`,
/// normalized so the total volume over all flows is
/// `num_flows` (keeping magnitudes comparable across models and pairs).
pub fn volume_fn(
    model: WorkloadModel,
    up: &IspTopology,
    down: &IspTopology,
) -> impl Fn(PopId, PopId) -> f64 {
    let w_up = model.weights(up);
    let w_down = model.weights(down);
    let sum_up: f64 = w_up.iter().sum();
    let sum_down: f64 = w_down.iter().sum();
    let num_flows = (up.num_pops() * down.num_pops()) as f64;
    // total volume = sum_up * sum_down * scale == num_flows
    let scale = num_flows / (sum_up * sum_down);
    move |src, dst| w_up[src.index()] * w_down[dst.index()] * scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexit_topology::{GeneratorConfig, TopologyGenerator};

    fn two_isps() -> (IspTopology, IspTopology) {
        let u = TopologyGenerator::new(GeneratorConfig {
            num_isps: 2,
            num_mesh_isps: 0,
            seed: 9,
            ..GeneratorConfig::default()
        })
        .generate();
        let mut it = u.isps.into_iter();
        (it.next().unwrap(), it.next().unwrap())
    }

    #[test]
    fn gravity_uses_populations() {
        let (a, _) = two_isps();
        let w = WorkloadModel::Gravity.weights(&a);
        for (i, p) in a.pops.iter().enumerate() {
            assert_eq!(w[i], p.weight);
        }
    }

    #[test]
    fn identical_weights_are_flat() {
        let (a, _) = two_isps();
        let w = WorkloadModel::Identical.weights(&a);
        assert!(w.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn uniform_is_seeded_and_positive() {
        let (a, b) = two_isps();
        let w1 = WorkloadModel::Uniform { seed: 5 }.weights(&a);
        let w2 = WorkloadModel::Uniform { seed: 5 }.weights(&a);
        let w3 = WorkloadModel::Uniform { seed: 6 }.weights(&a);
        let wb = WorkloadModel::Uniform { seed: 5 }.weights(&b);
        assert_eq!(w1, w2, "same seed must reproduce");
        assert_ne!(w1, w3, "different seeds must differ");
        assert_ne!(w1[0], wb[0], "different ISPs must differ");
        assert!(w1.iter().all(|&x| x > 0.0 && x <= 1.0));
    }

    #[test]
    fn volumes_normalized_to_flow_count() {
        let (a, b) = two_isps();
        for model in [
            WorkloadModel::Gravity,
            WorkloadModel::Identical,
            WorkloadModel::Uniform { seed: 1 },
        ] {
            let vol = volume_fn(model, &a, &b);
            let mut total = 0.0;
            for (s, _) in a.pops() {
                for (d, _) in b.pops() {
                    let v = vol(s, d);
                    assert!(v > 0.0);
                    total += v;
                }
            }
            let expect = (a.num_pops() * b.num_pops()) as f64;
            assert!(
                (total - expect).abs() < 1e-6,
                "{model:?}: total {total} != {expect}"
            );
        }
    }

    #[test]
    fn gravity_is_skewed() {
        let (a, b) = two_isps();
        let vol = volume_fn(WorkloadModel::Gravity, &a, &b);
        let mut vols: Vec<f64> = Vec::new();
        for (s, _) in a.pops() {
            for (d, _) in b.pops() {
                vols.push(vol(s, d));
            }
        }
        vols.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let median = vols[vols.len() / 2];
        let max = *vols.last().unwrap();
        assert!(
            max / median > 3.0,
            "gravity matrix should be skewed: max={max} median={median}"
        );
    }
}
