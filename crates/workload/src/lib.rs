//! Traffic workloads and link-capacity models.
//!
//! The paper's bandwidth experiments need three modeled inputs that are not
//! part of the topology itself (§5.2 "Methodology"):
//!
//! 1. **A traffic matrix** — how much traffic each (source PoP,
//!    destination PoP) flow carries. The headline model is a *gravity
//!    model*: flow volume proportional to the product of the city
//!    populations of its endpoints. Alternate models (identical weights,
//!    uniform-random weights) are provided for the robustness ablation.
//! 2. **Per-link loads** — the traffic each intra-ISP link carries given a
//!    flow-to-interconnection assignment, including the *background* load
//!    from the ISP's purely internal traffic and from traffic in the other
//!    direction; we model the negotiation-relevant portion (the directed
//!    inter-ISP flows) exactly as the paper does.
//! 3. **Link capacities** — proportional to pre-failure load, with the
//!    paper's backup-link rule (unused links get the median capacity of
//!    used links) and thin-link upgrade (links below the median are raised
//!    to the median). A power-of-two discretization is provided for the
//!    ablation.

pub mod capacity;
pub mod gravity;
pub mod loads;

pub use capacity::{assign_capacities, BackupRule, CapacityModel};
pub use gravity::{volume_fn, WorkloadModel};
pub use loads::{link_loads, LinkLoads, PathTable};
