//! Link-capacity assignment models.
//!
//! The paper (§5.2): *"to model link capacities, we assume that they are
//! proportional to the load on the link before the failure … a
//! well-designed network tends to be roughly matched to its traffic"*.
//! Links that carried no traffic before the failure are backups; they get
//! the **median** capacity of loaded links (alternate rules: max, average).
//! Finally all links below the median are **upgraded** to the median so
//! results are not dominated by trivially thin links. The power-of-two
//! model (round capacities up to the next power of two) is the paper's
//! discrete-capacity ablation.

/// Rule for capacitating links that carried no pre-failure traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackupRule {
    /// Median of the non-zero loads (the paper's headline rule).
    Median,
    /// Maximum of the non-zero loads (ablation).
    Max,
    /// Average of the non-zero loads (ablation).
    Average,
}

/// Complete capacity model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityModel {
    /// How to capacitate unloaded (backup) links.
    pub backup: BackupRule,
    /// Upgrade every link's capacity to at least the median of loaded
    /// links (the paper always applies this; expose it for ablations).
    pub upgrade_below_median: bool,
    /// Round capacities up to the next power of two (discrete-capacity
    /// ablation).
    pub power_of_two: bool,
}

impl Default for CapacityModel {
    fn default() -> Self {
        Self {
            backup: BackupRule::Median,
            upgrade_below_median: true,
            power_of_two: false,
        }
    }
}

/// Assign a capacity to every link given its pre-failure load.
///
/// Returns one capacity per entry of `pre_failure_loads`, all strictly
/// positive (a topology whose links carry no traffic at all gets unit
/// capacities, so downstream ratio metrics stay finite).
pub fn assign_capacities(model: &CapacityModel, pre_failure_loads: &[f64]) -> Vec<f64> {
    let mut loaded: Vec<f64> = pre_failure_loads
        .iter()
        .copied()
        .filter(|&l| l > 0.0)
        .collect();
    if loaded.is_empty() {
        return vec![1.0; pre_failure_loads.len()];
    }
    loaded.sort_by(|a, b| a.partial_cmp(b).expect("loads are finite"));
    let median = loaded[loaded.len() / 2];
    let backup_capacity = match model.backup {
        BackupRule::Median => median,
        BackupRule::Max => *loaded.last().expect("nonempty"),
        BackupRule::Average => loaded.iter().sum::<f64>() / loaded.len() as f64,
    };

    pre_failure_loads
        .iter()
        .map(|&load| {
            let mut cap = if load > 0.0 { load } else { backup_capacity };
            if model.upgrade_below_median && cap < median {
                cap = median;
            }
            if model.power_of_two {
                cap = next_power_of_two_f64(cap);
            }
            cap
        })
        .collect()
}

/// The smallest power of two `>= x` (for positive `x`).
fn next_power_of_two_f64(x: f64) -> f64 {
    debug_assert!(x > 0.0);
    2.0_f64.powf(x.log2().ceil())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_capacities_match_loads_above_median() {
        let loads = vec![10.0, 20.0, 30.0, 40.0];
        let caps = assign_capacities(&CapacityModel::default(), &loads);
        // median of [10,20,30,40] (upper median) = 30
        assert_eq!(caps, vec![30.0, 30.0, 30.0, 40.0]);
    }

    #[test]
    fn backup_links_get_median() {
        let loads = vec![0.0, 10.0, 20.0, 30.0];
        let caps = assign_capacities(&CapacityModel::default(), &loads);
        assert_eq!(caps[0], 20.0, "backup gets median of loaded links");
    }

    #[test]
    fn backup_max_rule() {
        let model = CapacityModel {
            backup: BackupRule::Max,
            upgrade_below_median: false,
            power_of_two: false,
        };
        let caps = assign_capacities(&model, &[0.0, 10.0, 30.0]);
        assert_eq!(caps[0], 30.0);
        assert_eq!(caps[1], 10.0, "no upgrade when disabled");
    }

    #[test]
    fn backup_average_rule() {
        let model = CapacityModel {
            backup: BackupRule::Average,
            upgrade_below_median: false,
            power_of_two: false,
        };
        let caps = assign_capacities(&model, &[0.0, 10.0, 30.0]);
        assert_eq!(caps[0], 20.0);
    }

    #[test]
    fn power_of_two_rounds_up() {
        let model = CapacityModel {
            backup: BackupRule::Median,
            upgrade_below_median: false,
            power_of_two: true,
        };
        let caps = assign_capacities(&model, &[3.0, 4.0, 5.0]);
        assert_eq!(caps, vec![4.0, 4.0, 8.0]);
    }

    #[test]
    fn all_zero_loads_get_unit_capacity() {
        let caps = assign_capacities(&CapacityModel::default(), &[0.0, 0.0]);
        assert_eq!(caps, vec![1.0, 1.0]);
    }

    #[test]
    fn capacities_always_positive() {
        let caps = assign_capacities(&CapacityModel::default(), &[0.0, 0.001, 7.3, 1e9]);
        assert!(caps.iter().all(|&c| c > 0.0));
    }

    #[test]
    fn empty_input() {
        let caps = assign_capacities(&CapacityModel::default(), &[]);
        assert!(caps.is_empty());
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn capacity_at_least_load(loads in proptest::collection::vec(0.0f64..1e6, 0..50)) {
                let caps = assign_capacities(&CapacityModel::default(), &loads);
                for (c, l) in caps.iter().zip(&loads) {
                    prop_assert!(c + 1e-12 >= *l, "capacity {c} below load {l}");
                }
            }

            #[test]
            fn pow2_caps_are_powers_of_two(loads in proptest::collection::vec(0.001f64..1e6, 1..50)) {
                let model = CapacityModel { power_of_two: true, ..CapacityModel::default() };
                let caps = assign_capacities(&model, &loads);
                for c in caps {
                    let l = c.log2();
                    prop_assert!((l - l.round()).abs() < 1e-9, "{c} not a power of two");
                }
            }
        }
    }
}
