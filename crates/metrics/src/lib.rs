//! Routing-quality metrics.
//!
//! Three families, matching the paper's evaluation:
//!
//! * [`distance`] — percentage distance gains relative to default routing
//!   (Figures 4, 5, 6, 9b, 10),
//! * [`mel`](mod@mel) — Maximum Excess Load, the paper's overload metric: the
//!   maximum ratio of post-failure offered load to capacity across the
//!   links of a topology (Figures 7, 8, 9a, 11),
//! * [`fortz`] — the Fortz–Thorup piecewise-linear link cost, the paper's
//!   LP-based alternate ISP objective for the robustness ablation.

pub mod distance;
pub mod fortz;
pub mod mel;

pub use distance::{flow_gains, percent_gain, DistanceGains};
pub use fortz::{fortz_cost, fortz_link_cost};
pub use mel::{mel, side_mels};
