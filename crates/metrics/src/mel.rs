//! Maximum Excess Load (MEL).
//!
//! The paper's overload metric (§5.2): *"the maximum ratio of load after
//! and before the failure on any link in the topology"*, where the
//! denominator is the capacity assigned from pre-failure loads (see
//! [`nexit_workload::capacity`]). A MEL of 1.0 means no link's offered
//! load grew past its capacity; higher values measure how much the worst
//! link is over-driven.

use nexit_workload::LinkLoads;

/// MEL over one link set: `max_l load[l] / capacity[l]`.
///
/// Links with zero capacity are impossible by construction (capacity
/// assignment returns strictly positive values); debug-asserted here.
/// Returns 0.0 for an empty link set.
pub fn mel(loads: &[f64], capacities: &[f64]) -> f64 {
    assert_eq!(loads.len(), capacities.len(), "loads/capacities mismatch");
    loads
        .iter()
        .zip(capacities)
        .map(|(&l, &c)| {
            debug_assert!(c > 0.0, "zero capacity");
            l / c
        })
        .fold(0.0, f64::max)
}

/// The MELs of both sides of a pair: `(upstream, downstream)`.
pub fn side_mels(loads: &LinkLoads, up_capacities: &[f64], down_capacities: &[f64]) -> (f64, f64) {
    (
        mel(&loads.up, up_capacities),
        mel(&loads.down, down_capacities),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mel_finds_worst_ratio() {
        let loads = [10.0, 30.0, 5.0];
        let caps = [10.0, 10.0, 10.0];
        assert_eq!(mel(&loads, &caps), 3.0);
    }

    #[test]
    fn mel_of_unloaded_topology_is_zero() {
        assert_eq!(mel(&[0.0, 0.0], &[5.0, 1.0]), 0.0);
        assert_eq!(mel(&[], &[]), 0.0);
    }

    #[test]
    fn mel_at_capacity_is_one() {
        assert_eq!(mel(&[7.0], &[7.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_lengths_panic() {
        let _ = mel(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn side_mels_split() {
        let loads = LinkLoads {
            up: vec![4.0],
            down: vec![9.0, 1.0],
        };
        let (u, d) = side_mels(&loads, &[2.0], &[3.0, 10.0]);
        assert_eq!(u, 2.0);
        assert_eq!(d, 3.0);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn mel_bounds(pairs in proptest::collection::vec((0.0f64..1e6, 0.001f64..1e6), 1..64)) {
                let loads: Vec<f64> = pairs.iter().map(|p| p.0).collect();
                let caps: Vec<f64> = pairs.iter().map(|p| p.1).collect();
                let m = mel(&loads, &caps);
                for (l, c) in &pairs {
                    prop_assert!(m + 1e-12 >= l / c);
                }
                prop_assert!(pairs.iter().any(|(l, c)| (l / c - m).abs() < 1e-9));
            }

            #[test]
            fn mel_scales_linearly_with_load(
                pairs in proptest::collection::vec((0.0f64..1e5, 0.001f64..1e5), 1..32),
                k in 0.1f64..10.0,
            ) {
                let loads: Vec<f64> = pairs.iter().map(|p| p.0).collect();
                let scaled: Vec<f64> = loads.iter().map(|l| l * k).collect();
                let caps: Vec<f64> = pairs.iter().map(|p| p.1).collect();
                let m1 = mel(&loads, &caps);
                let m2 = mel(&scaled, &caps);
                prop_assert!((m2 - k * m1).abs() < 1e-6 * m2.max(1.0));
            }
        }
    }
}
