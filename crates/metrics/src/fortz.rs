//! Fortz–Thorup piecewise-linear link cost.
//!
//! The paper's alternate ISP optimization metric (§5.2): *"a metric based
//! on a linear programming formulation of optimal routing [Fortz &
//! Thorup]. This metric minimizes the sum of link costs, where the cost is
//! a piecewise linear function of load with increasing slope."*
//!
//! We use the canonical Fortz–Thorup breakpoints. With utilization
//! `u = load / capacity`, the marginal cost (slope) is:
//!
//! | utilization     | slope |
//! |-----------------|-------|
//! | 0    – 1/3      | 1     |
//! | 1/3  – 2/3      | 3     |
//! | 2/3  – 9/10     | 10    |
//! | 9/10 – 1        | 70    |
//! | 1    – 11/10    | 500   |
//! | > 11/10         | 5000  |
//!
//! Costs are normalized per unit of capacity so links of different sizes
//! contribute comparably.

/// Slope breakpoints: `(utilization_threshold, slope_above_previous)`.
const SEGMENTS: [(f64, f64); 6] = [
    (1.0 / 3.0, 1.0),
    (2.0 / 3.0, 3.0),
    (9.0 / 10.0, 10.0),
    (1.0, 70.0),
    (11.0 / 10.0, 500.0),
    (f64::INFINITY, 5000.0),
];

/// The Fortz–Thorup cost of one link with the given load and capacity.
///
/// Piecewise-linear, convex, increasing; continuous across breakpoints.
/// Expressed in units of capacity: `fortz_link_cost(u * c, c) ==
/// c * fortz_link_cost(u, 1.0)`.
pub fn fortz_link_cost(load: f64, capacity: f64) -> f64 {
    assert!(capacity > 0.0, "capacity must be positive");
    assert!(load >= 0.0, "load must be non-negative");
    let u = load / capacity;
    let mut cost = 0.0;
    let mut prev = 0.0;
    for (threshold, slope) in SEGMENTS {
        let span = (u.min(threshold) - prev).max(0.0);
        cost += slope * span;
        if u <= threshold {
            break;
        }
        prev = threshold;
    }
    cost * capacity
}

/// Total Fortz–Thorup cost of a link set.
pub fn fortz_cost(loads: &[f64], capacities: &[f64]) -> f64 {
    assert_eq!(loads.len(), capacities.len(), "loads/capacities mismatch");
    loads
        .iter()
        .zip(capacities)
        .map(|(&l, &c)| fortz_link_cost(l, c))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_load_zero_cost() {
        assert_eq!(fortz_link_cost(0.0, 10.0), 0.0);
    }

    #[test]
    fn first_segment_linear() {
        // u = 0.2 -> cost = 0.2 (unit capacity)
        assert!((fortz_link_cost(0.2, 1.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn breakpoint_values() {
        // At u=1/3: 1/3.
        assert!((fortz_link_cost(1.0 / 3.0, 1.0) - 1.0 / 3.0).abs() < 1e-12);
        // At u=2/3: 1/3 + 3*(1/3) = 4/3.
        assert!((fortz_link_cost(2.0 / 3.0, 1.0) - 4.0 / 3.0).abs() < 1e-12);
        // At u=9/10: 4/3 + 10*(9/10-2/3) = 4/3 + 10*(7/30) = 4/3 + 7/3 = 11/3.
        assert!((fortz_link_cost(0.9, 1.0) - 11.0 / 3.0).abs() < 1e-12);
        // At u=1: 11/3 + 70*0.1 = 11/3 + 7.
        assert!((fortz_link_cost(1.0, 1.0) - (11.0 / 3.0 + 7.0)).abs() < 1e-12);
    }

    #[test]
    fn overload_is_penalized_steeply() {
        let at_cap = fortz_link_cost(1.0, 1.0);
        let over = fortz_link_cost(1.2, 1.0);
        assert!(over > at_cap + 500.0 * 0.1, "overload slope too shallow");
    }

    #[test]
    fn scales_with_capacity() {
        let unit = fortz_link_cost(0.8, 1.0);
        let big = fortz_link_cost(8.0, 10.0);
        assert!((big - 10.0 * unit).abs() < 1e-9);
    }

    #[test]
    fn total_sums_links() {
        let total = fortz_cost(&[0.2, 0.2], &[1.0, 1.0]);
        assert!((total - 0.4).abs() < 1e-12);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn convex_and_increasing(c in 0.1f64..100.0, u1 in 0.0f64..2.0, du in 0.001f64..0.5) {
                let u2 = u1 + du;
                let f1 = fortz_link_cost(u1 * c, c);
                let f2 = fortz_link_cost(u2 * c, c);
                prop_assert!(f2 > f1, "cost must strictly increase");
                // Convexity: slope over [u1,u2] <= slope over [u2, u2+du].
                let f3 = fortz_link_cost((u2 + du) * c, c);
                let s12 = (f2 - f1) / du;
                let s23 = (f3 - f2) / du;
                // Relative tolerance: slopes reach 5000 * capacity, where
                // absolute 1e-9 slack is below f64 rounding noise.
                prop_assert!(s23 + 1e-6 * s12.abs().max(1.0) >= s12, "cost must be convex");
            }

            #[test]
            fn continuous_at_breakpoints(c in 0.1f64..100.0) {
                for bp in [1.0/3.0, 2.0/3.0, 0.9, 1.0, 1.1] {
                    let eps = 1e-9;
                    let below = fortz_link_cost((bp - eps) * c, c);
                    let above = fortz_link_cost((bp + eps) * c, c);
                    prop_assert!((above - below).abs() < 1e-4 * c);
                }
            }
        }
    }
}
