//! Percentage distance gains relative to default routing.
//!
//! The paper reports every distance result as *"the percentage reduction
//! in the distance relative to the default routing"* — total across both
//! ISPs (Fig. 4a), per ISP (Fig. 4b), and per flow (Fig. 6).

use nexit_routing::{assignment, Assignment, PairFlows};

/// `100 * (default - other) / default`, i.e. the percentage reduction of
/// `other` relative to `default`. Positive means `other` is better
/// (shorter). Zero when `default` is zero (both are zero-length).
pub fn percent_gain(default: f64, other: f64) -> f64 {
    if default == 0.0 {
        0.0
    } else {
        100.0 * (default - other) / default
    }
}

/// The distance-gain decomposition of one routing outcome versus the
/// default assignment, over one directed flow set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceGains {
    /// Percentage reduction of total (both-ISP) distance.
    pub total_pct: f64,
    /// Percentage reduction of distance inside the upstream ISP.
    pub upstream_pct: f64,
    /// Percentage reduction of distance inside the downstream ISP.
    pub downstream_pct: f64,
}

impl DistanceGains {
    /// Compare `candidate` with `default` over `flows`.
    pub fn compute(
        flows: &PairFlows,
        default: &Assignment,
        candidate: &Assignment,
    ) -> DistanceGains {
        let d_total = assignment::total_distance_km(flows, default);
        let c_total = assignment::total_distance_km(flows, candidate);
        let d_up = assignment::side_distance_km(flows, default, true);
        let c_up = assignment::side_distance_km(flows, candidate, true);
        let d_down = assignment::side_distance_km(flows, default, false);
        let c_down = assignment::side_distance_km(flows, candidate, false);
        DistanceGains {
            total_pct: percent_gain(d_total, c_total),
            upstream_pct: percent_gain(d_up, c_up),
            downstream_pct: percent_gain(d_down, c_down),
        }
    }
}

/// Per-flow percentage gains of `candidate` over `default` (Fig. 6's
/// flow-level view). Unweighted by volume: each flow is one sample.
pub fn flow_gains(flows: &PairFlows, default: &Assignment, candidate: &Assignment) -> Vec<f64> {
    flows
        .iter()
        .map(|(id, _, m)| {
            percent_gain(
                m.total_km(default.choice(id)),
                m.total_km(candidate.choice(id)),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexit_routing::{FlowId, PairFlows, ShortestPaths};
    use nexit_topology::{
        GeoPoint, IcxId, Interconnection, IspId, IspPair, IspTopology, Link, PairView, Pop, PopId,
    };

    #[test]
    fn percent_gain_basic() {
        assert_eq!(percent_gain(100.0, 80.0), 20.0);
        assert_eq!(percent_gain(100.0, 120.0), -20.0);
        assert_eq!(percent_gain(0.0, 5.0), 0.0);
        assert_eq!(percent_gain(50.0, 50.0), 0.0);
    }

    fn pop(city: &str, lon: f64) -> Pop {
        Pop {
            city: city.into(),
            geo: GeoPoint::new(0.0, lon),
            weight: 1.0,
        }
    }

    fn line(id: u32, n: usize) -> IspTopology {
        let pops = (0..n).map(|i| pop(&format!("c{i}"), i as f64)).collect();
        let links = (0..n - 1)
            .map(|i| Link {
                a: PopId::new(i),
                b: PopId::new(i + 1),
                weight: 100.0,
                length_km: 100.0,
            })
            .collect();
        IspTopology::new(IspId(id), format!("L{id}"), pops, links, false).unwrap()
    }

    fn fixture() -> (IspTopology, IspTopology, IspPair) {
        let a = line(0, 3);
        let b = line(1, 3);
        let pair = IspPair::new(
            &a,
            &b,
            vec![
                Interconnection {
                    pop_a: PopId(0),
                    pop_b: PopId(0),
                    length_km: 0.0,
                },
                Interconnection {
                    pop_a: PopId(2),
                    pop_b: PopId(2),
                    length_km: 0.0,
                },
            ],
        )
        .unwrap();
        (a, b, pair)
    }

    #[test]
    fn gains_decompose() {
        let (a, b, pair) = fixture();
        let view = PairView::new(&a, &b, &pair);
        let sp_a = ShortestPaths::compute(&a);
        let sp_b = ShortestPaths::compute(&b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let default = Assignment::uniform(flows.len(), IcxId(0));
        // Move flow a2->b2 (id 8) to icx 1: upstream 200->0, downstream 200->0.
        let mut better = default.clone();
        better.set(FlowId(8), IcxId(1));
        let g = DistanceGains::compute(&flows, &default, &better);
        assert!(g.total_pct > 0.0);
        assert!(g.upstream_pct > 0.0);
        assert!(g.downstream_pct > 0.0);
        // Identical assignments have zero gain.
        let zero = DistanceGains::compute(&flows, &default, &default);
        assert_eq!(zero.total_pct, 0.0);
    }

    #[test]
    fn flow_gains_identify_the_changed_flow() {
        let (a, b, pair) = fixture();
        let view = PairView::new(&a, &b, &pair);
        let sp_a = ShortestPaths::compute(&a);
        let sp_b = ShortestPaths::compute(&b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let default = Assignment::uniform(flows.len(), IcxId(0));
        let mut better = default.clone();
        better.set(FlowId(8), IcxId(1)); // a2->b2: 400 km -> 0 km
        let gains = flow_gains(&flows, &default, &better);
        assert_eq!(gains.len(), 9);
        assert_eq!(gains[8], 100.0);
        assert!(gains[..8].iter().all(|&g| g == 0.0));
    }
}
