//! Negotiation results and transcripts.

use nexit_routing::{Assignment, FlowId};
use nexit_topology::IcxId;

/// Which side of the pair an ISP is on. `A` is the upstream in directed
/// experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The A (upstream) ISP.
    A,
    /// The B (downstream) ISP.
    B,
}

serde::impl_json_enum!(Side { A, B });

impl Side {
    /// The opposite side.
    #[inline]
    pub fn other(self) -> Side {
        match self {
            Side::A => Side::B,
            Side::B => Side::A,
        }
    }
}

impl std::fmt::Display for Side {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Side::A => write!(f, "ISP-A"),
            Side::B => write!(f, "ISP-B"),
        }
    }
}

/// One round of the negotiation, for replay and protocol integration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundRecord {
    /// Round number, starting at 0.
    pub round: usize,
    /// Which ISP proposed.
    pub proposer: Side,
    /// The flow proposed (global id).
    pub flow: FlowId,
    /// The proposed alternative.
    pub alternative: IcxId,
    /// Whether the other ISP accepted.
    pub accepted: bool,
    /// Whether the acceptance was later reverted by the end-of-session
    /// rollback (credit-veto mode only).
    pub reverted: bool,
}

/// Why the negotiation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// Every flow in the session was negotiated.
    Exhausted,
    /// An ISP stopped under the early/full termination policy.
    Stopped(Side),
}

/// Complete result of one negotiation session.
#[derive(Debug, Clone)]
pub struct NegotiationOutcome {
    /// The final full assignment: negotiated flows moved, everything else
    /// at its default.
    pub assignment: Assignment,
    /// Per-round transcript.
    pub transcript: Vec<RoundRecord>,
    /// Cumulative *true* preference gain of ISP-A (pref units).
    pub gain_a: i64,
    /// Cumulative *true* preference gain of ISP-B (pref units).
    pub gain_b: i64,
    /// Cumulative *disclosed* gains (differ from true only when cheating).
    pub disclosed_gain_a: i64,
    /// See [`NegotiationOutcome::disclosed_gain_a`].
    pub disclosed_gain_b: i64,
    /// How the session ended.
    pub termination: Termination,
    /// Number of preference reassignments performed.
    pub reassignments: usize,
}

impl NegotiationOutcome {
    /// True cumulative gain of one side.
    pub fn gain(&self, side: Side) -> i64 {
        match side {
            Side::A => self.gain_a,
            Side::B => self.gain_b,
        }
    }

    /// Number of flows actually negotiated (accepted proposals).
    pub fn flows_negotiated(&self) -> usize {
        self.transcript.iter().filter(|r| r.accepted).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_other() {
        assert_eq!(Side::A.other(), Side::B);
        assert_eq!(Side::B.other(), Side::A);
        assert_eq!(Side::A.to_string(), "ISP-A");
    }

    #[test]
    fn outcome_accessors() {
        let o = NegotiationOutcome {
            assignment: Assignment::from_choices(vec![]),
            transcript: vec![
                RoundRecord {
                    round: 0,
                    proposer: Side::A,
                    flow: FlowId(0),
                    alternative: IcxId(1),
                    accepted: true,
                    reverted: false,
                },
                RoundRecord {
                    round: 1,
                    proposer: Side::B,
                    flow: FlowId(1),
                    alternative: IcxId(0),
                    accepted: false,
                    reverted: false,
                },
            ],
            gain_a: 3,
            gain_b: -1,
            disclosed_gain_a: 3,
            disclosed_gain_b: -1,
            termination: Termination::Exhausted,
            reassignments: 0,
        };
        assert_eq!(o.gain(Side::A), 3);
        assert_eq!(o.gain(Side::B), -1);
        assert_eq!(o.flows_negotiated(), 1);
    }
}
