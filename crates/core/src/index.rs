//! Incrementally maintained candidate index for the round loop.
//!
//! The reference selection functions ([`crate::selection`]) rescan the
//! whole `flows × alternatives` table — and re-sort every remaining flow
//! for the stop projection — on every round, making a session
//! O(rounds × flows × alts) when only one cell changes per round. This
//! module turns both queries into priority-structure lookups whose
//! amortized per-event cost is logarithmic:
//!
//! * **Proposal selection** keeps, per flow, its best alternative under
//!   the active [`ProposalRule`] in lazy max-heaps keyed by
//!   `(key, flow, alt)`. Because the self-guard ("never propose an
//!   alternative that would push my own true cumulative gain negative")
//!   admits exactly the alternatives whose true class is at least
//!   `-floor`, and classes are integers in `[-P, P]`, there are only
//!   `2P + 2` distinct guard thresholds — the index maintains one
//!   per-flow-best row and heap *per threshold* (materialized lazily on
//!   a threshold's first use), so a guard-floor crossing simply selects
//!   a different heap instead of invalidating anything.
//! * **Stop projection** keeps every remaining flow's combined-best
//!   entry in a segment tree ordered like the reference sort
//!   (combined sum descending, flow index ascending) whose nodes
//!   aggregate `(sum, best nonempty prefix sum)`, so
//!   [`CandidateIndex::projected_gain`] is an O(1) root read.
//!
//! Only three events can change a decision, and each maps to a cheap
//! index update: an **accept** removes the flow (lazy heap invalidation
//! plus one tree clear), a **veto** bans one `(flow, alt)` cell
//! (recompute that flow's rows in O(alts + P)), and a **reassignment**
//! replaces the disclosed tables (full rebuild, amortized over the
//! traffic-volume interval between reassignments).
//!
//! The index is property-tested to take bit-identical decisions to the
//! reference scans over randomized accept/veto/rebuild interleavings;
//! for pathologically large preference ranges (where materializing
//! `2P + 2` threshold rows would not pay for itself) it transparently
//! delegates to the reference implementation.

use crate::arena::{FlowRange, TableArena};
use crate::policies::ProposalRule;
use crate::prefs::PrefTable;
use crate::selection::{self, TableState};
use nexit_topology::IcxId;
use std::collections::BinaryHeap;

/// Above this preference range the per-threshold rows are not worth
/// materializing and the index delegates to the reference scans.
const MAX_INDEXED_PREF_RANGE: i32 = 256;

/// Cap on the stop-projection tree's leaf count
/// (`(4P + 2) × num_flows`, padded to a power of two). Beyond this the
/// tree's memory and per-rebuild clear cost would dwarf the rescans it
/// replaces, so the index delegates instead. 2²⁰ leaves ≈ 34 MB of
/// node arrays — far above any paper-scale session (P = 10, 4000 flows
/// is ~170 k leaves) but a hard ceiling for pathological `P × flows`
/// combinations.
const MAX_PROJECTION_LEAVES: usize = 1 << 20;

/// Selection key of one `(flow, alt)` cell under a [`ProposalRule`]:
/// `(primary, secondary, prefer-default-on-tie)`, compared
/// lexicographically. Mirrors the reference implementation in
/// [`selection::select_proposal`].
type Key = (i64, i64, i64);

/// One flow's current best alternative (within one guard-threshold row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Candidate {
    key: Key,
    alt: u32,
}

/// A lazy heap entry. Ordered so the heap maximum is the cell the
/// reference scan would pick: highest key, then lowest flow, then lowest
/// alternative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapEntry {
    key: Key,
    flow: usize,
    alt: u32,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key
            .cmp(&other.key)
            .then_with(|| other.flow.cmp(&self.flow))
            .then_with(|| other.alt.cmp(&self.alt))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Fixed-shape segment tree whose leaves hold the remaining flows'
/// combined-best own-true values, in the reference projection order, and
/// whose nodes aggregate `(segment sum, best nonempty prefix sum)`.
#[derive(Debug, Clone, Default)]
struct PrefixTree {
    /// Leaf count, padded to a power of two (possibly 1 for an empty
    /// session).
    leaves: usize,
    sum: Vec<i64>,
    /// `i64::MIN` marks an empty segment.
    best: Vec<i64>,
}

impl PrefixTree {
    /// Resize to hold `min_leaves` leaves and clear, keeping whatever
    /// backing capacity the node arrays already have.
    fn reshape(&mut self, min_leaves: usize) {
        let leaves = min_leaves.next_power_of_two().max(1);
        self.leaves = leaves;
        self.sum.clear();
        self.sum.resize(2 * leaves, 0);
        self.best.clear();
        self.best.resize(2 * leaves, i64::MIN);
    }

    fn clear(&mut self) {
        self.sum.fill(0);
        self.best.fill(i64::MIN);
    }

    /// Set or clear one leaf and recompute its ancestors.
    fn set(&mut self, pos: usize, value: Option<i64>) {
        let mut i = self.leaves + pos;
        match value {
            Some(v) => {
                self.sum[i] = v;
                self.best[i] = v;
            }
            None => {
                self.sum[i] = 0;
                self.best[i] = i64::MIN;
            }
        }
        i /= 2;
        while i >= 1 {
            let (l, r) = (2 * i, 2 * i + 1);
            self.sum[i] = self.sum[l] + self.sum[r];
            // A prefix either ends inside the left child or spans it.
            // The saturating add keeps the empty sentinel absorbing.
            self.best[i] = self.best[l].max(self.sum[l].saturating_add(self.best[r]));
            i /= 2;
        }
    }

    /// Best nonempty prefix sum over all leaves (`i64::MIN` when empty).
    fn root_best(&self) -> i64 {
        self.best[1]
    }
}

/// The materialized index. Every buffer survives retirement: a session
/// sweep recycles one `Indexed` through a [`TableArena`] instead of
/// reallocating heaps and trees per session (see
/// [`CandidateIndex::view`]).
#[derive(Debug, Default)]
struct Indexed {
    /// Guard-threshold rows, materialized lazily and stored flat (like
    /// every other table in the crate): `best_at[ti * num_flows + flow]`
    /// is the flow's best alternative among those threshold `ti` admits
    /// (`own_true >= ti - P`), `None` when it admits none. Row 0 admits
    /// every alternative (no guard / non-binding guard) and is the only
    /// row most configurations ever touch; a row is built on the first
    /// [`CandidateIndex::select`] whose guard floor maps to it and
    /// maintained incrementally afterwards. An unbuilt row holds stale
    /// cells that are fully overwritten on materialization (`built`
    /// tracks validity).
    best_at: Vec<Option<Candidate>>,
    /// Flows per threshold row of `best_at` (the session size).
    row_len: usize,
    /// One lazy max-heap per guard threshold (empty while unbuilt).
    heaps: Vec<BinaryHeap<HeapEntry>>,
    /// Which threshold rows are currently materialized.
    built: Vec<bool>,
    /// Whether the stop projection is maintained (only under
    /// [`crate::StopPolicy::Early`]); the tree and slots below are kept
    /// at minimal size otherwise, retaining their capacity.
    projection: bool,
    tree: PrefixTree,
    /// Per flow: `(bucket, own-true value)` of its tree leaf, `None`
    /// when the flow is settled (or the index is empty).
    slot: Vec<Option<(usize, i64)>>,
}

impl Indexed {
    /// Resize every structure for a session of `num_flows` flows and
    /// `num_thresholds` guard rows, clearing contents but keeping
    /// backing capacity.
    fn reshape(&mut self, num_thresholds: usize, num_flows: usize, projection: bool) {
        self.built.clear();
        self.built.resize(num_thresholds, false);
        self.best_at.clear();
        self.best_at.resize(num_thresholds * num_flows, None);
        self.row_len = num_flows;
        self.heaps.truncate(num_thresholds);
        for heap in &mut self.heaps {
            heap.clear();
        }
        self.heaps.resize_with(num_thresholds, BinaryHeap::new);
        self.projection = projection;
        let min_leaves = if projection {
            (2 * num_thresholds).saturating_sub(2).max(1) * num_flows
        } else {
            1
        };
        self.tree.reshape(min_leaves);
        self.slot.clear();
        self.slot.resize(num_flows, None);
    }
}

/// The recyclable allocations of a retired [`CandidateIndex`]: pass them
/// back through [`TableArena`] so the next session's index (of any
/// shape) reuses them. Opaque; obtained from
/// [`CandidateIndex::recycle`].
#[derive(Default)]
pub struct IndexBuffers {
    inner: Box<Indexed>,
    defaults: Vec<IcxId>,
}

enum Mode {
    Indexed(Box<Indexed>),
    /// Delegate to the reference scans (preference range too large to
    /// index profitably). The retired buffers ride along so recycling
    /// still returns them to the arena.
    Fallback {
        spare: Box<Indexed>,
    },
}

/// Incremental replacement for [`selection::select_proposal`] and
/// [`selection::projected_gain`], maintained by the three events that
/// can change their answers: accept, veto, reassignment. See the module
/// docs for the structure; see [`crate::machine::NegotiationMachine`]
/// for the single production consumer.
///
/// All preference tables handed to the index must be within the
/// configured range (`within_range(pref_range)`), which the machine
/// guarantees for both quantized true tables and validated disclosed
/// tables.
pub struct CandidateIndex {
    rule: ProposalRule,
    p: i64,
    num_alternatives: usize,
    defaults: Vec<IcxId>,
    mode: Mode,
}

impl CandidateIndex {
    /// An empty index for a session shape. `with_projection` materializes
    /// the stop-projection tree (needed only under
    /// [`crate::StopPolicy::Early`]). The index holds no table data until
    /// the first [`CandidateIndex::rebuild`].
    pub fn new(
        rule: ProposalRule,
        pref_range: i32,
        defaults: &[IcxId],
        num_alternatives: usize,
        with_projection: bool,
    ) -> Self {
        Self::view(
            IndexBuffers::default(),
            rule,
            pref_range,
            defaults,
            FlowRange::full(defaults.len()),
            num_alternatives,
            with_projection,
        )
    }

    /// [`CandidateIndex::new`] drawing its buffers from (and eventually
    /// returning them to) an arena, so back-to-back sessions allocate
    /// index structures once.
    pub fn new_in(
        arena: &mut TableArena,
        rule: ProposalRule,
        pref_range: i32,
        defaults: &[IcxId],
        num_alternatives: usize,
        with_projection: bool,
    ) -> Self {
        Self::view(
            arena.index_buffers(),
            rule,
            pref_range,
            defaults,
            FlowRange::full(defaults.len()),
            num_alternatives,
            with_projection,
        )
    }

    /// An index over one [`FlowRange`] of a larger shared session:
    /// `session_defaults` is the whole session's default list and
    /// `range` selects the covered flows (which become local indices
    /// `0..range.len` of this index). `bufs` — typically the previous
    /// group's retired index — supplies every internal allocation, so a
    /// sweep over many groups sets up in O(total flows) with exactly one
    /// set of backing buffers.
    ///
    /// This is the one real constructor: [`CandidateIndex::new`] and
    /// [`CandidateIndex::new_in`] are full-range views, so every machine
    /// (and every group of an arena-threaded sweep) builds its index
    /// through this path.
    pub fn view(
        bufs: IndexBuffers,
        rule: ProposalRule,
        pref_range: i32,
        session_defaults: &[IcxId],
        range: FlowRange,
        num_alternatives: usize,
        with_projection: bool,
    ) -> Self {
        let IndexBuffers {
            inner,
            defaults: mut buf,
        } = bufs;
        buf.clear();
        buf.extend_from_slice(&session_defaults[range.indices()]);
        Self::build(
            rule,
            pref_range,
            buf,
            num_alternatives,
            with_projection,
            inner,
        )
    }

    /// Retire the index, returning its buffers to `arena` for the next
    /// [`CandidateIndex::new_in`] / [`CandidateIndex::view`].
    pub fn recycle(self, arena: &mut TableArena) {
        let inner = match self.mode {
            Mode::Indexed(ix) => ix,
            Mode::Fallback { spare } => spare,
        };
        arena.recycle_index(IndexBuffers {
            inner,
            defaults: self.defaults,
        });
    }

    fn build(
        rule: ProposalRule,
        pref_range: i32,
        defaults: Vec<IcxId>,
        num_alternatives: usize,
        with_projection: bool,
        mut inner: Box<Indexed>,
    ) -> Self {
        let num_flows = defaults.len();
        let projection_leaves = (4 * pref_range.max(0) as usize + 2).saturating_mul(num_flows);
        let mode = if pref_range > MAX_INDEXED_PREF_RANGE
            || (with_projection && projection_leaves > MAX_PROJECTION_LEAVES)
        {
            Mode::Fallback { spare: inner }
        } else {
            let p = pref_range as usize;
            // Buckets 0..=4P of the projection tree hold combined sums 2P
            // down to -2P; the extra bucket 4P+1 holds flows with every
            // alternative banned (combined sum `i64::MIN` in the
            // reference). `reshape` sizes the tree accordingly from the
            // threshold count.
            inner.reshape(2 * p + 2, num_flows, with_projection);
            Mode::Indexed(inner)
        };
        Self {
            rule,
            p: i64::from(pref_range),
            num_alternatives,
            defaults,
            mode,
        }
    }

    /// Rebuild from scratch — used at every (re)disclosure, when the
    /// tables themselves change. `state` carries over accepts and bans
    /// from earlier rounds.
    pub fn rebuild(
        &mut self,
        d_own: &PrefTable,
        d_other: &PrefTable,
        own_true: &PrefTable,
        state: &TableState,
    ) {
        let p = self.p;
        let num_flows = self.defaults.len();
        let Mode::Indexed(ix) = &mut self.mode else {
            return;
        };
        // Invalidate every threshold row; each rematerializes on the
        // first select() that needs it, against the new tables (stale
        // `best_at` cells are overwritten wholesale then).
        for ti in 0..ix.built.len() {
            ix.built[ti] = false;
            ix.heaps[ti].clear();
        }
        if ix.projection {
            ix.tree.clear();
            for flow in 0..num_flows {
                ix.slot[flow] = None;
                if state.is_remaining(flow) {
                    let (bucket, value) = projection_entry(
                        p,
                        &self.defaults,
                        self.num_alternatives,
                        d_own,
                        d_other,
                        own_true,
                        state,
                        flow,
                    );
                    ix.slot[flow] = Some((bucket, value));
                    ix.tree.set(bucket * num_flows + flow, Some(value));
                }
            }
        }
    }

    /// Apply an accepted proposal: the flow left the table. Call *after*
    /// [`TableState::accept`].
    pub fn on_accept(&mut self, flow: usize) {
        let num_flows = self.defaults.len();
        let Mode::Indexed(ix) = &mut self.mode else {
            return;
        };
        // Heap entries for the flow die lazily via the remaining check.
        if ix.projection {
            if let Some((bucket, _)) = ix.slot[flow].take() {
                ix.tree.set(bucket * num_flows + flow, None);
            }
        }
    }

    /// Apply a vetoed proposal: one `(flow, alt)` cell was withdrawn.
    /// Call *after* [`TableState::ban`].
    pub fn on_ban(
        &mut self,
        d_own: &PrefTable,
        d_other: &PrefTable,
        own_true: &PrefTable,
        state: &TableState,
        flow: usize,
    ) {
        let p = self.p;
        let num_flows = self.defaults.len();
        let Mode::Indexed(ix) = &mut self.mode else {
            return;
        };
        // Recompute the flow's entry in every materialized row.
        for ti in 0..ix.built.len() {
            if !ix.built[ti] {
                continue;
            }
            let row = row_candidate(
                self.rule,
                p,
                &self.defaults,
                self.num_alternatives,
                d_own,
                d_other,
                own_true,
                state,
                flow,
                ti as i64 - p,
            );
            if ix.best_at[ti * ix.row_len + flow] != row {
                ix.best_at[ti * ix.row_len + flow] = row;
                if state.is_remaining(flow) {
                    if let Some(c) = row {
                        ix.heaps[ti].push(HeapEntry {
                            key: c.key,
                            flow,
                            alt: c.alt,
                        });
                    }
                }
            }
        }
        if ix.projection && state.is_remaining(flow) {
            let entry = projection_entry(
                p,
                &self.defaults,
                self.num_alternatives,
                d_own,
                d_other,
                own_true,
                state,
                flow,
            );
            if ix.slot[flow] != Some(entry) {
                if let Some((old_bucket, _)) = ix.slot[flow] {
                    ix.tree.set(old_bucket * num_flows + flow, None);
                }
                ix.slot[flow] = Some(entry);
                ix.tree.set(entry.0 * num_flows + flow, Some(entry.1));
            }
        }
    }

    /// The proposer's choice, bit-identical to
    /// [`selection::select_proposal`]. `&mut` only to discard stale lazy
    /// heap entries; the logical content never changes.
    pub fn select(
        &mut self,
        d_own: &PrefTable,
        d_other: &PrefTable,
        state: &TableState,
        self_guard: Option<(&PrefTable, i64)>,
    ) -> Option<(usize, IcxId)> {
        let p = self.p;
        let ix = match &mut self.mode {
            Mode::Fallback { .. } => {
                return selection::select_proposal(
                    d_own,
                    d_other,
                    state,
                    self.num_alternatives,
                    self.rule,
                    self_guard,
                    &self.defaults,
                );
            }
            Mode::Indexed(ix) => ix,
        };
        // The guard admits alternatives with own_true >= -floor; map the
        // (possibly unbounded) floor onto the materialized thresholds.
        let ti = match self_guard {
            None => 0,
            Some((_, floor)) => (floor.saturating_neg().clamp(-p, p + 1) + p) as usize,
        };
        if !ix.built[ti] {
            // First use of this guard threshold since the last rebuild:
            // materialize its row and heap in one pass.
            let threshold = ti as i64 - p;
            let row = &mut ix.best_at[ti * ix.row_len..(ti + 1) * ix.row_len];
            let mut feed = Vec::new();
            for (flow, slot) in row.iter_mut().enumerate() {
                let c = row_candidate(
                    self.rule,
                    p,
                    &self.defaults,
                    self.num_alternatives,
                    d_own,
                    d_other,
                    self_guard.map_or(d_own, |(own_true, _)| own_true),
                    state,
                    flow,
                    threshold,
                );
                *slot = c;
                if state.is_remaining(flow) {
                    if let Some(c) = c {
                        feed.push(HeapEntry {
                            key: c.key,
                            flow,
                            alt: c.alt,
                        });
                    }
                }
            }
            ix.heaps[ti] = BinaryHeap::from(feed);
            ix.built[ti] = true;
        }
        let heap = &mut ix.heaps[ti];
        while let Some(top) = heap.peek() {
            let current = ix.best_at[ti * ix.row_len + top.flow];
            if state.is_remaining(top.flow)
                && current
                    == Some(Candidate {
                        key: top.key,
                        alt: top.alt,
                    })
            {
                return Some((top.flow, IcxId::new(top.alt as usize)));
            }
            heap.pop();
        }
        None
    }

    /// The early-termination projection, bit-identical to
    /// [`selection::projected_gain`]. O(1) in indexed mode.
    ///
    /// Panics if the index was built without projection support (the
    /// machine only asks under [`crate::StopPolicy::Early`], which sets
    /// `with_projection`).
    pub fn projected_gain(
        &self,
        own_true: &PrefTable,
        d_own: &PrefTable,
        d_other: &PrefTable,
        state: &TableState,
    ) -> i64 {
        match &self.mode {
            Mode::Fallback { .. } => selection::projected_gain(
                own_true,
                d_own,
                d_other,
                state,
                self.num_alternatives,
                &self.defaults,
            ),
            Mode::Indexed(ix) => {
                assert!(
                    ix.projection,
                    "projection queried on an index built without it"
                );
                match ix.tree.root_best() {
                    i64::MIN => 0,
                    best => best,
                }
            }
        }
    }
}

/// One flow's best non-banned alternative among those whose own true
/// class is at least `threshold`, by `(key, lowest alt)` — exactly the
/// reference scan's pick order within a flow. A threshold of `-P`
/// admits every alternative (classes are clamped into `[-P, P]`), so
/// callers without a binding guard may pass any table as `own_true`.
#[allow(clippy::too_many_arguments)] // parallel tables, mirrors selection::
fn row_candidate(
    rule: ProposalRule,
    p: i64,
    defaults: &[IcxId],
    num_alternatives: usize,
    d_own: &PrefTable,
    d_other: &PrefTable,
    own_true: &PrefTable,
    state: &TableState,
    flow: usize,
    threshold: i64,
) -> Option<Candidate> {
    let mut best: Option<Candidate> = None;
    for alt in 0..num_alternatives {
        if state.is_banned(flow, alt) {
            continue;
        }
        let id = IcxId::new(alt);
        if i64::from(own_true.get(flow, id)).clamp(-p, p) < threshold {
            continue;
        }
        let o = i64::from(d_own.get(flow, id));
        let t = i64::from(d_other.get(flow, id));
        let bias = i64::from(id == defaults[flow]);
        let key = match rule {
            ProposalRule::MaxCombined => (o + t, o, bias),
            ProposalRule::BestLocalMinHarm => (o, t, bias),
        };
        let alt = alt as u32;
        if best.is_none_or(|b| key > b.key || (key == b.key && alt < b.alt)) {
            best = Some(Candidate { key, alt });
        }
    }
    best
}

/// One flow's stop-projection entry `(bucket, own-true value)`: the
/// combined-best pick of the reference implementation, mapped onto the
/// tree's bucket order (combined sum descending; the final bucket holds
/// fully-banned flows, whose reference sentinel is `i64::MIN` with the
/// alternative defaulting to index 0).
#[allow(clippy::too_many_arguments)] // parallel tables, mirrors selection::
fn projection_entry(
    p: i64,
    defaults: &[IcxId],
    num_alternatives: usize,
    d_own: &PrefTable,
    d_other: &PrefTable,
    own_true: &PrefTable,
    state: &TableState,
    flow: usize,
) -> (usize, i64) {
    let (alt, combined) = selection::combined_best(
        d_own,
        d_other,
        state,
        flow,
        num_alternatives,
        defaults[flow],
    );
    let bucket = if combined == i64::MIN {
        (4 * p + 1) as usize
    } else {
        (2 * p - combined) as usize
    };
    (bucket, i64::from(own_true.get(flow, alt)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference twin of an index over shared state: every operation is
    /// applied to both, every query must agree.
    struct Harness {
        d_own: PrefTable,
        d_other: PrefTable,
        own_true: PrefTable,
        defaults: Vec<IcxId>,
        state: TableState,
        index: CandidateIndex,
        rule: ProposalRule,
        k: usize,
    }

    impl Harness {
        fn new(
            rule: ProposalRule,
            p: i32,
            tables: (PrefTable, PrefTable, PrefTable),
            defaults: Vec<IcxId>,
            k: usize,
        ) -> Self {
            let (d_own, d_other, own_true) = tables;
            let n = defaults.len();
            let state = TableState::new(n, k);
            let mut index = CandidateIndex::new(rule, p, &defaults, k, true);
            index.rebuild(&d_own, &d_other, &own_true, &state);
            Self {
                d_own,
                d_other,
                own_true,
                defaults,
                state,
                index,
                rule,
                k,
            }
        }

        fn select_unguarded(&mut self) -> Option<(usize, IcxId)> {
            self.index
                .select(&self.d_own, &self.d_other, &self.state, None)
        }

        fn check(&mut self, floor: i64) {
            // Unguarded and guarded selection.
            for guard in [None, Some((&self.own_true, floor))] {
                let reference = selection::select_proposal(
                    &self.d_own,
                    &self.d_other,
                    &self.state,
                    self.k,
                    self.rule,
                    guard,
                    &self.defaults,
                );
                let indexed = self
                    .index
                    .select(&self.d_own, &self.d_other, &self.state, guard);
                assert_eq!(indexed, reference, "select diverged (guard={guard:?})");
            }
            let reference = selection::projected_gain(
                &self.own_true,
                &self.d_own,
                &self.d_other,
                &self.state,
                self.k,
                &self.defaults,
            );
            let indexed =
                self.index
                    .projected_gain(&self.own_true, &self.d_own, &self.d_other, &self.state);
            assert_eq!(indexed, reference, "projected_gain diverged");
        }

        fn ban(&mut self, flow: usize, alt: usize) {
            if self.state.is_banned(flow, alt) {
                return;
            }
            self.state.ban(flow, alt);
            self.index.on_ban(
                &self.d_own,
                &self.d_other,
                &self.own_true,
                &self.state,
                flow,
            );
        }

        fn accept(&mut self, flow: usize) {
            if !self.state.is_remaining(flow) {
                return;
            }
            self.state.accept(flow);
            self.index.on_accept(flow);
        }

        fn reassign(&mut self, tables: (PrefTable, PrefTable, PrefTable)) {
            (self.d_own, self.d_other, self.own_true) = tables;
            self.index
                .rebuild(&self.d_own, &self.d_other, &self.own_true, &self.state);
        }
    }

    fn table<R: AsRef<[i32]>>(rows: &[R]) -> PrefTable {
        PrefTable::from_rows(rows)
    }

    #[test]
    fn matches_reference_on_simple_session() {
        let d_own = table(&[vec![0, 5, 3], vec![0, -2, 7], vec![0, 1, 1]]);
        let d_other = table(&[vec![0, 5, 4], vec![0, 9, -7], vec![0, 1, 1]]);
        let own_true = d_own.clone();
        let defaults = vec![IcxId(0); 3];
        let mut h = Harness::new(
            ProposalRule::MaxCombined,
            10,
            (d_own, d_other, own_true),
            defaults,
            3,
        );
        h.check(0);
        // Accept the top pick, veto the next, re-check after each event.
        let (first_flow, _) = h.select_unguarded().unwrap();
        h.accept(first_flow);
        h.check(0);
        let (next_flow, next_alt) = h.select_unguarded().unwrap();
        assert_ne!(next_flow, first_flow, "accepted flow must leave the table");
        h.ban(next_flow, next_alt.index());
        h.check(0);
    }

    #[test]
    fn fully_banned_flow_matches_reference_projection() {
        // Flow 0 loses every alternative to vetoes but stays remaining;
        // the reference keeps it in the projection with the MIN
        // sentinel. Defaults deliberately non-zero to exercise the
        // sentinel's alternative-0 pick.
        let d_own = table(&[vec![3, 5], vec![0, 2]]);
        let d_other = table(&[vec![1, 5], vec![0, 2]]);
        let own_true = table(&[vec![-4, 5], vec![0, 2]]);
        let mut h = Harness::new(
            ProposalRule::MaxCombined,
            10,
            (d_own, d_other, own_true),
            vec![IcxId(1), IcxId(0)],
            2,
        );
        h.ban(0, 0);
        h.check(0);
        h.ban(0, 1);
        h.check(0);
        h.check(-3);
    }

    #[test]
    fn oversized_projection_falls_back() {
        // P and flow count are each acceptable, but their product would
        // need a hundreds-of-MB projection tree: delegate instead.
        let n = 10_000;
        let index =
            CandidateIndex::new(ProposalRule::MaxCombined, 200, &vec![IcxId(0); n], 2, true);
        assert!(matches!(index.mode, Mode::Fallback { .. }));
        // Without a projection tree the same shape stays indexed.
        let index =
            CandidateIndex::new(ProposalRule::MaxCombined, 200, &vec![IcxId(0); n], 2, false);
        assert!(matches!(index.mode, Mode::Indexed(_)));
    }

    #[test]
    fn view_over_a_range_matches_a_fresh_index() {
        // A "session" of 6 flows split as [0..2), [2..6): the second
        // group's index, built as a view over the shared defaults with
        // recycled buffers, must behave exactly like a fresh index over
        // the sliced defaults.
        let session_defaults = vec![IcxId(0), IcxId(1), IcxId(2), IcxId(0), IcxId(1), IcxId(2)];
        let range = FlowRange::new(2, 4);
        let d_own = table(&[vec![0, 5, 3], vec![0, -2, 7], vec![4, 1, 1], vec![0, 2, -9]]);
        let d_other = table(&[vec![0, 5, 4], vec![0, 9, -7], vec![0, 1, 1], vec![3, 0, 2]]);
        let own_true = table(&[vec![0, -5, 3], vec![0, 2, 7], vec![1, 1, -1], vec![0, 2, 0]]);
        let state = TableState::new(4, 3);

        let mut arena = TableArena::new();
        // Retire a first index (different shape) into the arena...
        CandidateIndex::new_in(
            &mut arena,
            ProposalRule::MaxCombined,
            10,
            &[IcxId(0); 7],
            2,
            true,
        )
        .recycle(&mut arena);
        // ...and build the group view from its buffers.
        let mut view = CandidateIndex::view(
            arena.index_buffers(),
            ProposalRule::MaxCombined,
            10,
            &session_defaults,
            range,
            3,
            true,
        );
        let mut fresh = CandidateIndex::new(
            ProposalRule::MaxCombined,
            10,
            &session_defaults[range.indices()],
            3,
            true,
        );
        view.rebuild(&d_own, &d_other, &own_true, &state);
        fresh.rebuild(&d_own, &d_other, &own_true, &state);
        for guard in [None, Some((&own_true, 0i64)), Some((&own_true, -3))] {
            assert_eq!(
                view.select(&d_own, &d_other, &state, guard),
                fresh.select(&d_own, &d_other, &state, guard),
            );
        }
        assert_eq!(
            view.projected_gain(&own_true, &d_own, &d_other, &state),
            fresh.projected_gain(&own_true, &d_own, &d_other, &state),
        );
    }

    #[test]
    fn huge_pref_range_falls_back() {
        let d = table(&[vec![0, 1000]]);
        let defaults = vec![IcxId(0)];
        let state = TableState::new(1, 2);
        let mut index = CandidateIndex::new(ProposalRule::MaxCombined, 100_000, &defaults, 2, true);
        index.rebuild(&d, &d, &d, &state);
        assert_eq!(
            index.select(&d, &d, &state, None),
            selection::select_proposal(
                &d,
                &d,
                &state,
                2,
                ProposalRule::MaxCombined,
                None,
                &defaults
            )
        );
        assert_eq!(
            index.projected_gain(&d, &d, &d, &state),
            selection::projected_gain(&d, &d, &d, &state, 2, &defaults)
        );
    }

    fn tables_from_seed(
        n: usize,
        k: usize,
        p: i32,
        seed: u64,
    ) -> (PrefTable, PrefTable, PrefTable) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mk = || {
            let mut t = PrefTable::zero(n, k);
            for flow in 0..n {
                for cell in t.row_mut(flow) {
                    *cell = rng.gen_range(-p..=p);
                }
            }
            t
        };
        (mk(), mk(), mk())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        // Randomized sessions: accepts, vetoes and reassignments
        // interleaved, with every query cross-checked against the
        // reference scans after every event. Ops are encoded as raw
        // tuples `(kind, flow, alt, seed)`.
        #[test]
        fn index_is_decision_identical_to_reference(
            (shape, seed, defaults, ops) in
                (1usize..7, 1usize..4, 1i32..12, 0u8..2).prop_flat_map(|(n, k, p, rule)| (
                    Just((n, k, p, rule)),
                    any::<u64>(),
                    collection::vec(0..k, n),
                    collection::vec((0u8..4, 0..n, 0..k, any::<u64>()), 0..32),
                )),
        ) {
            let (n, k, p, rule) = shape;
            let rule = if rule == 0 {
                ProposalRule::MaxCombined
            } else {
                ProposalRule::BestLocalMinHarm
            };
            let defaults: Vec<IcxId> = defaults.into_iter().map(IcxId::new).collect();
            let tables = tables_from_seed(n, k, p, seed);
            let mut h = Harness::new(rule, p, tables, defaults, k);
            h.check(0);
            for (kind, flow, alt, op_seed) in ops {
                match kind {
                    0 => h.ban(flow, alt),
                    1 => h.accept(flow),
                    2 => h.reassign(tables_from_seed(n, k, p, op_seed)),
                    _ => h.check((op_seed % 81) as i64 - 40),
                }
                // Guard floors: neutral, far above and far below any
                // reachable cumulative gain (binding never / always).
                h.check(0);
                h.check(1 << 40);
                h.check(-(1 << 40));
            }
        }
    }
}
