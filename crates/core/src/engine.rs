//! The synchronous in-process negotiation driver.
//!
//! Since the `NegotiationMachine` refactor this module contains **no
//! protocol logic**: every turn/propose/accept/reassign/stop decision
//! lives in [`crate::machine`], and this module merely instantiates one
//! machine per ISP and shuttles events between them in memory — the same
//! pump a network transport performs for `nexit-proto`'s agents, minus
//! the framing. The paper's loop (§4, step 2) for reference:
//!
//! ```text
//! loop {
//!     decide turn            (TurnPolicy)
//!     propose an alternative (ProposalRule, over disclosed preferences)
//!     accept alternative?    (AcceptRule)
//!     reassign preferences?  (after each reassign_interval_frac of volume)
//!     stop?                  (StopPolicy)
//! }
//! ```
//!
//! Each ISP is a [`Party`]: a preference mapper (its private objective)
//! plus a disclosure policy (truthful, or one of the §5.4 cheating
//! strategies). The machine keeps *true* and *disclosed* preference
//! tables separate: proposals are selected on disclosed values (all a
//! real ISP would see), while each ISP's stop decision and gain
//! accounting use its own true values.
//!
//! Entry points:
//!
//! * [`SessionBuilder`] — the validated fluent API; prefer it in new
//!   code and examples,
//! * [`negotiate`] — the positional convenience wrapper the experiment
//!   harness uses in bulk loops.

use crate::arena::TableArena;
use crate::cheating::DisclosurePolicy;
use crate::machine::{Action, Event, MachineError, NegotiationMachine};
use crate::mapping::PreferenceMapper;
use crate::outcome::{NegotiationOutcome, RoundRecord, Side};
use crate::policies::NexitConfig;
use nexit_routing::{Assignment, FlowId};
use nexit_topology::IcxId;

/// The negotiated flow set: which flows are on the table, their defaults
/// and volumes, and how many alternatives each has.
#[derive(Debug, Clone)]
pub struct SessionInput {
    /// Global ids of the flows under negotiation (a subset of the pair's
    /// flows — e.g. only the failure-impacted flows in §5.2).
    pub flow_ids: Vec<FlowId>,
    /// Default alternative of each negotiated flow (parallel to
    /// `flow_ids`). Class 0 by definition.
    pub defaults: Vec<IcxId>,
    /// Traffic volume of each negotiated flow (parallel); used to pace
    /// preference reassignment.
    pub volumes: Vec<f64>,
    /// Number of alternatives (interconnections) per flow.
    pub num_alternatives: usize,
}

impl SessionInput {
    /// Number of flows on the table.
    pub fn len(&self) -> usize {
        self.flow_ids.len()
    }

    /// True when nothing is on the table.
    pub fn is_empty(&self) -> bool {
        self.flow_ids.is_empty()
    }

    /// Total negotiated-set volume.
    pub fn total_volume(&self) -> f64 {
        self.volumes.iter().sum()
    }

    /// Structural validity: parallel arrays line up and every default
    /// names a real alternative.
    pub fn check(&self) -> Result<(), SessionError> {
        if self.defaults.len() != self.flow_ids.len() {
            return Err(SessionError::LengthMismatch {
                field: "defaults",
                expected: self.flow_ids.len(),
                got: self.defaults.len(),
            });
        }
        if self.volumes.len() != self.flow_ids.len() {
            return Err(SessionError::LengthMismatch {
                field: "volumes",
                expected: self.flow_ids.len(),
                got: self.volumes.len(),
            });
        }
        if self.num_alternatives == 0 {
            return Err(SessionError::NoAlternatives);
        }
        for (flow, d) in self.defaults.iter().enumerate() {
            if d.index() >= self.num_alternatives {
                return Err(SessionError::DefaultOutOfRange { flow });
            }
        }
        Ok(())
    }

    pub(crate) fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("invalid session input: {e}");
        }
    }
}

/// One negotiating ISP: a private objective plus a disclosure policy.
pub struct Party<'a> {
    /// Display name (used in transcripts and the wire protocol).
    pub name: String,
    /// The ISP's private objective.
    pub mapper: Box<dyn PreferenceMapper + 'a>,
    /// Truthful, or a cheating strategy.
    pub disclosure: DisclosurePolicy,
}

impl<'a> Party<'a> {
    /// An honest party.
    pub fn honest(name: impl Into<String>, mapper: impl PreferenceMapper + 'a) -> Self {
        Self {
            name: name.into(),
            mapper: Box::new(mapper),
            disclosure: DisclosurePolicy::Truthful,
        }
    }

    /// A party using a cheating disclosure policy.
    pub fn cheating(
        name: impl Into<String>,
        mapper: impl PreferenceMapper + 'a,
        disclosure: DisclosurePolicy,
    ) -> Self {
        Self {
            name: name.into(),
            mapper: Box::new(mapper),
            disclosure,
        }
    }
}

/// What a [`SessionBuilder`] can reject before any negotiation runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// No [`SessionBuilder::input`] was provided.
    MissingInput,
    /// No [`SessionBuilder::default_assignment`] was provided.
    MissingDefaultAssignment,
    /// A party was not provided.
    MissingParty(Side),
    /// Two parallel input arrays disagree in length.
    LengthMismatch {
        /// The offending field.
        field: &'static str,
        /// Length of `flow_ids`.
        expected: usize,
        /// Length found.
        got: usize,
    },
    /// `num_alternatives` was zero.
    NoAlternatives,
    /// A flow's default alternative index is out of range.
    DefaultOutOfRange {
        /// Local index of the offending flow.
        flow: usize,
    },
    /// The preference class range must be positive.
    BadPrefRange(i32),
    /// The default assignment does not cover every negotiated flow.
    DefaultAssignmentTooSmall {
        /// Flows the assignment must cover (max flow id + 1).
        need: usize,
        /// Flows it covers.
        got: usize,
    },
    /// Both parties use a disclosure policy that needs to see the peer's
    /// list first — someone has to disclose without that knowledge.
    ConflictingDisclosure,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::MissingInput => write!(f, "session input not provided"),
            SessionError::MissingDefaultAssignment => {
                write!(f, "default assignment not provided")
            }
            SessionError::MissingParty(side) => write!(f, "party {side} not provided"),
            SessionError::LengthMismatch {
                field,
                expected,
                got,
            } => write!(
                f,
                "`{field}` has {got} entries but `flow_ids` has {expected}"
            ),
            SessionError::NoAlternatives => write!(f, "need at least one alternative"),
            SessionError::DefaultOutOfRange { flow } => {
                write!(f, "flow {flow}'s default alternative is out of range")
            }
            SessionError::BadPrefRange(p) => {
                write!(f, "preference range must be positive, got {p}")
            }
            SessionError::DefaultAssignmentTooSmall { need, got } => write!(
                f,
                "default assignment covers {got} flows but the session references flow ids up to {need}"
            ),
            SessionError::ConflictingDisclosure => write!(
                f,
                "both parties need to see the peer's list before disclosing; one side must disclose first"
            ),
        }
    }
}

impl std::error::Error for SessionError {}

/// Validated fluent construction of an in-process negotiation.
///
/// Replaces the loose `(SessionInput, Assignment, Party, Party,
/// NexitConfig)` argument spread with named steps and upfront
/// validation:
///
/// ```
/// use nexit_core::{GainTable, Party, PreferenceMapper, SessionBuilder, SessionInput};
/// use nexit_routing::{Assignment, FlowId};
/// use nexit_topology::IcxId;
///
/// struct Fixed(GainTable);
/// impl PreferenceMapper for Fixed {
///     fn gains(&mut self, _: &SessionInput, _: &Assignment, out: &mut GainTable) {
///         out.copy_from(&self.0);
///     }
/// }
///
/// let outcome = SessionBuilder::new()
///     .input(SessionInput {
///         flow_ids: vec![FlowId(0)],
///         defaults: vec![IcxId(0)],
///         volumes: vec![1.0],
///         num_alternatives: 2,
///     })
///     .default_assignment(Assignment::uniform(1, IcxId(0)))
///     .party_a(Party::honest("A", Fixed(GainTable::from_rows(&[[0.0, 5.0]]))))
///     .party_b(Party::honest("B", Fixed(GainTable::from_rows(&[[0.0, 3.0]]))))
///     .run()
///     .expect("valid session");
/// assert!(outcome.gain_a > 0 && outcome.gain_b > 0);
/// ```
#[derive(Default)]
pub struct SessionBuilder<'a> {
    input: Option<SessionInput>,
    default_assignment: Option<Assignment>,
    config: NexitConfig,
    party_a: Option<Party<'a>>,
    party_b: Option<Party<'a>>,
}

impl<'a> SessionBuilder<'a> {
    /// Start a builder with the default (paper distance-experiment)
    /// configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// The negotiated flow set.
    pub fn input(mut self, input: SessionInput) -> Self {
        self.input = Some(input);
        self
    }

    /// The pre-negotiation assignment of *all* pair flows (the engine
    /// mutates only the negotiated subset).
    pub fn default_assignment(mut self, assignment: Assignment) -> Self {
        self.default_assignment = Some(assignment);
        self
    }

    /// Replace the whole policy configuration.
    pub fn config(mut self, config: NexitConfig) -> Self {
        self.config = config;
        self
    }

    /// The A-side (upstream) ISP.
    pub fn party_a(mut self, party: Party<'a>) -> Self {
        self.party_a = Some(party);
        self
    }

    /// The B-side (downstream) ISP.
    pub fn party_b(mut self, party: Party<'a>) -> Self {
        self.party_b = Some(party);
        self
    }

    /// Validate everything and run the negotiation to completion.
    pub fn run(self) -> Result<NegotiationOutcome, SessionError> {
        let input = self.input.ok_or(SessionError::MissingInput)?;
        let default = self
            .default_assignment
            .ok_or(SessionError::MissingDefaultAssignment)?;
        let mut party_a = self.party_a.ok_or(SessionError::MissingParty(Side::A))?;
        let mut party_b = self.party_b.ok_or(SessionError::MissingParty(Side::B))?;
        input.check()?;
        if self.config.pref_range <= 0 {
            return Err(SessionError::BadPrefRange(self.config.pref_range));
        }
        if let Some(max_flow) = input.flow_ids.iter().map(|f| f.index()).max() {
            if default.len() <= max_flow {
                return Err(SessionError::DefaultAssignmentTooSmall {
                    need: max_flow + 1,
                    got: default.len(),
                });
            }
        }
        if party_a.disclosure.needs_peer_list() && party_b.disclosure.needs_peer_list() {
            return Err(SessionError::ConflictingDisclosure);
        }
        Ok(drive_machines(
            &mut TableArena::new(),
            &input,
            &default,
            &mut party_a,
            &mut party_b,
            &self.config,
        ))
    }
}

/// Run a complete negotiation and return the outcome.
///
/// `default_assignment` must cover *all* flows of the pair (the engine
/// mutates only the negotiated subset); `input` names the subset on the
/// table. Panics on structurally invalid input — use [`SessionBuilder`]
/// for checked construction.
pub fn negotiate<'b>(
    input: &SessionInput,
    default_assignment: &Assignment,
    party_a: &mut Party<'b>,
    party_b: &mut Party<'b>,
    config: &NexitConfig,
) -> NegotiationOutcome {
    negotiate_in(
        &mut TableArena::new(),
        input,
        default_assignment,
        party_a,
        party_b,
        config,
    )
}

/// [`negotiate`] drawing both machines' preference tables, gain scratch
/// and index buffers from `arena`, and returning them to it when the
/// session completes. A driver that runs sessions back to back (grouped
/// negotiation, failure-scenario sweeps) threads one arena through all
/// of them so every backing buffer is allocated exactly once for the
/// whole sweep.
pub fn negotiate_in<'b>(
    arena: &mut TableArena,
    input: &SessionInput,
    default_assignment: &Assignment,
    party_a: &mut Party<'b>,
    party_b: &mut Party<'b>,
    config: &NexitConfig,
) -> NegotiationOutcome {
    input.validate();
    assert!(config.pref_range > 0);
    assert!(
        !(party_a.disclosure.needs_peer_list() && party_b.disclosure.needs_peer_list()),
        "both parties cannot disclose second"
    );
    drive_machines(arena, input, default_assignment, party_a, party_b, config)
}

/// The in-memory event pump: two machines, zero IO.
///
/// Disclosure order matches the wire protocol (A first) unless A cheats
/// with a peer-list-dependent policy, in which case the honest B
/// discloses first — the §5.4 "perfect knowledge" cheater model, now
/// expressed purely through message ordering instead of privileged
/// access to the peer's internal state.
fn drive_machines<'b>(
    arena: &mut TableArena,
    input: &SessionInput,
    default_assignment: &Assignment,
    party_a: &mut Party<'b>,
    party_b: &mut Party<'b>,
    config: &NexitConfig,
) -> NegotiationOutcome {
    let first_discloser = if party_a.disclosure.needs_peer_list() {
        Side::B
    } else {
        Side::A
    };
    let mut machine_a = NegotiationMachine::new_in(
        arena,
        Side::A,
        first_discloser,
        input.clone(),
        default_assignment.clone(),
        party_a.mapper.as_mut(),
        party_a.disclosure,
        *config,
    )
    .expect("session already validated");
    let mut machine_b = NegotiationMachine::new_in(
        arena,
        Side::B,
        first_discloser,
        input.clone(),
        default_assignment.clone(),
        party_b.mapper.as_mut(),
        party_b.disclosure,
        *config,
    )
    .expect("session already validated");

    let mut transcript: Vec<RoundRecord> = Vec::new();
    // The proposal whose response has not been observed yet:
    // (round, proposer, local flow, alternative).
    let mut pending: Option<(u32, Side, usize, IcxId)> = None;

    loop {
        let mut progressed = false;
        while let Some(action) = machine_a.poll_action() {
            deliver(
                action,
                Side::A,
                &mut machine_b,
                input,
                &mut pending,
                &mut transcript,
            )
            .expect("in-process machines cannot violate the protocol");
            progressed = true;
        }
        while let Some(action) = machine_b.poll_action() {
            deliver(
                action,
                Side::B,
                &mut machine_a,
                input,
                &mut pending,
                &mut transcript,
            )
            .expect("in-process machines cannot violate the protocol");
            progressed = true;
        }
        if machine_a.is_done() && machine_b.is_done() {
            break;
        }
        assert!(progressed, "machine pair deadlocked without terminating");
    }

    finish_outcome(arena, machine_a, machine_b, transcript)
}

/// Translate one side's action into the peer's event, recording the
/// transcript rows exactly as the wire would show them.
fn deliver<M: PreferenceMapper>(
    action: Action,
    from: Side,
    peer: &mut NegotiationMachine<M>,
    input: &SessionInput,
    pending: &mut Option<(u32, Side, usize, IcxId)>,
    transcript: &mut Vec<RoundRecord>,
) -> Result<(), MachineError> {
    let event = match action {
        Action::SendPrefs { prefs } => Event::PeerPrefs { prefs },
        Action::SendProposal {
            round,
            local_flow,
            alternative,
        } => {
            *pending = Some((round, from, local_flow, alternative));
            Event::Proposal {
                round,
                local_flow,
                alternative,
            }
        }
        Action::SendResponse { round, accepted } => {
            if let Some((prop_round, proposer, local, alt)) = pending.take() {
                debug_assert_eq!(prop_round, round);
                transcript.push(RoundRecord {
                    round: round as usize,
                    proposer,
                    flow: input.flow_ids[local],
                    alternative: alt,
                    accepted,
                    reverted: false,
                });
            }
            Event::Response { round, accepted }
        }
        Action::SendStop { side } => {
            // An unanswered proposal never completed its round.
            *pending = None;
            Event::PeerStop { side }
        }
        Action::SendBye => Event::PeerBye,
    };
    peer.handle(event)
}

/// Assemble the outcome from the two finished machines, retiring their
/// buffers into `arena` for the next session.
fn finish_outcome<MA: PreferenceMapper, MB: PreferenceMapper>(
    arena: &mut TableArena,
    machine_a: NegotiationMachine<MA>,
    machine_b: NegotiationMachine<MB>,
    mut transcript: Vec<RoundRecord>,
) -> NegotiationOutcome {
    // Mark the rollback's reverted rows (both machines computed the same
    // plan from shared disclosed state; take A's).
    let accepted_rows: Vec<usize> = transcript
        .iter()
        .enumerate()
        .filter(|(_, r)| r.accepted)
        .map(|(i, _)| i)
        .collect();
    for &idx in machine_a.reverted_indices() {
        transcript[accepted_rows[idx]].reverted = true;
    }

    let termination = machine_a
        .termination()
        .expect("terminated machine must report a termination");
    debug_assert_eq!(Some(termination), machine_b.termination());
    debug_assert_eq!(machine_a.assignment(), machine_b.assignment());
    let (disclosed_gain_a, disclosed_gain_b) = machine_a.disclosed_gains();
    let outcome = NegotiationOutcome {
        assignment: machine_a.assignment().clone(),
        transcript,
        gain_a: machine_a.my_gain(),
        gain_b: machine_b.my_gain(),
        disclosed_gain_a,
        disclosed_gain_b,
        termination,
        reassignments: machine_a.reassignments(),
    };
    machine_a.recycle(arena);
    machine_b.recycle(arena);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::PreferenceMapper;
    use crate::outcome::Termination;
    use crate::policies::{AcceptRule, ProposalRule, StopPolicy, TurnPolicy};

    use crate::arena::GainTable;

    /// A mapper returning a fixed gain table (tests drive the engine with
    /// hand-crafted scenarios).
    struct FixedMapper {
        gains: GainTable,
    }

    impl PreferenceMapper for FixedMapper {
        fn gains(&mut self, _input: &SessionInput, _current: &Assignment, out: &mut GainTable) {
            out.copy_from(&self.gains);
        }
    }

    /// Shorthand: a flat gain table from row literals.
    fn tbl<R: AsRef<[f64]>>(rows: &[R]) -> GainTable {
        GainTable::from_rows(rows)
    }

    fn input(n: usize, k: usize) -> SessionInput {
        SessionInput {
            flow_ids: (0..n).map(FlowId::new).collect(),
            defaults: vec![IcxId(0); n],
            volumes: vec![1.0; n],
            num_alternatives: k,
        }
    }

    fn run(gains_a: GainTable, gains_b: GainTable, config: NexitConfig) -> NegotiationOutcome {
        let n = gains_a.num_flows();
        let k = gains_a.num_alternatives();
        let inp = input(n, k);
        let default = Assignment::uniform(n, IcxId(0));
        let mut a = Party::honest("A", FixedMapper { gains: gains_a });
        let mut b = Party::honest("B", FixedMapper { gains: gains_b });
        negotiate(&inp, &default, &mut a, &mut b, &config)
    }

    #[test]
    fn mutually_good_move_is_taken() {
        // One flow; alternative 1 better for both.
        let out = run(
            tbl(&[vec![0.0, 5.0]]),
            tbl(&[vec![0.0, 3.0]]),
            NexitConfig::default(),
        );
        assert_eq!(out.assignment.choice(FlowId(0)), IcxId(1));
        assert!(out.gain_a > 0 && out.gain_b > 0);
        assert_eq!(out.termination, Termination::Exhausted);
    }

    #[test]
    fn trade_across_flows_wins_for_both() {
        // Flow 2 is mutually good; flows 0 and 1 are a classic trade (big
        // win for one, small loss for the other). Under greedy early
        // termination the mutually-good flow and A's winner complete, and
        // B stops before its own losing flow — both ISPs end positive.
        let out = run(
            tbl(&[vec![0.0, 10.0], vec![0.0, -2.0], vec![0.0, 6.0]]),
            tbl(&[vec![0.0, -2.0], vec![0.0, 10.0], vec![0.0, 6.0]]),
            NexitConfig::default(),
        );
        assert_eq!(
            out.assignment.choice(FlowId(2)),
            IcxId(1),
            "mutual win taken"
        );
        assert!(out.gain_a > 0, "gain_a = {}", out.gain_a);
        assert!(out.gain_b > 0, "gain_b = {}", out.gain_b);
    }

    #[test]
    fn negotiate_all_completes_the_full_trade() {
        // The same trade completes fully in negotiate-all mode (the
        // socially-best outcome the paper describes), with a higher total
        // than early termination: each side trades a -2 for a +10.
        let out = run(
            tbl(&[vec![0.0, 10.0], vec![0.0, -2.0], vec![0.0, 6.0]]),
            tbl(&[vec![0.0, -2.0], vec![0.0, 10.0], vec![0.0, 6.0]]),
            NexitConfig {
                stop: StopPolicy::NegotiateAll,
                ..NexitConfig::default()
            },
        );
        assert_eq!(out.assignment.choice(FlowId(0)), IcxId(1));
        assert_eq!(out.assignment.choice(FlowId(1)), IcxId(1));
        assert_eq!(out.assignment.choice(FlowId(2)), IcxId(1));
        assert_eq!(out.gain_a, 14);
        assert_eq!(out.gain_b, 14);
    }

    #[test]
    fn negative_combined_alternatives_fall_back_to_default() {
        // Flow 0 helps A; flow 1's non-default alternative has negative
        // combined sum (-1), so the combined-max criterion selects flow
        // 1's default instead and nobody loses. (Both tables span +/-10 so
        // global quantization is the identity here.)
        let out = run(
            tbl(&[vec![0.0, 10.0], vec![0.0, -4.0]]),
            tbl(&[vec![0.0, 10.0], vec![0.0, 3.0]]),
            NexitConfig::default(),
        );
        assert_eq!(out.assignment.choice(FlowId(0)), IcxId(1));
        assert_eq!(out.assignment.choice(FlowId(1)), IcxId(0));
        assert_eq!(out.termination, Termination::Exhausted);
        assert!(out.gain_a > 0);
        assert!(out.gain_b >= 0);
    }

    #[test]
    fn early_termination_stops_a_doomed_negotiation() {
        // Flow 0's combined-best alternative is positive overall but a
        // net loss for A, and flow 1 offers A no recovery: A projects no
        // gain in continuing and stops before round one, leaving both
        // flows at their defaults.
        let out = run(
            tbl(&[vec![0.0, -3.0], vec![0.0, -10.0]]),
            tbl(&[vec![0.0, 10.0], vec![0.0, 2.0]]),
            NexitConfig::default(),
        );
        assert!(
            matches!(out.termination, Termination::Stopped(Side::A)),
            "termination = {:?}",
            out.termination
        );
        assert_eq!(out.assignment.choice(FlowId(0)), IcxId(0));
        assert_eq!(out.assignment.choice(FlowId(1)), IcxId(0));
        assert_eq!(out.gain_a, 0);
        assert_eq!(out.gain_b, 0);
        assert_eq!(out.flows_negotiated(), 0);
    }

    #[test]
    fn negotiate_all_covers_every_flow() {
        let out = run(
            tbl(&[vec![0.0, 10.0], vec![0.0, -4.0]]),
            tbl(&[vec![0.0, 10.0], vec![0.0, 3.0]]),
            NexitConfig {
                stop: StopPolicy::NegotiateAll,
                ..NexitConfig::default()
            },
        );
        // Combined sum of f1 alt1 is -1 < 0 = default sum, so the
        // combined-max proposer keeps f1 at its default alternative even
        // in negotiate-all mode; both flows are decided.
        assert_eq!(out.flows_negotiated(), 2);
        assert_eq!(out.assignment.choice(FlowId(1)), IcxId(0));
    }

    #[test]
    fn honest_isp_never_loses_with_early_stop() {
        // Adversarial-ish tables: many flows bad for A.
        let out = run(
            tbl(&[[0.0, -5.0], [0.0, -3.0], [0.0, 1.0], [0.0, -2.0]]),
            tbl(&[[0.0, 9.0], [0.0, 8.0], [0.0, 0.0], [0.0, 7.0]]),
            NexitConfig::default(),
        );
        assert!(out.gain_a >= 0, "A lost: {}", out.gain_a);
        assert!(out.gain_b >= 0, "B lost: {}", out.gain_b);
    }

    #[test]
    fn alternate_turns_recorded() {
        let out = run(
            tbl(&[vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0, 1.0]]),
            tbl(&[vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0, 1.0]]),
            NexitConfig::default(),
        );
        let proposers: Vec<Side> = out.transcript.iter().map(|r| r.proposer).collect();
        assert_eq!(proposers, vec![Side::A, Side::B, Side::A]);
    }

    #[test]
    fn lower_gain_turn_policy_alternates_catchup() {
        // Flow 0 strongly favors A; after it is accepted, B has lower gain
        // and should get the next turn.
        let out = run(
            tbl(&[vec![0.0, 10.0], vec![0.0, 0.0]]),
            tbl(&[vec![0.0, 0.0], vec![0.0, 10.0]]),
            NexitConfig {
                turn: TurnPolicy::LowerGain,
                ..NexitConfig::default()
            },
        );
        assert_eq!(out.transcript[0].proposer, Side::A, "tie at start -> A");
        assert_eq!(out.transcript[1].proposer, Side::B, "B is behind");
    }

    #[test]
    fn coin_toss_is_deterministic() {
        let mk = || {
            run(
                tbl(&[vec![0.0, 1.0], vec![0.0, 1.0]]),
                tbl(&[vec![0.0, 1.0], vec![0.0, 1.0]]),
                NexitConfig {
                    turn: TurnPolicy::CoinToss { seed: 99 },
                    ..NexitConfig::default()
                },
            )
        };
        let t1: Vec<Side> = mk().transcript.iter().map(|r| r.proposer).collect();
        let t2: Vec<Side> = mk().transcript.iter().map(|r| r.proposer).collect();
        assert_eq!(t1, t2);
    }

    #[test]
    fn best_local_min_harm_rule() {
        // A proposes first. MaxCombined would pick flow 1 (sum 7);
        // BestLocalMinHarm picks flow 0 (A's best local = 6 > 4), tie-broken
        // on other's preference.
        let out = run(
            tbl(&[vec![0.0, 6.0], vec![0.0, 4.0]]),
            tbl(&[vec![0.0, 0.0], vec![0.0, 3.0]]),
            NexitConfig {
                proposal: ProposalRule::BestLocalMinHarm,
                ..NexitConfig::default()
            },
        );
        assert_eq!(out.transcript[0].flow, FlowId(0));
    }

    #[test]
    fn veto_blocks_negative_cumulative() {
        // B would go negative accepting flow 0 alt 1; with veto it rejects
        // and the engine falls back to the default alternative.
        let out = run(
            tbl(&[vec![0.0, 10.0]]),
            tbl(&[vec![0.0, -10.0]]),
            NexitConfig {
                accept: AcceptRule::VetoNegativeCumulative,
                stop: StopPolicy::NegotiateAll,
                ..NexitConfig::default()
            },
        );
        assert!(out.gain_b >= 0);
        assert_eq!(out.assignment.choice(FlowId(0)), IcxId(0));
        // Transcript shows the rejected proposal.
        assert!(out.transcript.iter().any(|r| !r.accepted));
    }

    #[test]
    fn empty_session_terminates_immediately() {
        let inp = input(0, 2);
        let default = Assignment::from_choices(vec![]);
        let mut a = Party::honest(
            "A",
            FixedMapper {
                gains: GainTable::new(0, 2),
            },
        );
        let mut b = Party::honest(
            "B",
            FixedMapper {
                gains: GainTable::new(0, 2),
            },
        );
        let out = negotiate(&inp, &default, &mut a, &mut b, &NexitConfig::default());
        assert_eq!(out.termination, Termination::Exhausted);
        assert_eq!(out.flows_negotiated(), 0);
    }

    #[test]
    fn fig3_worked_example() {
        // The paper's Figure 3 walk-through (§4.1): two flows (f2, f3),
        // two alternatives (top = 1, bottom = 0), defaults = bottom,
        // preference range [-1, 1].
        //
        // Initial lists: A is averse to f2-top (-1); B indifferent to all.
        // After f2-bottom is accepted, reassignment reveals B prefers
        // f3-top (+1). Final outcome: f2 on bottom, f3 on top (Fig. 2e).
        struct IspA;
        impl PreferenceMapper for IspA {
            fn gains(&mut self, _i: &SessionInput, _c: &Assignment, out: &mut GainTable) {
                // [bottom, top] per flow; f2 = local 0, f3 = local 1.
                out.set(0, 1, -1.0);
            }
        }
        struct IspB;
        impl PreferenceMapper for IspB {
            fn gains(&mut self, _i: &SessionInput, current: &Assignment, out: &mut GainTable) {
                // B can handle either flow on the bottom link, but not
                // both: once f2 is settled on bottom, f3-top becomes
                // preferable.
                let f2_on_bottom = current.choice(FlowId(0)) == IcxId(0);
                if f2_on_bottom {
                    out.set(1, 1, 1.0);
                }
            }
        }
        let inp = input(2, 2);
        let default = Assignment::uniform(2, IcxId(0));
        let config = NexitConfig {
            pref_range: 1,
            // Reassign after every acceptance (every flow is 50% > 25%).
            reassign_interval_frac: Some(0.25),
            ..NexitConfig::default()
        };
        let out = SessionBuilder::new()
            .input(inp)
            .default_assignment(default)
            .config(config)
            .party_a(Party::honest("ISP-A", IspA))
            .party_b(Party::honest("ISP-B", IspB))
            .run()
            .expect("valid session");
        assert_eq!(
            out.assignment.choice(FlowId(0)),
            IcxId(0),
            "f2 stays on the bottom interconnection"
        );
        assert_eq!(
            out.assignment.choice(FlowId(1)),
            IcxId(1),
            "f3 moves to the top interconnection after reassignment"
        );
        assert!(out.reassignments >= 1, "reassignment must have occurred");
        assert_eq!(out.gain_b, 1, "B ends strictly better than default");
        assert_eq!(out.gain_a, 0, "A is unharmed");
    }

    #[test]
    fn reassignment_counts_volume_fraction() {
        // 20 unit-volume flows, reassign every 25% -> after every 5 accepted.
        let n = 20;
        let gains = tbl(&vec![[0.0, 1.0]; n]);
        let out = run(
            gains.clone(),
            gains,
            NexitConfig {
                reassign_interval_frac: Some(0.25),
                ..NexitConfig::default()
            },
        );
        assert_eq!(out.flows_negotiated(), n);
        // Reassignments happen at 5, 10, 15 accepted (not after the last).
        assert_eq!(out.reassignments, 3);
    }

    #[test]
    fn builder_rejects_structural_errors() {
        let mk_party = || {
            Party::honest(
                "X",
                FixedMapper {
                    gains: tbl(&[vec![0.0, 1.0]]),
                },
            )
        };
        // Missing pieces, one at a time.
        assert_eq!(
            SessionBuilder::new().run().unwrap_err(),
            SessionError::MissingInput
        );
        assert_eq!(
            SessionBuilder::new().input(input(1, 2)).run().unwrap_err(),
            SessionError::MissingDefaultAssignment
        );
        assert_eq!(
            SessionBuilder::new()
                .input(input(1, 2))
                .default_assignment(Assignment::uniform(1, IcxId(0)))
                .run()
                .unwrap_err(),
            SessionError::MissingParty(Side::A)
        );
        // Parallel-array mismatch.
        let mut bad = input(2, 2);
        bad.volumes.pop();
        assert!(matches!(
            SessionBuilder::new()
                .input(bad)
                .default_assignment(Assignment::uniform(2, IcxId(0)))
                .party_a(mk_party())
                .party_b(mk_party())
                .run()
                .unwrap_err(),
            SessionError::LengthMismatch {
                field: "volumes",
                ..
            }
        ));
        // Default alternative out of range.
        let mut bad = input(1, 2);
        bad.defaults[0] = IcxId(5);
        assert_eq!(
            SessionBuilder::new()
                .input(bad)
                .default_assignment(Assignment::uniform(1, IcxId(0)))
                .party_a(mk_party())
                .party_b(mk_party())
                .run()
                .unwrap_err(),
            SessionError::DefaultOutOfRange { flow: 0 }
        );
        // Assignment too small for the referenced flow ids.
        assert!(matches!(
            SessionBuilder::new()
                .input(input(2, 2))
                .default_assignment(Assignment::uniform(1, IcxId(0)))
                .party_a(mk_party())
                .party_b(mk_party())
                .run()
                .unwrap_err(),
            SessionError::DefaultAssignmentTooSmall { .. }
        ));
        // Bad preference range.
        assert_eq!(
            SessionBuilder::new()
                .input(input(1, 2))
                .default_assignment(Assignment::uniform(1, IcxId(0)))
                .config(NexitConfig {
                    pref_range: 0,
                    ..NexitConfig::default()
                })
                .party_a(mk_party())
                .party_b(mk_party())
                .run()
                .unwrap_err(),
            SessionError::BadPrefRange(0)
        );
        // Two peer-list-dependent cheaters cannot both disclose second.
        assert_eq!(
            SessionBuilder::new()
                .input(input(1, 2))
                .default_assignment(Assignment::uniform(1, IcxId(0)))
                .party_a(Party::cheating(
                    "A",
                    FixedMapper {
                        gains: tbl(&[vec![0.0, 1.0]])
                    },
                    DisclosurePolicy::InflateBest,
                ))
                .party_b(Party::cheating(
                    "B",
                    FixedMapper {
                        gains: tbl(&[vec![0.0, 1.0]])
                    },
                    DisclosurePolicy::InflateBest,
                ))
                .run()
                .unwrap_err(),
            SessionError::ConflictingDisclosure
        );
    }

    #[test]
    fn builder_matches_negotiate() {
        let gains_a = tbl(&[vec![0.0, 10.0], vec![0.0, -2.0], vec![0.0, 6.0]]);
        let gains_b = tbl(&[vec![0.0, -2.0], vec![0.0, 10.0], vec![0.0, 6.0]]);
        let via_fn = run(gains_a.clone(), gains_b.clone(), NexitConfig::win_win());
        let via_builder = SessionBuilder::new()
            .input(input(3, 2))
            .default_assignment(Assignment::uniform(3, IcxId(0)))
            .config(NexitConfig::win_win())
            .party_a(Party::honest("A", FixedMapper { gains: gains_a }))
            .party_b(Party::honest("B", FixedMapper { gains: gains_b }))
            .run()
            .unwrap();
        assert_eq!(via_fn.assignment, via_builder.assignment);
        assert_eq!(via_fn.gain_a, via_builder.gain_a);
        assert_eq!(via_fn.gain_b, via_builder.gain_b);
        assert_eq!(via_fn.transcript, via_builder.transcript);
    }

    #[test]
    fn cheating_side_a_discloses_second() {
        // A cheating A is legal in-process: the driver flips the
        // disclosure order so the cheater still sees the peer's list
        // first, matching the §5.4 perfect-knowledge model.
        let out = SessionBuilder::new()
            .input(input(1, 2))
            .default_assignment(Assignment::uniform(1, IcxId(0)))
            .party_a(Party::cheating(
                "A",
                FixedMapper {
                    gains: tbl(&[vec![0.0, 4.0]]),
                },
                DisclosurePolicy::InflateBest,
            ))
            .party_b(Party::honest(
                "B",
                FixedMapper {
                    gains: tbl(&[vec![0.0, 1.0]]),
                },
            ))
            .run()
            .unwrap();
        assert_eq!(out.assignment.choice(FlowId(0)), IcxId(1));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn arb_gains(n: usize, k: usize) -> impl Strategy<Value = GainTable> {
            proptest::collection::vec(proptest::collection::vec(-10.0f64..10.0, k), n).prop_map(
                move |mut rows| {
                    for row in &mut rows {
                        row[0] = 0.0; // default column
                    }
                    GainTable::from_rows(&rows)
                },
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]
            #[test]
            fn no_loss_with_veto_guard(
                ga in arb_gains(6, 3),
                gb in arb_gains(6, 3),
            ) {
                // The paper's hard no-loss guarantee ("an honest ISP can
                // always protect itself by not negotiating loses") holds
                // under the veto rule for *any* preference tables, even
                // adversarial ones.
                let out = run(ga, gb, NexitConfig {
                    accept: AcceptRule::VetoNegativeCumulative,
                    ..NexitConfig::default()
                });
                prop_assert!(out.gain_a >= 0, "A lost {}", out.gain_a);
                prop_assert!(out.gain_b >= 0, "B lost {}", out.gain_b);
            }

            #[test]
            fn credit_veto_rollback_guarantees_win_win(
                ga in arb_gains(6, 3),
                gb in arb_gains(6, 3),
                credit in 0i64..30,
            ) {
                // The provable no-loss property: with credit-bounded
                // vetoes and the end-of-session rollback, both honest
                // ISPs end with non-negative cumulative gain for *any*
                // preference tables. (Early termination alone is only a
                // perception-based heuristic: projection assumes the
                // neutral tie-break, and an adversarial proposer can pick
                // a different equal-sum alternative, so the engine's
                // guarantee is deliberately placed here instead.)
                let out = run(ga, gb, NexitConfig {
                    accept: AcceptRule::CreditVeto { credit },
                    stop: StopPolicy::NegotiateAll,
                    ..NexitConfig::default()
                });
                prop_assert!(out.gain_a >= 0, "A lost {}", out.gain_a);
                prop_assert!(out.gain_b >= 0, "B lost {}", out.gain_b);
            }

            #[test]
            fn engine_is_deterministic(
                ga in arb_gains(5, 3),
                gb in arb_gains(5, 3),
            ) {
                let o1 = run(ga.clone(), gb.clone(), NexitConfig::default());
                let o2 = run(ga, gb, NexitConfig::default());
                prop_assert_eq!(o1.assignment.choices(), o2.assignment.choices());
                prop_assert_eq!(o1.gain_a, o2.gain_a);
                prop_assert_eq!(o1.gain_b, o2.gain_b);
            }

            #[test]
            fn terminates_within_round_budget(
                ga in arb_gains(8, 4),
                gb in arb_gains(8, 4),
            ) {
                // Each accepted round removes a flow; each vetoed round
                // bans an alternative. Rounds <= flows * alternatives.
                let out = run(ga, gb, NexitConfig {
                    accept: AcceptRule::VetoNegativeCumulative,
                    stop: StopPolicy::NegotiateAll,
                    ..NexitConfig::default()
                });
                prop_assert!(out.transcript.len() <= 8 * 4);
                prop_assert!(out.gain_a >= 0);
                prop_assert!(out.gain_b >= 0);
            }

            #[test]
            fn real_metric_win_win_via_floor_quantization(
                ga in arb_gains(8, 3),
                gb in arb_gains(8, 3),
            ) {
                // The documented theorem: floor quantization never
                // overstates a gain (raw >= class * quantum for every
                // cell), so a non-negative cumulative class gain implies
                // a non-negative cumulative *raw metric* gain. With the
                // credit-veto rollback the class gain is >= 0, hence so
                // is the real one.
                let n = ga.num_flows();
                let out = run(ga.clone(), gb.clone(), NexitConfig::win_win());
                let raw = |table: &GainTable| -> f64 {
                    (0..n)
                        .map(|f| table.get(f, out.assignment.choice(FlowId::new(f)).index()))
                        .sum()
                };
                prop_assert!(out.gain_a >= 0 && out.gain_b >= 0);
                prop_assert!(raw(&ga) >= -1e-9, "A's real metric went negative: {}", raw(&ga));
                prop_assert!(raw(&gb) >= -1e-9, "B's real metric went negative: {}", raw(&gb));
            }

            #[test]
            fn full_termination_never_negative(
                ga in arb_gains(6, 3),
                gb in arb_gains(6, 3),
            ) {
                let out = run(ga, gb, NexitConfig {
                    stop: StopPolicy::Full,
                    ..NexitConfig::default()
                });
                prop_assert!(out.gain_a >= 0);
                prop_assert!(out.gain_b >= 0);
            }
        }
    }
}
