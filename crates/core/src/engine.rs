//! The round-based negotiation engine.
//!
//! Faithful implementation of the paper's protocol loop (§4, step 2):
//!
//! ```text
//! loop {
//!     decide turn            (TurnPolicy)
//!     propose an alternative (ProposalRule, over disclosed preferences)
//!     accept alternative?    (AcceptRule)
//!     reassign preferences?  (after each reassign_interval_frac of volume)
//!     stop?                  (StopPolicy)
//! }
//! ```
//!
//! Each ISP is a [`Party`]: a preference mapper (its private objective), a
//! disclosure policy (truthful, or one of the §5.4 cheating strategies),
//! and bookkeeping. The engine keeps *true* and *disclosed* preference
//! tables separate: proposals are selected on disclosed values (that is
//! all a real ISP would see), while each ISP's stop decision and gain
//! accounting use its own true values.

use crate::cheating::DisclosurePolicy;
use crate::mapping::PreferenceMapper;
use crate::outcome::{NegotiationOutcome, RoundRecord, Side, Termination};
use crate::policies::{AcceptRule, NexitConfig, StopPolicy};
use crate::prefs::{quantize, PrefTable};
use crate::selection::{self, TableState};
use nexit_routing::{Assignment, FlowId};
use nexit_topology::IcxId;

/// The negotiated flow set: which flows are on the table, their defaults
/// and volumes, and how many alternatives each has.
#[derive(Debug, Clone)]
pub struct SessionInput {
    /// Global ids of the flows under negotiation (a subset of the pair's
    /// flows — e.g. only the failure-impacted flows in §5.2).
    pub flow_ids: Vec<FlowId>,
    /// Default alternative of each negotiated flow (parallel to
    /// `flow_ids`). Class 0 by definition.
    pub defaults: Vec<IcxId>,
    /// Traffic volume of each negotiated flow (parallel); used to pace
    /// preference reassignment.
    pub volumes: Vec<f64>,
    /// Number of alternatives (interconnections) per flow.
    pub num_alternatives: usize,
}

impl SessionInput {
    /// Number of flows on the table.
    pub fn len(&self) -> usize {
        self.flow_ids.len()
    }

    /// True when nothing is on the table.
    pub fn is_empty(&self) -> bool {
        self.flow_ids.is_empty()
    }

    /// Total negotiated-set volume.
    pub fn total_volume(&self) -> f64 {
        self.volumes.iter().sum()
    }

    fn validate(&self) {
        assert_eq!(self.flow_ids.len(), self.defaults.len());
        assert_eq!(self.flow_ids.len(), self.volumes.len());
        assert!(self.num_alternatives > 0, "need at least one alternative");
        for d in &self.defaults {
            assert!(d.index() < self.num_alternatives, "default out of range");
        }
    }
}

/// One negotiating ISP: a private objective plus a disclosure policy.
pub struct Party<'a> {
    /// Display name (used in transcripts and the wire protocol).
    pub name: String,
    /// The ISP's private objective.
    pub mapper: Box<dyn PreferenceMapper + 'a>,
    /// Truthful, or a cheating strategy.
    pub disclosure: DisclosurePolicy,
}

impl<'a> Party<'a> {
    /// An honest party.
    pub fn honest(name: impl Into<String>, mapper: impl PreferenceMapper + 'a) -> Self {
        Self {
            name: name.into(),
            mapper: Box::new(mapper),
            disclosure: DisclosurePolicy::Truthful,
        }
    }

    /// A party using a cheating disclosure policy.
    pub fn cheating(
        name: impl Into<String>,
        mapper: impl PreferenceMapper + 'a,
        disclosure: DisclosurePolicy,
    ) -> Self {
        Self {
            name: name.into(),
            mapper: Box::new(mapper),
            disclosure,
        }
    }
}

/// Live state of a negotiation session. Public so the wire-protocol crate
/// can drive a session message by message; library users normally call
/// [`negotiate`].
pub struct NegotiationSession<'a, 'b> {
    input: &'a SessionInput,
    config: NexitConfig,
    party_a: &'a mut Party<'b>,
    party_b: &'a mut Party<'b>,
    /// Remaining flows and vetoed alternatives.
    state: TableState,
    /// The evolving full assignment.
    assignment: Assignment,
    true_a: PrefTable,
    true_b: PrefTable,
    disclosed_a: PrefTable,
    disclosed_b: PrefTable,
    gain_a: i64,
    gain_b: i64,
    disclosed_gain_a: i64,
    disclosed_gain_b: i64,
    transcript: Vec<RoundRecord>,
    reassignments: usize,
    volume_since_reassign: f64,
    round: usize,
    num_remaining: usize,
}

/// Run a complete negotiation and return the outcome.
///
/// `default_assignment` must cover *all* flows of the pair (the engine
/// mutates only the negotiated subset); `input` names the subset on the
/// table.
pub fn negotiate<'b>(
    input: &SessionInput,
    default_assignment: &Assignment,
    party_a: &mut Party<'b>,
    party_b: &mut Party<'b>,
    config: &NexitConfig,
) -> NegotiationOutcome {
    let mut session = NegotiationSession::start(input, default_assignment, party_a, party_b, config);
    session.run_to_completion()
}

impl<'a, 'b> NegotiationSession<'a, 'b> {
    /// Initialize a session: both parties map preferences and disclose.
    pub fn start(
        input: &'a SessionInput,
        default_assignment: &Assignment,
        party_a: &'a mut Party<'b>,
        party_b: &'a mut Party<'b>,
        config: &NexitConfig,
    ) -> Self {
        input.validate();
        assert!(config.pref_range > 0);
        let n = input.len();
        let mut session = Self {
            input,
            config: *config,
            party_a,
            party_b,
            state: TableState::new(n, input.num_alternatives),
            assignment: default_assignment.clone(),
            true_a: PrefTable::zero(n, input.num_alternatives),
            true_b: PrefTable::zero(n, input.num_alternatives),
            disclosed_a: PrefTable::zero(n, input.num_alternatives),
            disclosed_b: PrefTable::zero(n, input.num_alternatives),
            gain_a: 0,
            gain_b: 0,
            disclosed_gain_a: 0,
            disclosed_gain_b: 0,
            transcript: Vec::new(),
            reassignments: 0,
            volume_since_reassign: 0.0,
            round: 0,
            num_remaining: n,
        };
        session.map_and_disclose();
        session
    }

    /// Recompute preference tables (initial mapping and reassignment).
    fn map_and_disclose(&mut self) {
        let p = self.config.pref_range;
        let gains_a = self.party_a.mapper.gains(self.input, &self.assignment);
        let gains_b = self.party_b.mapper.gains(self.input, &self.assignment);
        self.true_a = quantize(&gains_a, p);
        self.true_b = quantize(&gains_b, p);
        // Honest parties disclose first so a cheater can exploit perfect
        // knowledge of the other list (§5.4's strongest-cheater model).
        // Two cheaters each see the other's *true* table (documented
        // approximation; the paper evaluates a single cheater).
        self.disclosed_a = self.party_a.disclosure.disclose(
            &self.true_a,
            &self.true_b,
            p,
            &self.input.defaults,
        );
        self.disclosed_b = self.party_b.disclosure.disclose(
            &self.true_b,
            &self.true_a,
            p,
            &self.input.defaults,
        );
    }

    /// Early-termination projection (see [`selection::projected_gain`]).
    fn projected_gain(&self, side: Side) -> i64 {
        let (own_true, d_own, d_other) = match side {
            Side::A => (&self.true_a, &self.disclosed_a, &self.disclosed_b),
            Side::B => (&self.true_b, &self.disclosed_b, &self.disclosed_a),
        };
        selection::projected_gain(
            own_true,
            d_own,
            d_other,
            &self.state,
            self.input.num_alternatives,
            &self.input.defaults,
        )
    }

    /// Whose turn it is this round (see [`selection::decide_turn`]).
    fn decide_turn(&self) -> Side {
        selection::decide_turn(
            self.config.turn,
            self.round,
            self.disclosed_gain_a,
            self.disclosed_gain_b,
        )
    }

    /// The proposer's choice (see [`selection::select_proposal`]).
    fn propose(&self, proposer: Side) -> Option<(usize, IcxId)> {
        let (d_own, d_other, own_true, own_cum) = match proposer {
            Side::A => (&self.disclosed_a, &self.disclosed_b, &self.true_a, self.gain_a),
            Side::B => (&self.disclosed_b, &self.disclosed_a, &self.true_b, self.gain_b),
        };
        let self_guard = match self.config.accept {
            AcceptRule::Always => None,
            AcceptRule::VetoNegativeCumulative => Some((own_true, own_cum)),
            AcceptRule::CreditVeto { credit } => Some((own_true, own_cum + credit)),
        };
        selection::select_proposal(
            d_own,
            d_other,
            &self.state,
            self.input.num_alternatives,
            self.config.proposal,
            self_guard,
            &self.input.defaults,
        )
    }

    /// Whether the non-proposing side accepts.
    fn accepts(&self, acceptor: Side, local: usize, alt: IcxId) -> bool {
        let floor = match self.config.accept {
            AcceptRule::Always => return true,
            AcceptRule::VetoNegativeCumulative => 0,
            AcceptRule::CreditVeto { credit } => -credit,
        };
        let (table, cum) = match acceptor {
            Side::A => (&self.true_a, self.gain_a),
            Side::B => (&self.true_b, self.gain_b),
        };
        cum + i64::from(table.get(local, alt)) >= floor
    }

    /// Pre-round stop check (early termination only); returns the stopper.
    fn stop_check(&self) -> Option<Side> {
        match self.config.stop {
            StopPolicy::Early => {
                // Stop when continuing cannot increase the ISP's gain.
                if self.projected_gain(Side::A) < 0 {
                    return Some(Side::A);
                }
                if self.projected_gain(Side::B) < 0 {
                    return Some(Side::B);
                }
                None
            }
            StopPolicy::NegotiateAll | StopPolicy::Full => None,
        }
    }

    /// Full-termination check against the concrete upcoming proposal:
    /// an ISP stops when accepting it would push its cumulative gain
    /// negative ("ISPs may continue as long as their cumulative gain is
    /// positive", paper §4).
    fn full_stop_check(&self, local: usize, alt: IcxId) -> Option<Side> {
        if self.config.stop != StopPolicy::Full {
            return None;
        }
        for side in [Side::A, Side::B] {
            let (table, cum) = match side {
                Side::A => (&self.true_a, self.gain_a),
                Side::B => (&self.true_b, self.gain_b),
            };
            if cum + i64::from(table.get(local, alt)) < 0 {
                return Some(side);
            }
        }
        None
    }

    /// Execute one round. Returns `Some(termination)` when the session
    /// ended.
    pub fn step(&mut self) -> Option<Termination> {
        if self.num_remaining == 0 {
            return Some(Termination::Exhausted);
        }
        if let Some(stopper) = self.stop_check() {
            return Some(Termination::Stopped(stopper));
        }
        let proposer = self.decide_turn();
        let Some((local, alt)) = self.propose(proposer) else {
            // Every remaining alternative is banned; nothing left to do.
            return Some(Termination::Exhausted);
        };
        if let Some(stopper) = self.full_stop_check(local, alt) {
            return Some(Termination::Stopped(stopper));
        }
        let acceptor = proposer.other();
        let accepted = self.accepts(acceptor, local, alt);
        self.transcript.push(RoundRecord {
            round: self.round,
            proposer,
            flow: self.input.flow_ids[local],
            alternative: alt,
            accepted,
            reverted: false,
        });
        self.round += 1;

        if accepted {
            self.apply_acceptance(local, alt);
        } else {
            // Vetoed: withdraw this alternative; the flow stays on the
            // table with its other alternatives.
            self.state.banned[local][alt.index()] = true;
        }
        None
    }

    fn apply_acceptance(&mut self, local: usize, alt: IcxId) {
        debug_assert!(self.state.remaining[local]);
        self.state.remaining[local] = false;
        self.num_remaining -= 1;
        self.assignment.set(self.input.flow_ids[local], alt);
        self.gain_a += self.true_a.get(local, alt) as i64;
        self.gain_b += self.true_b.get(local, alt) as i64;
        self.disclosed_gain_a += self.disclosed_a.get(local, alt) as i64;
        self.disclosed_gain_b += self.disclosed_b.get(local, alt) as i64;
        self.volume_since_reassign += self.input.volumes[local];

        if let Some(frac) = self.config.reassign_interval_frac {
            let threshold = frac * self.input.total_volume();
            if self.volume_since_reassign >= threshold && self.num_remaining > 0 {
                self.map_and_disclose();
                self.reassignments += 1;
                self.volume_since_reassign = 0.0;
            }
        }
    }

    /// Roll back accepted compromises until both ISPs' cumulative
    /// *disclosed* gains are non-negative (the §6 rollback, used with
    /// [`AcceptRule::CreditVeto`]). Deterministic on state both sides
    /// share: disclosed tables and the acceptance transcript. For honest
    /// parties disclosed equals true, so the win-win guarantee carries to
    /// true preference units (and, with the floor quantization, to the
    /// real metric).
    fn rollback_negative(&mut self) {
        let accepted: Vec<(usize, IcxId)> = self
            .transcript
            .iter()
            .filter(|r| r.accepted)
            .map(|r| {
                let local = self
                    .input
                    .flow_ids
                    .iter()
                    .position(|&f| f == r.flow)
                    .expect("transcript flow not in session");
                (local, r.alternative)
            })
            .collect();
        let plan = selection::rollback_plan(
            &self.disclosed_a,
            &self.disclosed_b,
            &accepted,
            self.disclosed_gain_a,
            self.disclosed_gain_b,
        );
        // Map plan indices (over accepted moves) back to transcript rows.
        let accepted_rows: Vec<usize> = self
            .transcript
            .iter()
            .enumerate()
            .filter(|(_, r)| r.accepted)
            .map(|(i, _)| i)
            .collect();
        for idx in plan {
            let row = accepted_rows[idx];
            let (local, alt) = accepted[idx];
            self.transcript[row].reverted = true;
            self.assignment.set(self.input.flow_ids[local], self.input.defaults[local]);
            self.gain_a -= i64::from(self.true_a.get(local, alt));
            self.gain_b -= i64::from(self.true_b.get(local, alt));
            self.disclosed_gain_a -= i64::from(self.disclosed_a.get(local, alt));
            self.disclosed_gain_b -= i64::from(self.disclosed_b.get(local, alt));
        }
    }

    /// Drive the session to termination and collect the outcome.
    pub fn run_to_completion(&mut self) -> NegotiationOutcome {
        let termination = loop {
            if let Some(t) = self.step() {
                break t;
            }
        };
        if matches!(self.config.accept, AcceptRule::CreditVeto { .. }) {
            self.rollback_negative();
        }
        NegotiationOutcome {
            assignment: self.assignment.clone(),
            transcript: std::mem::take(&mut self.transcript),
            gain_a: self.gain_a,
            gain_b: self.gain_b,
            disclosed_gain_a: self.disclosed_gain_a,
            disclosed_gain_b: self.disclosed_gain_b,
            termination,
            reassignments: self.reassignments,
        }
    }

    /// Current disclosed preference tables `(A, B)` — exposed for the wire
    /// protocol, which transmits exactly this view.
    pub fn disclosed_tables(&self) -> (&PrefTable, &PrefTable) {
        (&self.disclosed_a, &self.disclosed_b)
    }

    /// The evolving assignment.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// Party names `(A, B)`.
    pub fn party_names(&self) -> (&str, &str) {
        (&self.party_a.name, &self.party_b.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::PreferenceMapper;
    use crate::policies::{ProposalRule, TurnPolicy};

    /// A mapper returning a fixed gain table (tests drive the engine with
    /// hand-crafted scenarios).
    struct FixedMapper {
        gains: Vec<Vec<f64>>,
    }

    impl PreferenceMapper for FixedMapper {
        fn gains(&mut self, _input: &SessionInput, _current: &Assignment) -> Vec<Vec<f64>> {
            self.gains.clone()
        }
    }

    fn input(n: usize, k: usize) -> SessionInput {
        SessionInput {
            flow_ids: (0..n).map(FlowId::new).collect(),
            defaults: vec![IcxId(0); n],
            volumes: vec![1.0; n],
            num_alternatives: k,
        }
    }

    fn run(
        gains_a: Vec<Vec<f64>>,
        gains_b: Vec<Vec<f64>>,
        config: NexitConfig,
    ) -> NegotiationOutcome {
        let n = gains_a.len();
        let k = gains_a[0].len();
        let inp = input(n, k);
        let default = Assignment::uniform(n, IcxId(0));
        let mut a = Party::honest("A", FixedMapper { gains: gains_a });
        let mut b = Party::honest("B", FixedMapper { gains: gains_b });
        negotiate(&inp, &default, &mut a, &mut b, &config)
    }

    #[test]
    fn mutually_good_move_is_taken() {
        // One flow; alternative 1 better for both.
        let out = run(
            vec![vec![0.0, 5.0]],
            vec![vec![0.0, 3.0]],
            NexitConfig::default(),
        );
        assert_eq!(out.assignment.choice(FlowId(0)), IcxId(1));
        assert!(out.gain_a > 0 && out.gain_b > 0);
        assert_eq!(out.termination, Termination::Exhausted);
    }

    #[test]
    fn trade_across_flows_wins_for_both() {
        // Flow 2 is mutually good; flows 0 and 1 are a classic trade (big
        // win for one, small loss for the other). Under greedy early
        // termination the mutually-good flow and A's winner complete, and
        // A stops before its own losing flow — both ISPs end positive.
        let out = run(
            vec![vec![0.0, 10.0], vec![0.0, -2.0], vec![0.0, 6.0]],
            vec![vec![0.0, -2.0], vec![0.0, 10.0], vec![0.0, 6.0]],
            NexitConfig::default(),
        );
        assert_eq!(out.assignment.choice(FlowId(2)), IcxId(1), "mutual win taken");
        assert!(out.gain_a > 0, "gain_a = {}", out.gain_a);
        assert!(out.gain_b > 0, "gain_b = {}", out.gain_b);
    }

    #[test]
    fn negotiate_all_completes_the_full_trade() {
        // The same trade completes fully in negotiate-all mode (the
        // socially-best outcome the paper describes), with a higher total
        // than early termination: each side trades a -2 for a +10.
        let out = run(
            vec![vec![0.0, 10.0], vec![0.0, -2.0], vec![0.0, 6.0]],
            vec![vec![0.0, -2.0], vec![0.0, 10.0], vec![0.0, 6.0]],
            NexitConfig {
                stop: StopPolicy::NegotiateAll,
                ..NexitConfig::default()
            },
        );
        assert_eq!(out.assignment.choice(FlowId(0)), IcxId(1));
        assert_eq!(out.assignment.choice(FlowId(1)), IcxId(1));
        assert_eq!(out.assignment.choice(FlowId(2)), IcxId(1));
        assert_eq!(out.gain_a, 14);
        assert_eq!(out.gain_b, 14);
    }

    #[test]
    fn negative_combined_alternatives_fall_back_to_default() {
        // Flow 0 helps A; flow 1's non-default alternative has negative
        // combined sum (-1), so the combined-max criterion selects flow
        // 1's default instead and nobody loses. (Both tables span +/-10 so
        // global quantization is the identity here.)
        let out = run(
            vec![vec![0.0, 10.0], vec![0.0, -4.0]],
            vec![vec![0.0, 10.0], vec![0.0, 3.0]],
            NexitConfig::default(),
        );
        assert_eq!(out.assignment.choice(FlowId(0)), IcxId(1));
        assert_eq!(out.assignment.choice(FlowId(1)), IcxId(0));
        assert_eq!(out.termination, Termination::Exhausted);
        assert!(out.gain_a > 0);
        assert!(out.gain_b >= 0);
    }

    #[test]
    fn early_termination_stops_a_doomed_negotiation() {
        // Flow 0's combined-best alternative is positive overall but a
        // net loss for A, and flow 1 offers A no recovery: A projects no
        // gain in continuing and stops before round one, leaving both
        // flows at their defaults.
        let out = run(
            vec![vec![0.0, -3.0], vec![0.0, -10.0]],
            vec![vec![0.0, 10.0], vec![0.0, 2.0]],
            NexitConfig::default(),
        );
        assert!(
            matches!(out.termination, Termination::Stopped(Side::A)),
            "termination = {:?}",
            out.termination
        );
        assert_eq!(out.assignment.choice(FlowId(0)), IcxId(0));
        assert_eq!(out.assignment.choice(FlowId(1)), IcxId(0));
        assert_eq!(out.gain_a, 0);
        assert_eq!(out.gain_b, 0);
        assert_eq!(out.flows_negotiated(), 0);
    }

    #[test]
    fn negotiate_all_covers_every_flow() {
        let out = run(
            vec![vec![0.0, 10.0], vec![0.0, -4.0]],
            vec![vec![0.0, 10.0], vec![0.0, 3.0]],
            NexitConfig {
                stop: StopPolicy::NegotiateAll,
                ..NexitConfig::default()
            },
        );
        // Combined sum of f1 alt1 is -1 < 0 = default sum, so the
        // combined-max proposer keeps f1 at its default alternative even
        // in negotiate-all mode; both flows are decided.
        assert_eq!(out.flows_negotiated(), 2);
        assert_eq!(out.assignment.choice(FlowId(1)), IcxId(0));
    }

    #[test]
    fn honest_isp_never_loses_with_early_stop() {
        // Adversarial-ish tables: many flows bad for A.
        let out = run(
            vec![
                vec![0.0, -5.0],
                vec![0.0, -3.0],
                vec![0.0, 1.0],
                vec![0.0, -2.0],
            ],
            vec![
                vec![0.0, 9.0],
                vec![0.0, 8.0],
                vec![0.0, 0.0],
                vec![0.0, 7.0],
            ],
            NexitConfig::default(),
        );
        assert!(out.gain_a >= 0, "A lost: {}", out.gain_a);
        assert!(out.gain_b >= 0, "B lost: {}", out.gain_b);
    }

    #[test]
    fn alternate_turns_recorded() {
        let out = run(
            vec![vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0, 1.0]],
            vec![vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0, 1.0]],
            NexitConfig::default(),
        );
        let proposers: Vec<Side> = out.transcript.iter().map(|r| r.proposer).collect();
        assert_eq!(proposers, vec![Side::A, Side::B, Side::A]);
    }

    #[test]
    fn lower_gain_turn_policy_alternates_catchup() {
        // Flow 0 strongly favors A; after it is accepted, B has lower gain
        // and should get the next turn.
        let out = run(
            vec![vec![0.0, 10.0], vec![0.0, 0.0]],
            vec![vec![0.0, 0.0], vec![0.0, 10.0]],
            NexitConfig {
                turn: TurnPolicy::LowerGain,
                ..NexitConfig::default()
            },
        );
        assert_eq!(out.transcript[0].proposer, Side::A, "tie at start -> A");
        assert_eq!(out.transcript[1].proposer, Side::B, "B is behind");
    }

    #[test]
    fn coin_toss_is_deterministic() {
        let mk = || {
            run(
                vec![vec![0.0, 1.0], vec![0.0, 1.0]],
                vec![vec![0.0, 1.0], vec![0.0, 1.0]],
                NexitConfig {
                    turn: TurnPolicy::CoinToss { seed: 99 },
                    ..NexitConfig::default()
                },
            )
        };
        let t1: Vec<Side> = mk().transcript.iter().map(|r| r.proposer).collect();
        let t2: Vec<Side> = mk().transcript.iter().map(|r| r.proposer).collect();
        assert_eq!(t1, t2);
    }

    #[test]
    fn best_local_min_harm_rule() {
        // A proposes first. MaxCombined would pick flow 1 (sum 7);
        // BestLocalMinHarm picks flow 0 (A's best local = 6 > 4), tie-broken
        // on other's preference.
        let out = run(
            vec![vec![0.0, 6.0], vec![0.0, 4.0]],
            vec![vec![0.0, 0.0], vec![0.0, 3.0]],
            NexitConfig {
                proposal: ProposalRule::BestLocalMinHarm,
                ..NexitConfig::default()
            },
        );
        assert_eq!(out.transcript[0].flow, FlowId(0));
    }

    #[test]
    fn veto_blocks_negative_cumulative() {
        // B would go negative accepting flow 0 alt 1; with veto it rejects
        // and the engine falls back to the default alternative.
        let out = run(
            vec![vec![0.0, 10.0]],
            vec![vec![0.0, -10.0]],
            NexitConfig {
                accept: AcceptRule::VetoNegativeCumulative,
                stop: StopPolicy::NegotiateAll,
                ..NexitConfig::default()
            },
        );
        assert!(out.gain_b >= 0);
        assert_eq!(out.assignment.choice(FlowId(0)), IcxId(0));
        // Transcript shows the rejected proposal.
        assert!(out.transcript.iter().any(|r| !r.accepted));
    }

    #[test]
    fn empty_session_terminates_immediately() {
        let inp = input(0, 2);
        let default = Assignment::from_choices(vec![]);
        let mut a = Party::honest("A", FixedMapper { gains: vec![] });
        let mut b = Party::honest("B", FixedMapper { gains: vec![] });
        let out = negotiate(&inp, &default, &mut a, &mut b, &NexitConfig::default());
        assert_eq!(out.termination, Termination::Exhausted);
        assert_eq!(out.flows_negotiated(), 0);
    }

    #[test]
    fn fig3_worked_example() {
        // The paper's Figure 3 walk-through (§4.1): two flows (f2, f3),
        // two alternatives (top = 1, bottom = 0), defaults = bottom,
        // preference range [-1, 1].
        //
        // Initial lists: A is averse to f2-top (-1); B indifferent to all.
        // After f2-bottom is accepted, reassignment reveals B prefers
        // f3-top (+1). Final outcome: f2 on bottom, f3 on top (Fig. 2e).
        struct IspA;
        impl PreferenceMapper for IspA {
            fn gains(&mut self, _i: &SessionInput, _c: &Assignment) -> Vec<Vec<f64>> {
                // [bottom, top] per flow; f2 = local 0, f3 = local 1.
                vec![vec![0.0, -1.0], vec![0.0, 0.0]]
            }
        }
        struct IspB;
        impl PreferenceMapper for IspB {
            fn gains(&mut self, _i: &SessionInput, current: &Assignment) -> Vec<Vec<f64>> {
                // B can handle either flow on the bottom link, but not
                // both: once f2 is settled on bottom, f3-top becomes
                // preferable.
                let f2_on_bottom = current.choice(FlowId(0)) == IcxId(0);
                let f3_top_gain = if f2_on_bottom { 1.0 } else { 0.0 };
                vec![vec![0.0, 0.0], vec![0.0, f3_top_gain]]
            }
        }
        let inp = input(2, 2);
        let default = Assignment::uniform(2, IcxId(0));
        let mut a = Party::honest("ISP-A", IspA);
        let mut b = Party::honest("ISP-B", IspB);
        let config = NexitConfig {
            pref_range: 1,
            // Reassign after every acceptance (every flow is 50% > 25%).
            reassign_interval_frac: Some(0.25),
            ..NexitConfig::default()
        };
        let out = negotiate(&inp, &default, &mut a, &mut b, &config);
        assert_eq!(
            out.assignment.choice(FlowId(0)),
            IcxId(0),
            "f2 stays on the bottom interconnection"
        );
        assert_eq!(
            out.assignment.choice(FlowId(1)),
            IcxId(1),
            "f3 moves to the top interconnection after reassignment"
        );
        assert!(out.reassignments >= 1, "reassignment must have occurred");
        assert_eq!(out.gain_b, 1, "B ends strictly better than default");
        assert_eq!(out.gain_a, 0, "A is unharmed");
    }

    #[test]
    fn reassignment_counts_volume_fraction() {
        // 20 unit-volume flows, reassign every 25% -> after every 5 accepted.
        let n = 20;
        let gains = vec![vec![0.0, 1.0]; n];
        let out = run(
            gains.clone(),
            gains,
            NexitConfig {
                reassign_interval_frac: Some(0.25),
                ..NexitConfig::default()
            },
        );
        assert_eq!(out.flows_negotiated(), n);
        // Reassignments happen at 5, 10, 15 accepted (not after the last).
        assert_eq!(out.reassignments, 3);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn arb_gains(n: usize, k: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
            proptest::collection::vec(
                proptest::collection::vec(-10.0f64..10.0, k),
                n,
            )
            .prop_map(move |mut rows| {
                for row in &mut rows {
                    row[0] = 0.0; // default column
                }
                rows
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]
            #[test]
            fn no_loss_with_veto_guard(
                ga in arb_gains(6, 3),
                gb in arb_gains(6, 3),
            ) {
                // The paper's hard no-loss guarantee ("an honest ISP can
                // always protect itself by not negotiating loses") holds
                // under the veto rule for *any* preference tables, even
                // adversarial ones.
                let out = run(ga, gb, NexitConfig {
                    accept: AcceptRule::VetoNegativeCumulative,
                    ..NexitConfig::default()
                });
                prop_assert!(out.gain_a >= 0, "A lost {}", out.gain_a);
                prop_assert!(out.gain_b >= 0, "B lost {}", out.gain_b);
            }

            #[test]
            fn credit_veto_rollback_guarantees_win_win(
                ga in arb_gains(6, 3),
                gb in arb_gains(6, 3),
                credit in 0i64..30,
            ) {
                // The provable no-loss property: with credit-bounded
                // vetoes and the end-of-session rollback, both honest
                // ISPs end with non-negative cumulative gain for *any*
                // preference tables. (Early termination alone is only a
                // perception-based heuristic: projection assumes the
                // neutral tie-break, and an adversarial proposer can pick
                // a different equal-sum alternative, so the engine's
                // guarantee is deliberately placed here instead.)
                let out = run(ga, gb, NexitConfig {
                    accept: AcceptRule::CreditVeto { credit },
                    stop: StopPolicy::NegotiateAll,
                    ..NexitConfig::default()
                });
                prop_assert!(out.gain_a >= 0, "A lost {}", out.gain_a);
                prop_assert!(out.gain_b >= 0, "B lost {}", out.gain_b);
            }

            #[test]
            fn engine_is_deterministic(
                ga in arb_gains(5, 3),
                gb in arb_gains(5, 3),
            ) {
                let o1 = run(ga.clone(), gb.clone(), NexitConfig::default());
                let o2 = run(ga, gb, NexitConfig::default());
                prop_assert_eq!(o1.assignment.choices(), o2.assignment.choices());
                prop_assert_eq!(o1.gain_a, o2.gain_a);
                prop_assert_eq!(o1.gain_b, o2.gain_b);
            }

            #[test]
            fn terminates_within_round_budget(
                ga in arb_gains(8, 4),
                gb in arb_gains(8, 4),
            ) {
                // Each accepted round removes a flow; each vetoed round
                // bans an alternative. Rounds <= flows * alternatives.
                let out = run(ga, gb, NexitConfig {
                    accept: AcceptRule::VetoNegativeCumulative,
                    stop: StopPolicy::NegotiateAll,
                    ..NexitConfig::default()
                });
                prop_assert!(out.transcript.len() <= 8 * 4);
                prop_assert!(out.gain_a >= 0);
                prop_assert!(out.gain_b >= 0);
            }

            #[test]
            fn real_metric_win_win_via_floor_quantization(
                ga in arb_gains(8, 3),
                gb in arb_gains(8, 3),
            ) {
                // The documented theorem: floor quantization never
                // overstates a gain (raw >= class * quantum for every
                // cell), so a non-negative cumulative class gain implies
                // a non-negative cumulative *raw metric* gain. With the
                // credit-veto rollback the class gain is >= 0, hence so
                // is the real one.
                let n = ga.len();
                let out = run(ga.clone(), gb.clone(), NexitConfig::win_win());
                let raw = |table: &Vec<Vec<f64>>| -> f64 {
                    (0..n)
                        .map(|f| table[f][out.assignment.choice(FlowId::new(f)).index()])
                        .sum()
                };
                prop_assert!(out.gain_a >= 0 && out.gain_b >= 0);
                prop_assert!(raw(&ga) >= -1e-9, "A's real metric went negative: {}", raw(&ga));
                prop_assert!(raw(&gb) >= -1e-9, "B's real metric went negative: {}", raw(&gb));
            }

            #[test]
            fn full_termination_never_negative(
                ga in arb_gains(6, 3),
                gb in arb_gains(6, 3),
            ) {
                let out = run(ga, gb, NexitConfig {
                    stop: StopPolicy::Full,
                    ..NexitConfig::default()
                });
                prop_assert!(out.gain_a >= 0);
                prop_assert!(out.gain_b >= 0);
            }
        }
    }
}
