//! Pluggable negotiation policies.
//!
//! The paper specifies that "the exact implementation method of each step
//! is agreed upon contractually in advance by the ISPs" and lists concrete
//! options for each step; every listed option is implemented here.

/// Who proposes in the next round (paper: "Decide turn").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TurnPolicy {
    /// The ISPs alternate (the paper's experimental setting).
    Alternate,
    /// The ISP with the lower cumulative disclosed gain proposes, giving
    /// it a chance to catch up (approximates max-min fairness, §4.2).
    LowerGain,
    /// A deterministic seeded coin toss per round.
    CoinToss {
        /// Seed for the per-round coin.
        seed: u64,
    },
}

serde::impl_json_enum!(TurnPolicy { Alternate, LowerGain, CoinToss { seed } });

/// How the proposer selects the next (flow, alternative) (paper:
/// "Propose an alternative").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProposalRule {
    /// Maximize the sum of both ISPs' disclosed preferences, breaking ties
    /// with the proposer's local preference (the paper's experimental
    /// setting; approximates Pareto-optimal outcomes).
    MaxCombined,
    /// Propose the proposer's best local alternative, breaking ties by
    /// minimal negative impact on the other ISP (the paper's listed
    /// alternative).
    BestLocalMinHarm,
}

serde::impl_json_enum!(ProposalRule {
    MaxCombined,
    BestLocalMinHarm
});

/// Whether the non-proposing ISP accepts (paper: "Accept alternative?").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptRule {
    /// Always accept (the paper's experimental setting — full
    /// cooperation).
    Always,
    /// Veto any proposal that would push the acceptor's *true* cumulative
    /// gain below zero. Vetoed alternatives are withdrawn for the rest of
    /// the negotiation and the proposer re-proposes.
    VetoNegativeCumulative,
    /// Credit-bounded veto with end-of-session rollback (the paper's §4
    /// "credits" idea made concrete): interim dips down to `-credit`
    /// preference units are tolerated so that cross-flow trades can be
    /// sequenced, and when the table is exhausted each ISP rolls back its
    /// worst accepted compromises (§6: "partially or fully rollback the
    /// compromises made in return") until its cumulative disclosed gain
    /// is non-negative. Guarantees a win-win outcome in preference units
    /// while capturing far more of the trade space than a zero-credit
    /// veto, which deadlocks on any constant-sum flow set.
    CreditVeto {
        /// Maximum tolerated interim deficit, in preference units.
        credit: i64,
    },
}

serde::impl_json_enum!(AcceptRule { Always, VetoNegativeCumulative, CreditVeto { credit } });

/// When negotiation ends (paper: "Stop?").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopPolicy {
    /// Stop as soon as either ISP projects no additional self-gain from
    /// continuing ("early termination", the paper's experimental
    /// setting).
    Early,
    /// Continue while the stopping ISP's cumulative gain stays positive,
    /// even if lower than with early termination ("full termination").
    Full,
    /// Negotiate every flow regardless of individual gains (the
    /// socially-best mode the paper describes).
    NegotiateAll,
}

serde::impl_json_enum!(StopPolicy {
    Early,
    Full,
    NegotiateAll
});

/// Complete engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NexitConfig {
    /// Preference class range `P` (classes live in `[-P, P]`). The paper
    /// uses 10 and reports no benefit beyond that.
    pub pref_range: i32,
    /// Turn policy.
    pub turn: TurnPolicy,
    /// Proposal selection rule.
    pub proposal: ProposalRule,
    /// Acceptance rule.
    pub accept: AcceptRule,
    /// Stop policy.
    pub stop: StopPolicy,
    /// Reassign preferences after this fraction of total negotiated-set
    /// traffic volume has been accepted (paper: 5% for bandwidth, `None`
    /// for distance).
    pub reassign_interval_frac: Option<f64>,
}

serde::impl_json_struct!(NexitConfig {
    pref_range,
    turn,
    proposal,
    accept,
    stop,
    reassign_interval_frac,
});

impl Default for NexitConfig {
    /// The paper's experimental configuration for distance experiments:
    /// `P = 10`, alternate turns, combined-maximum proposals, always
    /// accept, early termination, no reassignment.
    fn default() -> Self {
        Self {
            pref_range: 10,
            turn: TurnPolicy::Alternate,
            proposal: ProposalRule::MaxCombined,
            accept: AcceptRule::Always,
            stop: StopPolicy::Early,
            reassign_interval_frac: None,
        }
    }
}

impl NexitConfig {
    /// The paper's bandwidth-experiment configuration: like the default
    /// but preferences are reassigned after each 5% of traffic.
    pub fn bandwidth() -> Self {
        Self {
            reassign_interval_frac: Some(0.05),
            ..Self::default()
        }
    }

    /// The win-win configuration this reproduction's experiments use:
    /// credit-bounded vetoes with end-of-session rollback and full
    /// negotiation. On synthetic topologies the paper's strict setting
    /// (always-accept + early termination) abandons asymmetric pairs —
    /// one ISP projects a net loss and quits before any trade — while
    /// this mode provably ends win-win *and* captures nearly the whole
    /// optimal gain (see the engine's property tests and the ablation
    /// experiment comparing the modes).
    pub fn win_win() -> Self {
        Self {
            accept: AcceptRule::CreditVeto { credit: 1 << 40 },
            stop: StopPolicy::NegotiateAll,
            ..Self::default()
        }
    }

    /// [`NexitConfig::win_win`] plus the paper's 5% bandwidth
    /// reassignment interval.
    pub fn win_win_bandwidth() -> Self {
        Self {
            reassign_interval_frac: Some(0.05),
            ..Self::win_win()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_distance_setup() {
        let c = NexitConfig::default();
        assert_eq!(c.pref_range, 10);
        assert_eq!(c.turn, TurnPolicy::Alternate);
        assert_eq!(c.proposal, ProposalRule::MaxCombined);
        assert_eq!(c.accept, AcceptRule::Always);
        assert_eq!(c.stop, StopPolicy::Early);
        assert_eq!(c.reassign_interval_frac, None);
    }

    #[test]
    fn bandwidth_config_reassigns_at_5pct() {
        let c = NexitConfig::bandwidth();
        assert_eq!(c.reassign_interval_frac, Some(0.05));
    }

    #[test]
    fn config_serializes() {
        let c = NexitConfig::bandwidth();
        let json = serde_json::to_string(&c).unwrap();
        let back: NexitConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
