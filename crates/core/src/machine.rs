//! The sans-IO negotiation machine: one side of the paper's §4 round
//! loop as a pure event-in / action-out state machine.
//!
//! This is the *single* implementation of every protocol decision —
//! disclosure order, turn taking, proposal selection, accept/veto,
//! reassignment pacing, early/full termination, and the §6 credit-veto
//! rollback. Everything else in the workspace is a driver around it:
//!
//! * [`crate::engine::negotiate`] instantiates two machines and shuttles
//!   events between them synchronously (the in-process simulation path),
//! * `nexit-proto`'s `Agent` wraps one machine in a frame codec and a
//!   session handshake (the deployment path).
//!
//! Because both paths execute the same machine, the engine↔protocol
//! equivalence that used to be an empirical cross-check is structural:
//! there is no second copy of the round loop to drift.
//!
//! ## Interaction model
//!
//! Feed peer activity with [`NegotiationMachine::handle`]; drain what
//! this side wants to transmit with [`NegotiationMachine::poll_action`]
//! (which also lets the machine act when it holds the turn). The machine
//! never blocks, sleeps, or touches a transport — drivers own all IO.
//!
//! ```text
//!            +--------------------- Event ----------------------+
//!  transport |  PeerPrefs / Proposal / Response / Stop / Bye    |
//!  ========> |                                                  |
//!            |              NegotiationMachine                  |
//!  <======== |                                                  |
//!  transport |  SendPrefs / SendProposal / SendResponse /       |
//!            +--------- Action: SendStop / SendBye -------------+
//! ```

use crate::arena::{GainTable, TableArena};
use crate::cheating::DisclosurePolicy;
use crate::engine::SessionInput;
use crate::index::CandidateIndex;
use crate::mapping::PreferenceMapper;
use crate::outcome::{Side, Termination};
use crate::policies::{AcceptRule, NexitConfig, StopPolicy};
use crate::prefs::{quantize_into, PrefTable};
use crate::selection::{self, TableState};
use nexit_routing::Assignment;
use nexit_topology::IcxId;
use std::collections::VecDeque;

/// Peer activity fed into the machine.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The peer's disclosed preference table (initial disclosure or a
    /// reassignment refresh).
    PeerPrefs {
        /// Disclosed classes, one row per session flow.
        prefs: PrefTable,
    },
    /// The peer proposes an alternative for one flow.
    Proposal {
        /// The proposer's round counter (must match ours).
        round: u32,
        /// Local flow index within the session.
        local_flow: usize,
        /// The proposed alternative.
        alternative: IcxId,
    },
    /// The peer answers our proposal.
    Response {
        /// The round being answered.
        round: u32,
        /// Whether the peer accepted.
        accepted: bool,
    },
    /// The peer terminates under its stop policy.
    PeerStop {
        /// The side that stopped (echoed from the wire).
        side: Side,
    },
    /// The peer is out of proposals (orderly completion).
    PeerBye,
}

/// What this side wants transmitted to the peer.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Disclose our preference table.
    SendPrefs {
        /// Disclosed classes, one row per session flow.
        prefs: PrefTable,
    },
    /// Propose an alternative for one flow.
    SendProposal {
        /// Our round counter.
        round: u32,
        /// Local flow index within the session.
        local_flow: usize,
        /// The proposed alternative.
        alternative: IcxId,
    },
    /// Answer the peer's proposal.
    SendResponse {
        /// The round being answered.
        round: u32,
        /// Whether we accepted.
        accepted: bool,
    },
    /// Terminate under our stop policy.
    SendStop {
        /// Our side.
        side: Side,
    },
    /// Orderly close (nothing left to propose, or acknowledging the
    /// peer's close).
    SendBye,
}

/// Protocol violations surfaced by the machine. All are fatal to the
/// session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// The session input or configuration is structurally invalid.
    InvalidSession(crate::engine::SessionError),
    /// The configured disclosure policy needs the peer's list first, but
    /// this side is the first discloser.
    UnsupportedDisclosure,
    /// A preference list had the wrong shape or out-of-range classes.
    BadPrefList(&'static str),
    /// A proposal or response referenced an invalid or settled
    /// flow/alternative, or arrived out of turn.
    BadProposal(&'static str),
    /// A valid event arrived in the wrong state.
    UnexpectedEvent {
        /// The machine phase the event arrived in.
        state: &'static str,
        /// The event kind.
        event: &'static str,
    },
    /// The machine already failed or completed.
    Closed,
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::InvalidSession(e) => write!(f, "invalid session: {e}"),
            MachineError::UnsupportedDisclosure => {
                write!(f, "disclosure policy requires seeing the peer's list first")
            }
            MachineError::BadPrefList(what) => write!(f, "bad preference list: {what}"),
            MachineError::BadProposal(what) => write!(f, "bad proposal: {what}"),
            MachineError::UnexpectedEvent { state, event } => {
                write!(f, "unexpected {event} in state {state}")
            }
            MachineError::Closed => write!(f, "machine closed"),
        }
    }
}

impl std::error::Error for MachineError {}

/// Final result of one machine's session.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineOutcome {
    /// The agreed assignment over all pair flows.
    pub assignment: Assignment,
    /// This side's true cumulative preference gain.
    pub my_gain: i64,
    /// How the session ended.
    pub termination: Termination,
    /// Rounds executed.
    pub rounds: u32,
    /// Preference reassignments performed.
    pub reassignments: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Initial disclosure: tables not yet exchanged.
    Disclose,
    /// Round loop: act when it is our turn, else await a proposal.
    Turn,
    /// We proposed; awaiting the peer's response.
    AwaitResponse,
    /// Reassignment triggered; awaiting the peer's fresh list.
    AwaitReassign,
    /// We sent Stop or Bye; awaiting the peer's close.
    Closing,
    /// Session complete.
    Done,
    /// Session failed.
    Failed,
}

fn phase_name(p: Phase) -> &'static str {
    match p {
        Phase::Disclose => "Disclose",
        Phase::Turn => "Turn",
        Phase::AwaitResponse => "AwaitResponse",
        Phase::AwaitReassign => "AwaitReassign",
        Phase::Closing => "Closing",
        Phase::Done => "Done",
        Phase::Failed => "Failed",
    }
}

fn event_name(e: &Event) -> &'static str {
    match e {
        Event::PeerPrefs { .. } => "PeerPrefs",
        Event::Proposal { .. } => "Proposal",
        Event::Response { .. } => "Response",
        Event::PeerStop { .. } => "PeerStop",
        Event::PeerBye => "PeerBye",
    }
}

/// One side of a negotiation as a pure state machine.
///
/// Generic over the preference mapper so drivers choose their ownership:
/// the in-process engine lends `&mut dyn PreferenceMapper` from its
/// [`crate::engine::Party`]s, the wire agent owns a boxed `Send` mapper.
pub struct NegotiationMachine<M: PreferenceMapper> {
    side: Side,
    first_discloser: Side,
    mapper: M,
    disclosure: DisclosurePolicy,
    config: NexitConfig,
    input: SessionInput,
    assignment: Assignment,
    state: TableState,
    /// Incremental candidate index over the disclosed tables; rebuilt at
    /// every (re)disclosure, updated on accept/veto. Takes bit-identical
    /// decisions to the [`selection`] reference scans.
    index: CandidateIndex,
    actions: VecDeque<Action>,
    phase: Phase,
    /// Whether our list went out in the current (re)disclosure exchange.
    sent_prefs: bool,
    my_true: PrefTable,
    my_disclosed: PrefTable,
    their_disclosed: PrefTable,
    /// Mapper output scratch, reused across every (re)disclosure.
    gains: GainTable,
    /// Quantization sort scratch, reused likewise.
    magnitudes: Vec<f64>,
    my_gain: i64,
    disclosed_gain_a: i64,
    disclosed_gain_b: i64,
    round: u32,
    volume_since_reassign: f64,
    reassignments: usize,
    pending: Option<(usize, IcxId)>,
    termination: Option<Termination>,
    /// Accepted moves in round order, for the credit-veto rollback.
    accepted_log: Vec<(usize, IcxId)>,
    /// Indices into `accepted_log` reverted by the rollback.
    reverted: Vec<usize>,
}

impl<M: PreferenceMapper> NegotiationMachine<M> {
    /// Create one side of a session.
    ///
    /// Both machines of a pair must be constructed from the same `input`,
    /// `default_assignment`, `config` and `first_discloser` (in
    /// deployment these come from the §6 flow-signature agreement and the
    /// peering contract). `first_discloser` names the side that sends its
    /// preference list without having seen the peer's; a disclosure
    /// policy that needs the peer's list first (the §5.4 inflate-best
    /// cheater) is rejected on that side.
    pub fn new(
        side: Side,
        first_discloser: Side,
        input: SessionInput,
        default_assignment: Assignment,
        mapper: M,
        disclosure: DisclosurePolicy,
        config: NexitConfig,
    ) -> Result<Self, MachineError> {
        Self::new_in(
            &mut TableArena::new(),
            side,
            first_discloser,
            input,
            default_assignment,
            mapper,
            disclosure,
            config,
        )
    }

    /// [`NegotiationMachine::new`] drawing every table and index buffer
    /// from `arena`. Pair with [`NegotiationMachine::recycle`]: a driver
    /// that runs sessions back to back (grouped negotiation, scenario
    /// sweeps) allocates each backing buffer exactly once.
    #[allow(clippy::too_many_arguments)] // mirrors `new` plus the arena
    pub fn new_in(
        arena: &mut TableArena,
        side: Side,
        first_discloser: Side,
        input: SessionInput,
        default_assignment: Assignment,
        mapper: M,
        disclosure: DisclosurePolicy,
        config: NexitConfig,
    ) -> Result<Self, MachineError> {
        if side == first_discloser && disclosure.needs_peer_list() {
            return Err(MachineError::UnsupportedDisclosure);
        }
        input.check().map_err(MachineError::InvalidSession)?;
        if config.pref_range <= 0 {
            return Err(MachineError::InvalidSession(
                crate::engine::SessionError::BadPrefRange(config.pref_range),
            ));
        }
        let n = input.len();
        let k = input.num_alternatives;
        let index = CandidateIndex::new_in(
            arena,
            config.proposal,
            config.pref_range,
            &input.defaults,
            k,
            config.stop == StopPolicy::Early,
        );
        let mut machine = Self {
            side,
            first_discloser,
            mapper,
            disclosure,
            config,
            input,
            assignment: default_assignment,
            state: TableState::new(n, k),
            index,
            actions: VecDeque::new(),
            phase: Phase::Disclose,
            sent_prefs: false,
            my_true: arena.pref_table(n, k),
            my_disclosed: arena.pref_table(n, k),
            their_disclosed: arena.pref_table(n, k),
            gains: arena.gain_table(n, k),
            // Recycled through the arena as a shapeless gain buffer —
            // only its capacity matters.
            magnitudes: arena.gain_table(0, 0).into_storage(),
            my_gain: 0,
            disclosed_gain_a: 0,
            disclosed_gain_b: 0,
            round: 0,
            volume_since_reassign: 0.0,
            reassignments: 0,
            pending: None,
            termination: None,
            accepted_log: Vec::new(),
            reverted: Vec::new(),
        };
        if side == first_discloser {
            machine.disclose_own();
        }
        Ok(machine)
    }

    /// Retire the machine, returning its table and index buffers to
    /// `arena` for the next [`NegotiationMachine::new_in`].
    pub fn recycle(self, arena: &mut TableArena) {
        arena.recycle_pref(self.my_true);
        arena.recycle_pref(self.my_disclosed);
        arena.recycle_pref(self.their_disclosed);
        arena.recycle_gain(self.gains);
        arena.recycle_gain(GainTable::from_storage(self.magnitudes, 0, 0));
        self.index.recycle(arena);
    }

    /// This machine's side.
    pub fn side(&self) -> Side {
        self.side
    }

    /// Feed one peer event.
    pub fn handle(&mut self, event: Event) -> Result<(), MachineError> {
        if self.phase == Phase::Failed {
            return Err(MachineError::Closed);
        }
        let result = self.dispatch(event);
        if result.is_err() {
            self.phase = Phase::Failed;
        }
        result
    }

    /// Pop the next outgoing action, advancing the machine first so it
    /// can act whenever it holds the turn.
    pub fn poll_action(&mut self) -> Option<Action> {
        self.advance();
        self.actions.pop_front()
    }

    /// Whether the session reached a terminal state (done or failed) and
    /// every pending action has been drained.
    pub fn is_done(&self) -> bool {
        matches!(self.phase, Phase::Done | Phase::Failed) && self.actions.is_empty()
    }

    /// The outcome, once the session completed successfully.
    pub fn outcome(&self) -> Option<MachineOutcome> {
        if self.phase != Phase::Done {
            return None;
        }
        Some(MachineOutcome {
            assignment: self.assignment.clone(),
            my_gain: self.my_gain,
            termination: self.termination.unwrap_or(Termination::Exhausted),
            rounds: self.round,
            reassignments: self.reassignments,
        })
    }

    /// How the session ended, once terminal.
    pub fn termination(&self) -> Option<Termination> {
        self.termination
    }

    /// Whether the machine is waiting for the peer's preference list
    /// (initial disclosure or a post-reassignment re-disclosure). Used
    /// by replay-tolerant transports: while this holds, a byte-identical
    /// `PeerPrefs` is fresh data (an honestly unchanged table encodes to
    /// the same bytes), not a duplicate.
    pub fn expects_prefs(&self) -> bool {
        matches!(self.phase, Phase::Disclose | Phase::AwaitReassign)
    }

    /// The evolving (or final) assignment.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// This side's true cumulative preference gain so far.
    pub fn my_gain(&self) -> i64 {
        self.my_gain
    }

    /// Cumulative disclosed gains in `(A, B)` orientation (identical on
    /// both machines of a pair).
    pub fn disclosed_gains(&self) -> (i64, i64) {
        (self.disclosed_gain_a, self.disclosed_gain_b)
    }

    /// Preference reassignments performed.
    pub fn reassignments(&self) -> usize {
        self.reassignments
    }

    /// Accepted moves `(local_flow, alternative)` in round order.
    pub fn accepted_log(&self) -> &[(usize, IcxId)] {
        &self.accepted_log
    }

    /// Indices into [`NegotiationMachine::accepted_log`] reverted by the
    /// end-of-session rollback (credit-veto mode only), in revert order.
    pub fn reverted_indices(&self) -> &[usize] {
        &self.reverted
    }

    /// Current disclosed preference tables in `(A, B)` orientation —
    /// exactly the view a transcript of the wire would show.
    pub fn disclosed_tables(&self) -> (&PrefTable, &PrefTable) {
        match self.side {
            Side::A => (&self.my_disclosed, &self.their_disclosed),
            Side::B => (&self.their_disclosed, &self.my_disclosed),
        }
    }

    /// Map our preferences, disclose, and queue the transmission. The
    /// whole chain (mapper gains → quantize → disclose) writes into
    /// buffers reused across reassignments; only the wire copy of the
    /// disclosed table is fresh.
    fn disclose_own(&mut self) {
        self.gains
            .reset(self.input.len(), self.input.num_alternatives);
        self.mapper
            .gains(&self.input, &self.assignment, &mut self.gains);
        quantize_into(
            &self.gains,
            self.config.pref_range,
            &mut self.my_true,
            &mut self.magnitudes,
        );
        self.disclosure.disclose_into(
            &self.my_true,
            &self.their_disclosed,
            self.config.pref_range,
            &self.input.defaults,
            &mut self.my_disclosed,
        );
        self.sent_prefs = true;
        self.actions.push_back(Action::SendPrefs {
            prefs: self.my_disclosed.clone(),
        });
    }

    fn store_their_prefs(&mut self, prefs: PrefTable) -> Result<(), MachineError> {
        if prefs.num_flows() != self.input.len() {
            return Err(MachineError::BadPrefList("row count mismatch"));
        }
        if prefs.num_flows() > 0 && prefs.num_alternatives() != self.input.num_alternatives {
            return Err(MachineError::BadPrefList("alternative count mismatch"));
        }
        if !prefs.within_range(self.config.pref_range) {
            return Err(MachineError::BadPrefList("class out of range"));
        }
        self.their_disclosed = prefs;
        Ok(())
    }

    /// Disclosed tables in `(own, other)` orientation for selection.
    fn selection_tables(&self) -> (&PrefTable, &PrefTable) {
        (&self.my_disclosed, &self.their_disclosed)
    }

    fn whose_turn(&self) -> Side {
        selection::decide_turn(
            self.config.turn,
            self.round as usize,
            self.disclosed_gain_a,
            self.disclosed_gain_b,
        )
    }

    fn my_projection(&self) -> i64 {
        let (d_own, d_other) = self.selection_tables();
        self.index
            .projected_gain(&self.my_true, d_own, d_other, &self.state)
    }

    /// Rebuild the candidate index after a (re)disclosure changed the
    /// tables it is keyed on.
    fn rebuild_index(&mut self) {
        self.index.rebuild(
            &self.my_disclosed,
            &self.their_disclosed,
            &self.my_true,
            &self.state,
        );
    }

    /// Act when the round loop hands us the turn.
    fn advance(&mut self) {
        if self.phase != Phase::Turn {
            return;
        }
        if self.state.num_remaining() == 0 {
            self.termination = Some(Termination::Exhausted);
            self.actions.push_back(Action::SendBye);
            self.phase = Phase::Closing;
            return;
        }
        if self.whose_turn() != self.side {
            return; // peer proposes; we wait
        }
        // Our turn: early-termination self check.
        if self.config.stop == StopPolicy::Early && self.my_projection() < 0 {
            self.stop_self();
            return;
        }
        let self_guard_floor = match self.config.accept {
            AcceptRule::Always => None,
            AcceptRule::VetoNegativeCumulative => Some(self.my_gain),
            AcceptRule::CreditVeto { credit } => Some(self.my_gain + credit),
        };
        let proposal = self.index.select(
            &self.my_disclosed,
            &self.their_disclosed,
            &self.state,
            self_guard_floor.map(|floor| (&self.my_true, floor)),
        );
        let Some((local, alt)) = proposal else {
            self.termination = Some(Termination::Exhausted);
            self.actions.push_back(Action::SendBye);
            self.phase = Phase::Closing;
            return;
        };
        // Full-termination self check against the concrete proposal.
        if self.full_stop_violated(local, alt) {
            self.stop_self();
            return;
        }
        self.pending = Some((local, alt));
        self.actions.push_back(Action::SendProposal {
            round: self.round,
            local_flow: local,
            alternative: alt,
        });
        self.phase = Phase::AwaitResponse;
    }

    fn stop_self(&mut self) {
        self.termination = Some(Termination::Stopped(self.side));
        self.actions.push_back(Action::SendStop { side: self.side });
        self.phase = Phase::Closing;
    }

    /// Whether accepting `(local, alt)` would break the full-termination
    /// floor ("ISPs may continue as long as their cumulative gain is
    /// positive", paper §4).
    fn full_stop_violated(&self, local: usize, alt: IcxId) -> bool {
        self.config.stop == StopPolicy::Full
            && self.my_gain + i64::from(self.my_true.get(local, alt)) < 0
    }

    fn dispatch(&mut self, event: Event) -> Result<(), MachineError> {
        match (self.phase, event) {
            (Phase::Disclose | Phase::AwaitReassign, Event::PeerPrefs { prefs }) => {
                self.store_their_prefs(prefs)?;
                if !self.sent_prefs {
                    // We disclose second, seeing the peer's list first (a
                    // cheating second discloser exploits exactly this).
                    self.disclose_own();
                }
                self.sent_prefs = false;
                // Both tables are now settled for the coming rounds.
                self.rebuild_index();
                self.phase = Phase::Turn;
                Ok(())
            }
            (
                Phase::Turn,
                Event::Proposal {
                    round,
                    local_flow,
                    alternative,
                },
            ) => {
                if self.whose_turn() == self.side {
                    return Err(MachineError::BadProposal("proposal out of turn"));
                }
                if round != self.round {
                    return Err(MachineError::BadProposal("round mismatch"));
                }
                if local_flow >= self.input.len() || !self.state.is_remaining(local_flow) {
                    return Err(MachineError::BadProposal("flow not on the table"));
                }
                if alternative.index() >= self.input.num_alternatives
                    || self.state.is_banned(local_flow, alternative.index())
                {
                    return Err(MachineError::BadProposal("alternative unavailable"));
                }
                // Our own stop checks, exercised as the acceptor.
                if self.config.stop == StopPolicy::Early && self.my_projection() < 0 {
                    self.stop_self();
                    return Ok(());
                }
                if self.full_stop_violated(local_flow, alternative) {
                    self.stop_self();
                    return Ok(());
                }
                let accepted = match self.config.accept {
                    AcceptRule::Always => true,
                    AcceptRule::VetoNegativeCumulative => {
                        self.my_gain + i64::from(self.my_true.get(local_flow, alternative)) >= 0
                    }
                    AcceptRule::CreditVeto { credit } => {
                        self.my_gain + i64::from(self.my_true.get(local_flow, alternative))
                            >= -credit
                    }
                };
                self.actions.push_back(Action::SendResponse {
                    round: self.round,
                    accepted,
                });
                self.apply_round_result(local_flow, alternative, accepted);
                Ok(())
            }
            (Phase::AwaitResponse, Event::Response { round, accepted }) => {
                if round != self.round {
                    return Err(MachineError::BadProposal("response round mismatch"));
                }
                let (local, alt) = self
                    .pending
                    .take()
                    .expect("AwaitResponse without pending proposal");
                self.apply_round_result(local, alt, accepted);
                Ok(())
            }
            (Phase::AwaitResponse | Phase::Turn, Event::PeerStop { side }) => {
                self.termination = Some(Termination::Stopped(side));
                self.pending = None;
                self.actions.push_back(Action::SendBye);
                self.finish();
                Ok(())
            }
            (Phase::AwaitResponse | Phase::Turn, Event::PeerBye) => {
                self.termination = Some(Termination::Exhausted);
                self.pending = None;
                self.actions.push_back(Action::SendBye);
                self.finish();
                Ok(())
            }
            (Phase::Closing, Event::PeerBye) => {
                self.finish();
                Ok(())
            }
            (Phase::Closing, Event::PeerStop { .. }) => {
                // Simultaneous stop from the peer while ours is in
                // flight: keep the earlier (our) termination, still
                // answer with Bye.
                self.actions.push_back(Action::SendBye);
                self.finish();
                Ok(())
            }
            (phase, event) => Err(MachineError::UnexpectedEvent {
                state: phase_name(phase),
                event: event_name(&event),
            }),
        }
    }

    /// Apply one completed round (both sides run this identically).
    fn apply_round_result(&mut self, local: usize, alt: IcxId, accepted: bool) {
        self.round += 1;
        if !accepted {
            // Vetoed: withdraw this alternative; the flow stays on the
            // table with its other alternatives.
            self.state.ban(local, alt.index());
            self.index.on_ban(
                &self.my_disclosed,
                &self.their_disclosed,
                &self.my_true,
                &self.state,
                local,
            );
            self.phase = Phase::Turn;
            return;
        }
        self.state.accept(local);
        self.index.on_accept(local);
        self.accepted_log.push((local, alt));
        self.assignment.set(self.input.flow_ids[local], alt);
        self.my_gain += i64::from(self.my_true.get(local, alt));
        let (d_a, d_b) = self.disclosed_tables();
        let (gain_a, gain_b) = (
            i64::from(d_a.get(local, alt)),
            i64::from(d_b.get(local, alt)),
        );
        self.disclosed_gain_a += gain_a;
        self.disclosed_gain_b += gain_b;
        self.volume_since_reassign += self.input.volumes[local];

        // Reassignment trigger: computed identically on both sides.
        if let Some(frac) = self.config.reassign_interval_frac {
            let threshold = frac * self.input.total_volume();
            if self.volume_since_reassign >= threshold && self.state.num_remaining() > 0 {
                self.reassignments += 1;
                self.volume_since_reassign = 0.0;
                self.phase = Phase::AwaitReassign;
                self.sent_prefs = false;
                if self.side == self.first_discloser {
                    self.disclose_own();
                }
                return;
            }
        }
        self.phase = Phase::Turn;
    }

    /// Close the session: apply the credit-veto rollback (computed
    /// identically by both sides from disclosed state) and mark Done.
    ///
    /// The rollback plan reverts each side's disclosedly-worst accepted
    /// compromises until both cumulative disclosed gains are
    /// non-negative; for honest parties disclosed equals true, so the
    /// win-win guarantee carries to true preference units (and, with the
    /// floor quantization, to the real metric).
    fn finish(&mut self) {
        if matches!(self.config.accept, AcceptRule::CreditVeto { .. }) {
            let (d_a, d_b) = match self.side {
                Side::A => (&self.my_disclosed, &self.their_disclosed),
                Side::B => (&self.their_disclosed, &self.my_disclosed),
            };
            let plan = selection::rollback_plan(
                d_a,
                d_b,
                &self.accepted_log,
                self.disclosed_gain_a,
                self.disclosed_gain_b,
            );
            for &idx in &plan {
                let (local, alt) = self.accepted_log[idx];
                self.assignment
                    .set(self.input.flow_ids[local], self.input.defaults[local]);
                self.my_gain -= i64::from(self.my_true.get(local, alt));
                let (d_a, d_b) = self.disclosed_tables();
                let (rev_a, rev_b) = (
                    i64::from(d_a.get(local, alt)),
                    i64::from(d_b.get(local, alt)),
                );
                self.disclosed_gain_a -= rev_a;
                self.disclosed_gain_b -= rev_b;
            }
            self.reverted = plan;
        }
        self.phase = Phase::Done;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SessionInput;
    use nexit_routing::FlowId;

    /// A mapper returning a fixed gain table.
    struct FixedMapper {
        gains: GainTable,
    }

    impl FixedMapper {
        fn new<R: AsRef<[f64]>>(rows: &[R]) -> Self {
            Self {
                gains: GainTable::from_rows(rows),
            }
        }
    }

    impl PreferenceMapper for FixedMapper {
        fn gains(&mut self, _input: &SessionInput, _current: &Assignment, out: &mut GainTable) {
            out.copy_from(&self.gains);
        }
    }

    fn input(n: usize, k: usize) -> SessionInput {
        SessionInput {
            flow_ids: (0..n).map(FlowId::new).collect(),
            defaults: vec![IcxId(0); n],
            volumes: vec![1.0; n],
            num_alternatives: k,
        }
    }

    fn pair(
        gains_a: &[Vec<f64>],
        gains_b: &[Vec<f64>],
        config: NexitConfig,
    ) -> (
        NegotiationMachine<FixedMapper>,
        NegotiationMachine<FixedMapper>,
    ) {
        let n = gains_a.len();
        let k = gains_a.first().map_or(1, Vec::len);
        let inp = input(n, k);
        let default = Assignment::uniform(n, IcxId(0));
        let a = NegotiationMachine::new(
            Side::A,
            Side::A,
            inp.clone(),
            default.clone(),
            FixedMapper::new(gains_a),
            DisclosurePolicy::Truthful,
            config,
        )
        .unwrap();
        let b = NegotiationMachine::new(
            Side::B,
            Side::A,
            inp,
            default,
            FixedMapper::new(gains_b),
            DisclosurePolicy::Truthful,
            config,
        )
        .unwrap();
        (a, b)
    }

    /// Shuttle events until both machines are done.
    fn pump(
        a: &mut NegotiationMachine<FixedMapper>,
        b: &mut NegotiationMachine<FixedMapper>,
    ) -> (MachineOutcome, MachineOutcome) {
        fn to_event(action: Action) -> Event {
            match action {
                Action::SendPrefs { prefs } => Event::PeerPrefs { prefs },
                Action::SendProposal {
                    round,
                    local_flow,
                    alternative,
                } => Event::Proposal {
                    round,
                    local_flow,
                    alternative,
                },
                Action::SendResponse { round, accepted } => Event::Response { round, accepted },
                Action::SendStop { side } => Event::PeerStop { side },
                Action::SendBye => Event::PeerBye,
            }
        }
        for _ in 0..10_000 {
            let mut progressed = false;
            while let Some(action) = a.poll_action() {
                b.handle(to_event(action)).unwrap();
                progressed = true;
            }
            while let Some(action) = b.poll_action() {
                a.handle(to_event(action)).unwrap();
                progressed = true;
            }
            if a.is_done() && b.is_done() {
                return (a.outcome().unwrap(), b.outcome().unwrap());
            }
            assert!(progressed, "machine pair deadlocked");
        }
        panic!("machine pair did not terminate");
    }

    #[test]
    fn mutually_good_move_is_taken() {
        let (mut a, mut b) = pair(&[vec![0.0, 5.0]], &[vec![0.0, 3.0]], NexitConfig::default());
        let (out_a, out_b) = pump(&mut a, &mut b);
        assert_eq!(out_a.assignment.choice(FlowId(0)), IcxId(1));
        assert_eq!(out_a.assignment, out_b.assignment);
        assert!(out_a.my_gain > 0 && out_b.my_gain > 0);
        assert_eq!(out_a.termination, Termination::Exhausted);
    }

    #[test]
    fn machines_agree_on_rounds_and_gain_orientation() {
        let (mut a, mut b) = pair(
            &[vec![0.0, 10.0], vec![0.0, -2.0], vec![0.0, 6.0]],
            &[vec![0.0, -2.0], vec![0.0, 10.0], vec![0.0, 6.0]],
            NexitConfig::default(),
        );
        let (out_a, out_b) = pump(&mut a, &mut b);
        assert_eq!(out_a.rounds, out_b.rounds);
        assert_eq!(out_a.assignment, out_b.assignment);
        assert_eq!(a.disclosed_gains(), b.disclosed_gains());
        assert_eq!(a.disclosed_gains(), (out_a.my_gain, out_b.my_gain));
    }

    #[test]
    fn early_stop_by_acceptor_reaches_both_sides() {
        // A proposes (positive projection), B's projection is negative
        // (the combined-best picks are a net loss for B): B stops as the
        // acceptor; both machines see Stopped(B).
        let (mut a, mut b) = pair(
            &[vec![0.0, 10.0], vec![0.0, 1.0]],
            &[vec![0.0, -4.0], vec![0.0, -8.0]],
            NexitConfig::default(),
        );
        let (out_a, out_b) = pump(&mut a, &mut b);
        assert_eq!(out_a.termination, Termination::Stopped(Side::B));
        assert_eq!(out_b.termination, Termination::Stopped(Side::B));
        assert_eq!(out_a.assignment.choice(FlowId(0)), IcxId(0));
        assert_eq!(out_a.my_gain, 0);
        assert_eq!(out_b.my_gain, 0);
    }

    #[test]
    fn first_discloser_cannot_need_peer_list() {
        let err = NegotiationMachine::new(
            Side::A,
            Side::A,
            input(1, 2),
            Assignment::uniform(1, IcxId(0)),
            FixedMapper::new(&[vec![0.0, 0.0]]),
            DisclosurePolicy::InflateBest,
            NexitConfig::default(),
        )
        .err();
        assert_eq!(err, Some(MachineError::UnsupportedDisclosure));
        // The second discloser may cheat.
        assert!(NegotiationMachine::new(
            Side::B,
            Side::A,
            input(1, 2),
            Assignment::uniform(1, IcxId(0)),
            FixedMapper::new(&[vec![0.0, 0.0]]),
            DisclosurePolicy::InflateBest,
            NexitConfig::default(),
        )
        .is_ok());
    }

    #[test]
    fn rejects_malformed_peer_prefs() {
        let mk = || {
            NegotiationMachine::new(
                Side::B,
                Side::A,
                input(2, 2),
                Assignment::uniform(2, IcxId(0)),
                FixedMapper::new(&[[0.0, 0.0]; 2]),
                DisclosurePolicy::Truthful,
                NexitConfig::default(),
            )
            .unwrap()
        };
        let mut b = mk();
        assert_eq!(
            b.handle(Event::PeerPrefs {
                prefs: PrefTable::from_rows(&[vec![0, 0]]),
            }),
            Err(MachineError::BadPrefList("row count mismatch"))
        );
        let mut b = mk();
        assert_eq!(
            b.handle(Event::PeerPrefs {
                prefs: PrefTable::from_rows(&[vec![0, 99], vec![0, 0]]),
            }),
            Err(MachineError::BadPrefList("class out of range"))
        );
        // A poisoned machine stays closed.
        assert_eq!(b.handle(Event::PeerBye), Err(MachineError::Closed));
    }

    #[test]
    fn rejects_out_of_turn_and_stale_proposals() {
        let (mut a, mut b) = pair(
            &[vec![0.0, 1.0], vec![0.0, 1.0]],
            &[vec![0.0, 1.0], vec![0.0, 1.0]],
            NexitConfig::default(),
        );
        // Exchange the preference lists only.
        let prefs_a = a.poll_action().unwrap();
        if let Action::SendPrefs { prefs } = prefs_a {
            b.handle(Event::PeerPrefs { prefs }).unwrap();
        } else {
            panic!("first action must disclose");
        }
        let prefs_b = b.poll_action().unwrap();
        if let Action::SendPrefs { prefs } = prefs_b {
            a.handle(Event::PeerPrefs { prefs }).unwrap();
        } else {
            panic!("B must answer with its list");
        }
        // Round 0 is A's turn; a proposal *to* A is out of turn.
        assert_eq!(
            a.handle(Event::Proposal {
                round: 0,
                local_flow: 0,
                alternative: IcxId(1),
            }),
            Err(MachineError::BadProposal("proposal out of turn"))
        );
        // B expects A's proposal for round 0, not round 7.
        assert_eq!(
            b.handle(Event::Proposal {
                round: 7,
                local_flow: 0,
                alternative: IcxId(1),
            }),
            Err(MachineError::BadProposal("round mismatch"))
        );
    }

    #[test]
    fn credit_veto_rollback_is_mirrored() {
        // A trade that ends negative for one side without rollback.
        let config = NexitConfig {
            accept: AcceptRule::CreditVeto { credit: 100 },
            stop: StopPolicy::NegotiateAll,
            ..NexitConfig::default()
        };
        let (mut a, mut b) = pair(
            &[vec![0.0, -5.0], vec![0.0, 2.0]],
            &[vec![0.0, 9.0], vec![0.0, 1.0]],
            config,
        );
        let (out_a, out_b) = pump(&mut a, &mut b);
        assert_eq!(out_a.assignment, out_b.assignment);
        assert_eq!(a.reverted_indices(), b.reverted_indices());
        assert!(out_a.my_gain >= 0, "rollback failed: {}", out_a.my_gain);
        assert!(out_b.my_gain >= 0);
    }
}
