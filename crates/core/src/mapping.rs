//! ISP-internal metric → preference mapping.
//!
//! Each ISP evaluates its routing alternatives with its own private
//! objective and maps them to opaque classes. The paper's three concrete
//! objectives are implemented:
//!
//! * [`DistanceMapper`] — minimize the distance flows travel inside the
//!   ISP's own network (§5.1): the gain of an alternative is the
//!   kilometres saved relative to the default.
//! * [`BandwidthMapper`] — avoid overload (§5.2): the gain is the
//!   reduction in the *maximum load-to-capacity ratio along the flow's
//!   path*, evaluated against the expected network state (all accepted
//!   decisions applied, remaining flows at their defaults). This is the
//!   mapper whose preferences change as flows are negotiated, which is
//!   why the engine supports reassignment.
//! * [`FortzMapper`] — the LP-based alternate objective (§5.2): the gain
//!   is the reduction in total Fortz–Thorup cost of the ISP's own links.
//!
//! Mappers fill a caller-provided flat [`GainTable`] with **raw metric
//! gains**; the engine quantizes them into classes with one global scale
//! per ISP (see [`crate::prefs::quantize_into`]), preserving the
//! additive-composition requirement. Writing into the caller's table —
//! instead of returning a fresh nest of per-flow vectors — lets the
//! machine reuse one backing buffer across every reassignment of a
//! session, and lets per-flow fills fan across threads over disjoint row
//! ranges: the bandwidth and Fortz mappers snapshot their shared load
//! vector once and then split the row loop over [`crate::par_flows`]
//! workers (`with_threads`), byte-identical for any thread count.

use crate::arena::GainTable;
use crate::engine::SessionInput;
use crate::outcome::Side;
use nexit_metrics::fortz_link_cost;
use nexit_routing::{Assignment, FlowId, PairFlows};
use nexit_topology::{IcxId, LinkId};
use nexit_workload::PathTable;

/// Width of one utilization class for the quantized bandwidth objective:
/// load-to-capacity ratios are bucketed into steps of 1/16. A power of
/// two keeps `class / 16` exact in f64, so a gain row is a *pure
/// function* of the per-link class vector — the invariant the churn
/// driver's footprint invalidation rests on: a load move that leaves
/// every class unchanged provably leaves every cached row bit-identical.
pub const UTIL_CLASS_WIDTH: f64 = 1.0 / 16.0;

/// Quantize per-link utilization (`load / capacity`) into classes of
/// [`UTIL_CLASS_WIDTH`], written into `out` (cleared first).
pub fn utilization_classes(loads: &[f64], capacities: &[f64], out: &mut Vec<u32>) {
    debug_assert_eq!(loads.len(), capacities.len());
    out.clear();
    out.extend(
        loads
            .iter()
            .zip(capacities)
            .map(|(&load, &cap)| (load / cap / UTIL_CLASS_WIDTH) as u32),
    );
}

/// Per-link load accumulator for one side of a pair, maintained
/// incrementally: [`SideLoads::add_path`] moves a volume onto the links
/// of one path (off, with a negative volume) in O(links touched),
/// versus the O(flows × path length) full re-aggregation of
/// [`BandwidthMapper`]'s internal `loads()`. A churn driver keeps one
/// accumulator per (side, traffic layer) and feeds the snapshot into
/// [`BandwidthMapper::with_loads`] / [`utilization_classes`].
#[derive(Debug, Clone, PartialEq)]
pub struct SideLoads {
    loads: Vec<f64>,
}

impl SideLoads {
    /// All-zero loads over `num_links` links.
    pub fn zero(num_links: usize) -> Self {
        Self {
            loads: vec![0.0; num_links],
        }
    }

    /// Links covered.
    pub fn num_links(&self) -> usize {
        self.loads.len()
    }

    /// The current per-link loads.
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// Add `volume` on every link of `links` (negative to remove).
    pub fn add_path(&mut self, links: &[LinkId], volume: f64) {
        for &l in links {
            self.loads[l.index()] += volume;
        }
    }

    /// Zero every link in place.
    pub fn reset(&mut self) {
        self.loads.iter_mut().for_each(|l| *l = 0.0);
    }
}

/// This side's link sequence for one (flow, alternative).
#[inline]
pub(crate) fn side_links(side: Side, paths: &PathTable, flow: FlowId, alt: IcxId) -> &[LinkId] {
    match side {
        Side::A => paths.up_links(flow, alt),
        Side::B => paths.down_links(flow, alt),
    }
}

/// One flow's gain row under the quantized bandwidth objective: path-max
/// utilization read through [`utilization_classes`] buckets, plus the
/// (unquantized) `volume / capacity` the flow itself would add on links
/// it moves onto. Shared verbatim by [`BandwidthMapper::with_classes`]
/// and the cached mapper in [`crate::delta`], so the two compute
/// bit-identical values by construction.
#[allow(clippy::too_many_arguments)]
pub(crate) fn quantized_bandwidth_row(
    side: Side,
    paths: &PathTable,
    capacities: &[f64],
    classes: &[u32],
    fid: FlowId,
    cur: IcxId,
    default: IcxId,
    volume: f64,
    row: &mut [f64],
) {
    let cur_links = side_links(side, paths, fid, cur);
    let cost = |alt: IcxId| -> f64 {
        side_links(side, paths, fid, alt)
            .iter()
            .map(|&l| {
                let mut util = classes[l.index()] as f64 * UTIL_CLASS_WIDTH;
                if alt != cur && !cur_links.contains(&l) {
                    util += volume / capacities[l.index()];
                }
                util
            })
            .fold(0.0_f64, f64::max)
    };
    let base = cost(default);
    for (alt, cell) in row.iter_mut().enumerate() {
        *cell = base - cost(IcxId::new(alt));
    }
}

/// An ISP-internal objective that scores the session's alternatives.
pub trait PreferenceMapper {
    /// Write raw gains (positive = better than the flow's default) for
    /// every session flow × alternative into `out`, given the current
    /// expected assignment of *all* pair flows.
    ///
    /// `out` arrives zeroed with shape
    /// `(input.len(), input.num_alternatives)`; row `i` corresponds to
    /// `input.flow_ids[i]`, and column `d` where `d` is the flow's
    /// default must stay 0.
    fn gains(&mut self, input: &SessionInput, current: &Assignment, out: &mut GainTable);
}

impl<T: PreferenceMapper + ?Sized> PreferenceMapper for &mut T {
    fn gains(&mut self, input: &SessionInput, current: &Assignment, out: &mut GainTable) {
        (**self).gains(input, current, out);
    }
}

impl<T: PreferenceMapper + ?Sized> PreferenceMapper for Box<T> {
    fn gains(&mut self, input: &SessionInput, current: &Assignment, out: &mut GainTable) {
        (**self).gains(input, current, out);
    }
}

/// Distance objective: kilometres the flow travels inside this ISP.
#[derive(Debug, Clone, Copy)]
pub struct DistanceMapper<'a> {
    side: Side,
    flows: &'a PairFlows,
}

impl<'a> DistanceMapper<'a> {
    /// Mapper for one side of the pair.
    pub fn new(side: Side, flows: &'a PairFlows) -> Self {
        Self { side, flows }
    }
}

impl PreferenceMapper for DistanceMapper<'_> {
    fn gains(&mut self, input: &SessionInput, _current: &Assignment, out: &mut GainTable) {
        for (i, (&fid, &default)) in input.flow_ids.iter().zip(&input.defaults).enumerate() {
            let m = &self.flows.metrics[fid.index()];
            let km = |alt: usize| match self.side {
                Side::A => m.up_km[alt],
                Side::B => m.down_km[alt],
            };
            let base = km(default.index());
            for (alt, cell) in out.row_mut(i).iter_mut().enumerate() {
                *cell = base - km(alt);
            }
        }
    }
}

/// Bandwidth objective: maximum load-to-capacity ratio along the flow's
/// own-side path, evaluated on the expected network state.
#[derive(Debug, Clone, Copy)]
pub struct BandwidthMapper<'a> {
    side: Side,
    flows: &'a PairFlows,
    paths: &'a PathTable,
    /// Capacity of every link on this ISP's side.
    capacities: &'a [f64],
    /// Externally maintained load snapshot (skips the O(flows × links)
    /// internal re-aggregation when set).
    loads_override: Option<&'a [f64]>,
    /// Quantized utilization classes; when set, rows come from
    /// [`quantized_bandwidth_row`] (the churn objective).
    classes: Option<&'a [u32]>,
    /// Worker threads for the per-flow cost loop (1 = serial).
    threads: usize,
}

impl<'a> BandwidthMapper<'a> {
    /// Mapper for one side. `capacities` must cover every link of that
    /// side's topology.
    pub fn new(
        side: Side,
        flows: &'a PairFlows,
        paths: &'a PathTable,
        capacities: &'a [f64],
    ) -> Self {
        Self {
            side,
            flows,
            paths,
            capacities,
            loads_override: None,
            classes: None,
            threads: 1,
        }
    }

    /// Read this side's loads from an externally maintained snapshot
    /// (e.g. a [`SideLoads`] accumulator updated in O(links touched) per
    /// event) instead of re-aggregating all flows per fill. The snapshot
    /// must equal what the internal aggregation over `current` would
    /// produce for the fill to stay bit-identical.
    pub fn with_loads(mut self, loads: &'a [f64]) -> Self {
        self.loads_override = Some(loads);
        self
    }

    /// Score alternatives against quantized utilization classes (see
    /// [`utilization_classes`]) instead of exact loads — the churn
    /// driver's bandwidth objective, whose rows are a pure function of
    /// the class vector and therefore footprint-invalidatable.
    pub fn with_classes(mut self, classes: &'a [u32]) -> Self {
        self.classes = Some(classes);
        self
    }

    /// Fan the per-flow cost loop across `threads` workers
    /// (0 = every available core). The shared load vector is snapshotted
    /// before the fan-out and each worker writes a disjoint row range,
    /// so the table is byte-identical to the serial fill for any thread
    /// count — and therefore so is every negotiation decision.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    fn side_links(&self, flow: nexit_routing::FlowId, alt: IcxId) -> &'a [nexit_topology::LinkId] {
        match self.side {
            Side::A => self.paths.up_links(flow, alt),
            Side::B => self.paths.down_links(flow, alt),
        }
    }

    /// Current own-side loads under `current`.
    fn loads(&self, current: &Assignment) -> Vec<f64> {
        let mut loads = vec![0.0; self.capacities.len()];
        for (fid, flow, _) in self.flows.iter() {
            for &l in self.side_links(fid, current.choice(fid)) {
                loads[l.index()] += flow.volume;
            }
        }
        loads
    }
}

impl PreferenceMapper for BandwidthMapper<'_> {
    fn gains(&mut self, input: &SessionInput, current: &Assignment, out: &mut GainTable) {
        if let Some(classes) = self.classes {
            let this = *self;
            crate::parallel::par_flows(self.threads, out, |i, row| {
                let fid = input.flow_ids[i];
                quantized_bandwidth_row(
                    this.side,
                    this.paths,
                    this.capacities,
                    classes,
                    fid,
                    current.choice(fid),
                    input.defaults[i],
                    this.flows.flows[fid.index()].volume,
                    row,
                );
            });
            return;
        }
        // Snapshot the shared load vector once; the per-flow rows then
        // read only immutable state and fill disjoint table rows.
        let owned;
        let loads: &[f64] = match self.loads_override {
            Some(snapshot) => snapshot,
            None => {
                owned = self.loads(current);
                &owned
            }
        };
        let this = *self;
        crate::parallel::par_flows(self.threads, out, |i, row| {
            let fid = input.flow_ids[i];
            let default = input.defaults[i];
            let volume = this.flows.flows[fid.index()].volume;
            let cur = current.choice(fid);
            // Path-max excess ratio after moving the flow from `cur`
            // to `alt`. Links are adjusted for the flow's departure
            // from its current path and arrival on the candidate path.
            let cost = |alt: IcxId| -> f64 {
                let cur_links = this.side_links(fid, cur);
                this.side_links(fid, alt)
                    .iter()
                    .map(|&l| {
                        let mut load = loads[l.index()];
                        if alt != cur && !cur_links.contains(&l) {
                            load += volume;
                        }
                        // When alt == cur the flow already contributes.
                        load / this.capacities[l.index()]
                    })
                    .fold(0.0_f64, f64::max)
            };
            let base = cost(default);
            for (alt, cell) in row.iter_mut().enumerate() {
                *cell = base - cost(IcxId::new(alt));
            }
        });
    }
}

/// Fortz–Thorup objective: total piecewise-linear cost of the ISP's own
/// links (the paper's LP-formulation alternate metric).
#[derive(Debug, Clone, Copy)]
pub struct FortzMapper<'a> {
    side: Side,
    flows: &'a PairFlows,
    paths: &'a PathTable,
    capacities: &'a [f64],
    /// Worker threads for the per-flow cost loop (1 = serial).
    threads: usize,
}

impl<'a> FortzMapper<'a> {
    /// Mapper for one side.
    pub fn new(
        side: Side,
        flows: &'a PairFlows,
        paths: &'a PathTable,
        capacities: &'a [f64],
    ) -> Self {
        Self {
            side,
            flows,
            paths,
            capacities,
            threads: 1,
        }
    }

    /// Fan the per-flow cost-delta loop across `threads` workers
    /// (0 = every available core); byte-identical to the serial fill for
    /// any thread count (see [`BandwidthMapper::with_threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    fn side_links(&self, flow: nexit_routing::FlowId, alt: IcxId) -> &'a [nexit_topology::LinkId] {
        match self.side {
            Side::A => self.paths.up_links(flow, alt),
            Side::B => self.paths.down_links(flow, alt),
        }
    }
}

impl PreferenceMapper for FortzMapper<'_> {
    fn gains(&mut self, input: &SessionInput, current: &Assignment, out: &mut GainTable) {
        // Snapshot the base loads under `current` once, then fan the
        // per-flow rows out over disjoint slices of the flat table.
        let mut loads = vec![0.0; self.capacities.len()];
        for (fid, flow, _) in self.flows.iter() {
            for &l in self.side_links(fid, current.choice(fid)) {
                loads[l.index()] += flow.volume;
            }
        }
        let this = *self;
        let loads = &loads;
        crate::parallel::par_flows(self.threads, out, |i, row| {
            let fid = input.flow_ids[i];
            let default = input.defaults[i];
            let volume = this.flows.flows[fid.index()].volume;
            let cur = current.choice(fid);
            // Total-cost delta of moving the flow from `cur` to `alt`,
            // computed over affected links only.
            let cost_delta = |alt: IcxId| -> f64 {
                if alt == cur {
                    return 0.0;
                }
                let mut delta = 0.0;
                let cur_links = this.side_links(fid, cur);
                let alt_links = this.side_links(fid, alt);
                for &l in alt_links {
                    if !cur_links.contains(&l) {
                        let cap = this.capacities[l.index()];
                        let load = loads[l.index()];
                        delta += fortz_link_cost(load + volume, cap) - fortz_link_cost(load, cap);
                    }
                }
                for &l in cur_links {
                    if !alt_links.contains(&l) {
                        let cap = this.capacities[l.index()];
                        let load = loads[l.index()];
                        delta += fortz_link_cost((load - volume).max(0.0), cap)
                            - fortz_link_cost(load, cap);
                    }
                }
                delta
            };
            let base = cost_delta(default);
            for (alt, cell) in row.iter_mut().enumerate() {
                *cell = base - cost_delta(IcxId::new(alt));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexit_routing::{FlowId, ShortestPaths};
    use nexit_topology::{
        GeoPoint, Interconnection, IspId, IspPair, IspTopology, Link, PairView, Pop, PopId,
    };

    fn pop(city: &str, lon: f64) -> Pop {
        Pop {
            city: city.into(),
            geo: GeoPoint::new(0.0, lon),
            weight: 1.0,
        }
    }

    fn line(id: u32, n: usize) -> IspTopology {
        let pops = (0..n).map(|i| pop(&format!("c{i}"), i as f64)).collect();
        let links = (0..n - 1)
            .map(|i| Link {
                a: PopId::new(i),
                b: PopId::new(i + 1),
                weight: 100.0,
                length_km: 100.0,
            })
            .collect();
        IspTopology::new(IspId(id), format!("L{id}"), pops, links, false).unwrap()
    }

    struct Fixture {
        a: IspTopology,
        b: IspTopology,
        pair: IspPair,
    }

    impl Fixture {
        fn new() -> Self {
            let a = line(0, 3);
            let b = line(1, 3);
            let pair = IspPair::new(
                &a,
                &b,
                vec![
                    Interconnection {
                        pop_a: PopId(0),
                        pop_b: PopId(0),
                        length_km: 0.0,
                    },
                    Interconnection {
                        pop_a: PopId(2),
                        pop_b: PopId(2),
                        length_km: 0.0,
                    },
                ],
            )
            .unwrap();
            Self { a, b, pair }
        }
    }

    fn session_all(flows: &PairFlows, default: IcxId) -> SessionInput {
        SessionInput {
            flow_ids: (0..flows.len()).map(FlowId::new).collect(),
            defaults: vec![default; flows.len()],
            volumes: flows.flows.iter().map(|f| f.volume).collect(),
            num_alternatives: flows.metrics[0].num_alternatives(),
        }
    }

    /// Run a mapper through the caller-provided-table contract.
    fn collect_gains<M: PreferenceMapper>(
        mapper: &mut M,
        input: &SessionInput,
        current: &Assignment,
    ) -> GainTable {
        let mut out = GainTable::new(input.len(), input.num_alternatives);
        mapper.gains(input, current, &mut out);
        out
    }

    #[test]
    fn distance_gains_are_km_saved() {
        let fx = Fixture::new();
        let view = PairView::new(&fx.a, &fx.b, &fx.pair);
        let sp_a = ShortestPaths::compute(&fx.a);
        let sp_b = ShortestPaths::compute(&fx.b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let input = session_all(&flows, IcxId(0));
        let current = Assignment::uniform(flows.len(), IcxId(0));

        let mut up = DistanceMapper::new(Side::A, &flows);
        let gains = collect_gains(&mut up, &input, &current);
        // Flow a2->b0 (id 6): upstream km via icx0 = 200, via icx1 = 0;
        // gain of icx1 = +200.
        assert_eq!(gains.get(6, 0), 0.0, "default always 0");
        assert_eq!(gains.get(6, 1), 200.0);
        // Flow a0->b2 (id 2): upstream km via icx0 = 0, via icx1 = 200;
        // gain of icx1 = -200.
        assert_eq!(gains.get(2, 1), -200.0);

        let mut down = DistanceMapper::new(Side::B, &flows);
        let dgains = collect_gains(&mut down, &input, &current);
        // Flow a0->b2: downstream km via icx0 = 200, via icx1 = 0.
        assert_eq!(dgains.get(2, 1), 200.0);
    }

    #[test]
    fn bandwidth_gains_reflect_load_relief() {
        let fx = Fixture::new();
        let view = PairView::new(&fx.a, &fx.b, &fx.pair);
        let sp_a = ShortestPaths::compute(&fx.a);
        let sp_b = ShortestPaths::compute(&fx.b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let paths = PathTable::build(&view, &sp_a, &sp_b, &flows);
        let input = session_all(&flows, IcxId(0));
        // Everything crammed through icx 0 loads upstream link 0 heavily.
        let current = Assignment::uniform(flows.len(), IcxId(0));
        let caps_a = vec![1.0; fx.a.num_links()];
        let mut up = BandwidthMapper::new(Side::A, &flows, &paths, &caps_a);
        let gains = collect_gains(&mut up, &input, &current);
        // Flow a2->b0 (id 6): default path a2->a1->a0 rides both loaded
        // links; moving to icx1 empties its upstream path entirely
        // (src == exit PoP), a strictly positive gain.
        assert!(gains.get(6, 1) > 0.0);
        assert_eq!(gains.get(6, 0), 0.0);
    }

    #[test]
    fn bandwidth_empty_path_costs_zero() {
        let fx = Fixture::new();
        let view = PairView::new(&fx.a, &fx.b, &fx.pair);
        let sp_a = ShortestPaths::compute(&fx.a);
        let sp_b = ShortestPaths::compute(&fx.b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let paths = PathTable::build(&view, &sp_a, &sp_b, &flows);
        let input = session_all(&flows, IcxId(0));
        let current = Assignment::uniform(flows.len(), IcxId(0));
        let caps = vec![1.0; fx.a.num_links()];
        let mut up = BandwidthMapper::new(Side::A, &flows, &paths, &caps);
        let gains = collect_gains(&mut up, &input, &current);
        // Flow a0->b0 (id 0): default path inside upstream is empty (src
        // is the exit PoP), so cost(default) = 0 and the gain of the far
        // alternative is -(max ratio on a0..a2 path) < 0.
        assert!(gains.get(0, 1) < 0.0);
    }

    #[test]
    fn fortz_gains_penalize_overload_steeply() {
        let fx = Fixture::new();
        let view = PairView::new(&fx.a, &fx.b, &fx.pair);
        let sp_a = ShortestPaths::compute(&fx.a);
        let sp_b = ShortestPaths::compute(&fx.b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let paths = PathTable::build(&view, &sp_a, &sp_b, &flows);
        let input = session_all(&flows, IcxId(0));
        let current = Assignment::uniform(flows.len(), IcxId(0));
        // Upstream link 0 carries 6 units; capacity 6 means at-capacity.
        let caps = vec![6.0, 6.0];
        let mut up = FortzMapper::new(Side::A, &flows, &paths, &caps);
        let gains = collect_gains(&mut up, &input, &current);
        // Moving a2->b0 off the congested path is a positive gain.
        assert!(gains.get(6, 1) > 0.0);
        // Defaults are zero.
        for f in 0..gains.num_flows() {
            assert_eq!(gains.get(f, 0), 0.0);
        }
    }

    #[test]
    fn mappers_default_column_always_zero() {
        let fx = Fixture::new();
        let view = PairView::new(&fx.a, &fx.b, &fx.pair);
        let sp_a = ShortestPaths::compute(&fx.a);
        let sp_b = ShortestPaths::compute(&fx.b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |s, d| {
            1.0 + (s.index() * d.index()) as f64
        });
        let paths = PathTable::build(&view, &sp_a, &sp_b, &flows);
        let caps_a = vec![10.0; fx.a.num_links()];
        let caps_b = vec![10.0; fx.b.num_links()];
        let current = Assignment::uniform(flows.len(), IcxId(1));
        let input = session_all(&flows, IcxId(1));
        let checks: Vec<Box<dyn PreferenceMapper>> = vec![
            Box::new(DistanceMapper::new(Side::A, &flows)),
            Box::new(DistanceMapper::new(Side::B, &flows)),
            Box::new(BandwidthMapper::new(Side::A, &flows, &paths, &caps_a)),
            Box::new(BandwidthMapper::new(Side::B, &flows, &paths, &caps_b)),
            Box::new(FortzMapper::new(Side::A, &flows, &paths, &caps_a)),
        ];
        for mut mapper in checks {
            let gains = collect_gains(&mut mapper, &input, &current);
            for i in 0..gains.num_flows() {
                assert_eq!(
                    gains.get(i, input.defaults[i].index()),
                    0.0,
                    "default gain must be zero"
                );
            }
        }
    }
}
