//! Delta hooks for incremental re-negotiation under churn.
//!
//! A batch sweep computes every preference row from scratch for every
//! session; a streaming driver processing one churn event at a time
//! cannot afford that — a single flow arrival invalidates exactly one
//! row of the pair's gain table, and recomputing the other thousands is
//! pure waste. [`GainCache`] is the memo layer that makes the delta
//! path work: it holds one full-pair gain table per (topology variant,
//! side), tracks per-row validity, and serves session fills by copying
//! cached rows bit-identically — so a negotiation run against the cache
//! is byte-for-byte the negotiation a cold session would produce, while
//! touching only the rows an event actually invalidated.
//!
//! [`CachedDistanceMapper`] is the [`PreferenceMapper`] that plugs the
//! cache into the machine: the §5.1 distance objective's gains depend
//! only on the flow, its default, and the interconnection geometry —
//! never on other flows' routing — so a row, once computed for a
//! topology variant, stays valid across arbitrary flow add/remove and
//! load churn. Drivers invalidate rows explicitly (or wholesale via
//! [`GainCache::invalidate_all`] on a cold fallback); the cache never
//! guesses.
//!
//! The backing table participates in [`TableArena`] recycling
//! ([`GainCache::new_in`] / [`GainCache::recycle`]), so a driver that
//! rebuilds caches on topology flaps allocates each buffer once.

use crate::arena::{GainTable, TableArena};
use crate::engine::SessionInput;
use crate::mapping::{quantized_bandwidth_row, side_links, PreferenceMapper};
use crate::outcome::Side;
use nexit_routing::{Assignment, PairFlows};
use nexit_topology::LinkId;
use nexit_workload::PathTable;

/// A set of [`LinkId`]s as a flat bitset — the currency of footprint
/// invalidation: fills record the links a row read into one, load
/// events collect the links whose utilization class moved into another,
/// and [`GainCache::bump_load_epoch`] intersects the two.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkSet {
    words: Vec<u64>,
}

impl LinkSet {
    /// An empty set over `num_links` links.
    pub fn new(num_links: usize) -> Self {
        Self {
            words: vec![0; num_links.div_ceil(64)],
        }
    }

    /// Insert one link.
    #[inline]
    pub fn insert(&mut self, link: LinkId) {
        let i = link.index();
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, link: LinkId) -> bool {
        let i = link.index();
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Remove every link in place.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// True when no link is in the set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The backing little-endian bit words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Write handle a tracked fill records its load footprint through: every
/// link whose load (utilization class) the row's value depends on must
/// be recorded, or a later load move on that link would wrongly leave
/// the row cached.
pub struct RowFootprint<'a> {
    words: &'a mut [u64],
}

impl RowFootprint<'_> {
    /// Record one link the fill read.
    #[inline]
    pub fn record(&mut self, link: LinkId) {
        if self.words.is_empty() {
            return; // footprints not enabled on this cache
        }
        let i = link.index();
        self.words[i / 64] |= 1 << (i % 64);
    }
}

/// Per-row memo of one side's full-pair gain table, with explicit
/// invalidation. Rows are keyed by **pair** flow index (not session
/// index), so any session over a subset of the pair's flows can be
/// served from the same cache.
#[derive(Debug)]
pub struct GainCache {
    /// Cached rows, `num_flows x num_alternatives` (flat, arena-backed).
    table: GainTable,
    /// Whether each row holds a current value.
    valid: Vec<bool>,
    /// The default alternative each cached row was computed against
    /// (a row's gains are relative to its default, so a default change
    /// must invalidate it).
    row_default: Vec<usize>,
    /// Per-row load footprints, `words_per_row` bit words each (flat;
    /// empty unless [`GainCache::with_footprints`] enabled them).
    footprint: Vec<u64>,
    /// Bit words per footprint row (0 = footprints disabled).
    words_per_row: usize,
    /// Monotonic load-snapshot counter; every valid row is stamped with
    /// the epoch its value was computed (or re-validated) under.
    load_epoch: u64,
    /// Per-row load-epoch stamps (invariant: `valid[f]` implies
    /// `row_load_epoch[f] == load_epoch`).
    row_load_epoch: Vec<u64>,
    /// Rows recomputed since construction (the delta path's work meter).
    refreshed: u64,
    /// Rows served straight from the cache.
    served: u64,
    /// Rows dropped by footprint intersection with moved links.
    load_invalidated: u64,
}

impl GainCache {
    /// An empty cache for `num_flows` pair flows with `num_alts`
    /// alternatives each; every row starts invalid.
    pub fn new(num_flows: usize, num_alts: usize) -> Self {
        Self::new_in(&mut TableArena::new(), num_flows, num_alts)
    }

    /// [`GainCache::new`] drawing the backing table from `arena`.
    pub fn new_in(arena: &mut TableArena, num_flows: usize, num_alts: usize) -> Self {
        Self {
            table: arena.gain_table(num_flows, num_alts),
            valid: vec![false; num_flows],
            row_default: vec![usize::MAX; num_flows],
            footprint: Vec::new(),
            words_per_row: 0,
            load_epoch: 0,
            row_load_epoch: vec![0; num_flows],
            refreshed: 0,
            served: 0,
            load_invalidated: 0,
        }
    }

    /// Enable per-row load footprints over `num_links` links (required
    /// for load-dependent objectives served through
    /// [`CachedBandwidthMapper`]; pointless for distance caches, whose
    /// rows read no loads).
    pub fn with_footprints(mut self, num_links: usize) -> Self {
        self.words_per_row = num_links.div_ceil(64);
        self.footprint = vec![0; self.words_per_row * self.valid.len()];
        self
    }

    /// Whether footprints are enabled.
    pub fn has_footprints(&self) -> bool {
        self.words_per_row > 0
    }

    /// Retire the cache, returning its backing table to `arena`.
    pub fn recycle(self, arena: &mut TableArena) {
        arena.recycle_gain(self.table);
    }

    /// Rows the cache covers.
    pub fn num_flows(&self) -> usize {
        self.valid.len()
    }

    /// Alternatives per row.
    pub fn num_alternatives(&self) -> usize {
        self.table.num_alternatives()
    }

    /// Rows recomputed since construction.
    pub fn refreshed(&self) -> u64 {
        self.refreshed
    }

    /// Rows served from the cache since construction.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Rows dropped by footprint intersection since construction.
    pub fn load_invalidated(&self) -> u64 {
        self.load_invalidated
    }

    /// Advance the load epoch after a load snapshot change: `moved` is
    /// the set of links whose utilization class differs from the
    /// previous snapshot. Every valid row whose footprint intersects it
    /// is invalidated (reported through `on_invalidated`, once per row);
    /// the survivors are re-stamped — their values provably equal a
    /// recompute against the new snapshot, because a row is a pure
    /// function of the classes on its footprint links.
    pub fn bump_load_epoch(&mut self, moved: &LinkSet, mut on_invalidated: impl FnMut(usize)) {
        self.load_epoch += 1;
        let moved = moved.words();
        for flow in 0..self.valid.len() {
            if !self.valid[flow] {
                continue;
            }
            let words = &self.footprint[flow * self.words_per_row..(flow + 1) * self.words_per_row];
            if words.iter().zip(moved).any(|(a, b)| a & b != 0) {
                self.valid[flow] = false;
                self.load_invalidated += 1;
                on_invalidated(flow);
            } else {
                self.row_load_epoch[flow] = self.load_epoch;
            }
        }
    }

    /// Drop one row's cached value (e.g. the flow an event touched).
    pub fn invalidate(&mut self, flow: usize) {
        self.valid[flow] = false;
    }

    /// Drop every cached row — the cold-fallback reset. Counters are
    /// preserved (they meter cumulative work, not cache contents).
    pub fn invalidate_all(&mut self) {
        self.valid.iter_mut().for_each(|v| *v = false);
    }

    /// Number of currently valid rows.
    pub fn valid_rows(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }

    /// Serve one row: if the cached value is current for `default`,
    /// return it; otherwise run `fill` into the row, record the refresh,
    /// and return the fresh value. The returned slice is bit-identical
    /// to what `fill` would write — caching never perturbs a value.
    pub fn row_or_fill(
        &mut self,
        flow: usize,
        default: usize,
        fill: impl FnOnce(&mut [f64]),
    ) -> &[f64] {
        self.row_or_fill_tracked(flow, default, |row, _| fill(row))
    }

    /// [`GainCache::row_or_fill`] for load-dependent fills: the fill
    /// also records, via the [`RowFootprint`], every link whose load the
    /// row's value read, arming the row for
    /// [`GainCache::bump_load_epoch`] intersection tests.
    pub fn row_or_fill_tracked(
        &mut self,
        flow: usize,
        default: usize,
        fill: impl FnOnce(&mut [f64], &mut RowFootprint<'_>),
    ) -> &[f64] {
        if !self.valid[flow] || self.row_default[flow] != default {
            let words =
                &mut self.footprint[flow * self.words_per_row..(flow + 1) * self.words_per_row];
            words.iter_mut().for_each(|w| *w = 0);
            fill(self.table.row_mut(flow), &mut RowFootprint { words });
            self.valid[flow] = true;
            self.row_default[flow] = default;
            self.row_load_epoch[flow] = self.load_epoch;
            self.refreshed += 1;
        } else {
            debug_assert_eq!(
                self.row_load_epoch[flow], self.load_epoch,
                "valid row served from a stale load epoch"
            );
            self.served += 1;
        }
        self.table.row(flow)
    }
}

/// The §5.1 distance objective served through a [`GainCache`]: rows for
/// flows the cache already holds are copied bit-identically; only
/// invalidated (or never-computed) rows touch the metric. One cache
/// must be keyed to one (side, topology variant) — distance gains are
/// static within a variant, so validity survives any amount of flow and
/// load churn until the driver invalidates.
pub struct CachedDistanceMapper<'a> {
    side: Side,
    flows: &'a PairFlows,
    cache: &'a mut GainCache,
}

impl<'a> CachedDistanceMapper<'a> {
    /// Mapper for one side of the pair, memoized through `cache` (whose
    /// shape must match the pair: one row per pair flow, one column per
    /// interconnection of this topology variant).
    pub fn new(side: Side, flows: &'a PairFlows, cache: &'a mut GainCache) -> Self {
        debug_assert_eq!(cache.num_flows(), flows.len(), "cache shaped for the pair");
        Self { side, flows, cache }
    }
}

impl PreferenceMapper for CachedDistanceMapper<'_> {
    fn gains(&mut self, input: &SessionInput, _current: &Assignment, out: &mut GainTable) {
        for (i, (&fid, &default)) in input.flow_ids.iter().zip(&input.defaults).enumerate() {
            let m = &self.flows.metrics[fid.index()];
            let side = self.side;
            let row = self.cache.row_or_fill(fid.index(), default.index(), |row| {
                let km = |alt: usize| match side {
                    Side::A => m.up_km[alt],
                    Side::B => m.down_km[alt],
                };
                let base = km(default.index());
                for (alt, cell) in row.iter_mut().enumerate() {
                    *cell = base - km(alt);
                }
            });
            out.row_mut(i).copy_from_slice(row);
        }
    }
}

/// The quantized bandwidth objective served through a [`GainCache`]
/// with footprints: rows are computed by the same
/// `quantized_bandwidth_row` function [`crate::BandwidthMapper::with_classes`]
/// uses — bit-identical by construction — and each fill records the
/// links the row read (the union of the flow's per-alternative paths on
/// this side) as its load footprint. A driver that maintains `classes`
/// snapshots per load epoch then invalidates, per load move, exactly
/// the rows whose footprint intersects the moved links
/// ([`GainCache::bump_load_epoch`]) instead of going cold.
///
/// The memo key is (flow, default): like the churn driver's sessions,
/// callers must negotiate from the default state (`current` equal to
/// the session defaults), otherwise a cached row could have been filled
/// against a different `current` than it is served for.
pub struct CachedBandwidthMapper<'a> {
    side: Side,
    flows: &'a PairFlows,
    paths: &'a PathTable,
    capacities: &'a [f64],
    /// Per-link utilization classes of the current load epoch.
    classes: &'a [u32],
    cache: &'a mut GainCache,
}

impl<'a> CachedBandwidthMapper<'a> {
    /// Mapper for one side, memoized through `cache` (shaped for the
    /// pair, with footprints enabled over this side's links).
    pub fn new(
        side: Side,
        flows: &'a PairFlows,
        paths: &'a PathTable,
        capacities: &'a [f64],
        classes: &'a [u32],
        cache: &'a mut GainCache,
    ) -> Self {
        debug_assert_eq!(cache.num_flows(), flows.len(), "cache shaped for the pair");
        debug_assert!(cache.has_footprints(), "bandwidth caches need footprints");
        debug_assert_eq!(classes.len(), capacities.len());
        Self {
            side,
            flows,
            paths,
            capacities,
            classes,
            cache,
        }
    }
}

impl PreferenceMapper for CachedBandwidthMapper<'_> {
    fn gains(&mut self, input: &SessionInput, current: &Assignment, out: &mut GainTable) {
        let (side, paths, capacities, classes, flows) = (
            self.side,
            self.paths,
            self.capacities,
            self.classes,
            self.flows,
        );
        let k = input.num_alternatives;
        for (i, (&fid, &default)) in input.flow_ids.iter().zip(&input.defaults).enumerate() {
            debug_assert_eq!(
                current.choice(fid),
                default,
                "cached bandwidth sessions negotiate from the default state"
            );
            let volume = flows.flows[fid.index()].volume;
            let row = self
                .cache
                .row_or_fill_tracked(fid.index(), default.index(), |row, fp| {
                    quantized_bandwidth_row(
                        side, paths, capacities, classes, fid, default, default, volume, row,
                    );
                    for alt in 0..k {
                        for &l in side_links(side, paths, fid, nexit_topology::IcxId::new(alt)) {
                            fp.record(l);
                        }
                    }
                });
            out.row_mut(i).copy_from_slice(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::DistanceMapper;
    use nexit_routing::{Assignment, FlowId, PairFlows, ShortestPaths};
    use nexit_topology::{
        GeoPoint, IcxId, Interconnection, IspId, IspPair, IspTopology, Link, PairView, Pop, PopId,
    };

    fn pop(city: &str, lon: f64) -> Pop {
        Pop {
            city: city.into(),
            geo: GeoPoint::new(0.0, lon),
            weight: 1.0,
        }
    }

    fn line(id: u32, n: usize) -> IspTopology {
        let pops = (0..n).map(|i| pop(&format!("c{i}"), i as f64)).collect();
        let links = (0..n - 1)
            .map(|i| Link {
                a: PopId::new(i),
                b: PopId::new(i + 1),
                weight: 100.0,
                length_km: 100.0,
            })
            .collect();
        IspTopology::new(IspId(id), format!("L{id}"), pops, links, false).unwrap()
    }

    fn fixture() -> (IspTopology, IspTopology, IspPair) {
        let a = line(0, 3);
        let b = line(1, 3);
        let pair = IspPair::new(
            &a,
            &b,
            vec![
                Interconnection {
                    pop_a: PopId(0),
                    pop_b: PopId(0),
                    length_km: 0.0,
                },
                Interconnection {
                    pop_a: PopId(2),
                    pop_b: PopId(2),
                    length_km: 0.0,
                },
            ],
        )
        .unwrap();
        (a, b, pair)
    }

    fn session(flows: &PairFlows, ids: &[usize], k: usize) -> SessionInput {
        SessionInput {
            flow_ids: ids.iter().map(|&i| FlowId::new(i)).collect(),
            defaults: vec![IcxId(0); ids.len()],
            volumes: ids.iter().map(|&i| flows.flows[i].volume).collect(),
            num_alternatives: k,
        }
    }

    #[test]
    fn cached_rows_are_bit_identical_to_fresh() {
        let (a, b, pair) = fixture();
        let view = PairView::new(&a, &b, &pair);
        let sp_a = ShortestPaths::compute(&a);
        let sp_b = ShortestPaths::compute(&b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let k = view.num_interconnections();
        let ids: Vec<usize> = (0..flows.len()).collect();
        let input = session(&flows, &ids, k);
        let current = Assignment::uniform(flows.len(), IcxId(0));

        let mut fresh = GainTable::new(ids.len(), k);
        DistanceMapper::new(Side::A, &flows).gains(&input, &current, &mut fresh);

        let mut cache = GainCache::new(flows.len(), k);
        let mut cached = GainTable::new(ids.len(), k);
        // First pass fills, second serves; both must equal the fresh fill.
        for _ in 0..2 {
            cached.reset(ids.len(), k);
            CachedDistanceMapper::new(Side::A, &flows, &mut cache).gains(
                &input,
                &current,
                &mut cached,
            );
            assert_eq!(fresh.values(), cached.values());
        }
        assert_eq!(cache.refreshed(), ids.len() as u64);
        assert_eq!(cache.served(), ids.len() as u64);
    }

    #[test]
    fn invalidation_is_per_row() {
        let (a, b, pair) = fixture();
        let view = PairView::new(&a, &b, &pair);
        let sp_a = ShortestPaths::compute(&a);
        let sp_b = ShortestPaths::compute(&b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let k = view.num_interconnections();
        let ids: Vec<usize> = (0..flows.len()).collect();
        let input = session(&flows, &ids, k);
        let current = Assignment::uniform(flows.len(), IcxId(0));

        let mut cache = GainCache::new(flows.len(), k);
        let mut out = GainTable::new(ids.len(), k);
        CachedDistanceMapper::new(Side::B, &flows, &mut cache).gains(&input, &current, &mut out);
        assert_eq!(cache.valid_rows(), flows.len());

        cache.invalidate(3);
        assert_eq!(cache.valid_rows(), flows.len() - 1);
        let before = cache.refreshed();
        out.reset(ids.len(), k);
        CachedDistanceMapper::new(Side::B, &flows, &mut cache).gains(&input, &current, &mut out);
        assert_eq!(cache.refreshed(), before + 1, "only row 3 recomputes");

        cache.invalidate_all();
        assert_eq!(cache.valid_rows(), 0);
    }

    #[test]
    fn subset_sessions_share_the_cache() {
        let (a, b, pair) = fixture();
        let view = PairView::new(&a, &b, &pair);
        let sp_a = ShortestPaths::compute(&a);
        let sp_b = ShortestPaths::compute(&b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let k = view.num_interconnections();
        let current = Assignment::uniform(flows.len(), IcxId(0));

        let mut cache = GainCache::new(flows.len(), k);
        let first = session(&flows, &[0, 2, 4], k);
        let mut out = GainTable::new(3, k);
        CachedDistanceMapper::new(Side::A, &flows, &mut cache).gains(&first, &current, &mut out);
        assert_eq!(cache.refreshed(), 3);

        // An overlapping session refreshes only the unseen rows.
        let second = session(&flows, &[0, 2, 3, 4], k);
        let mut out = GainTable::new(4, k);
        CachedDistanceMapper::new(Side::A, &flows, &mut cache).gains(&second, &current, &mut out);
        assert_eq!(cache.refreshed(), 4);
        assert_eq!(cache.served(), 3);
    }

    #[test]
    fn recycling_reuses_the_backing_table() {
        let mut arena = TableArena::new();
        let cache = GainCache::new_in(&mut arena, 8, 3);
        cache.recycle(&mut arena);
        let again = GainCache::new_in(&mut arena, 8, 3);
        assert_eq!(again.num_flows(), 8);
        assert_eq!(again.valid_rows(), 0);
    }

    #[test]
    fn link_sets_cover_multiple_words() {
        let mut set = LinkSet::new(130);
        assert!(set.is_empty());
        for i in [0usize, 63, 64, 129] {
            set.insert(LinkId::new(i));
        }
        for i in 0..130 {
            assert_eq!(set.contains(LinkId::new(i)), [0, 63, 64, 129].contains(&i));
        }
        set.clear();
        assert!(set.is_empty());
    }

    #[test]
    fn footprint_invalidation_spares_disjoint_rows() {
        use nexit_workload::PathTable;

        let (a, b, pair) = fixture();
        let view = PairView::new(&a, &b, &pair);
        let sp_a = ShortestPaths::compute(&a);
        let sp_b = ShortestPaths::compute(&b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let paths = PathTable::build(&view, &sp_a, &sp_b, &flows);
        let k = view.num_interconnections();
        let capacities = vec![10.0; a.num_links()];
        let classes = vec![0u32; a.num_links()];
        let ids: Vec<usize> = (0..flows.len()).collect();
        let input = session(&flows, &ids, k);
        let current = Assignment::uniform(flows.len(), IcxId(0));

        let mut cache = GainCache::new(flows.len(), k).with_footprints(a.num_links());
        let mut out = GainTable::new(ids.len(), k);
        CachedBandwidthMapper::new(Side::A, &flows, &paths, &capacities, &classes, &mut cache)
            .gains(&input, &current, &mut out);
        assert_eq!(cache.valid_rows(), flows.len());

        // An empty move set invalidates nothing; a real move drops only
        // rows whose recorded footprint contains the moved link.
        cache.bump_load_epoch(&LinkSet::new(a.num_links()), |_| {});
        assert_eq!(cache.valid_rows(), flows.len());
        let mut moved = LinkSet::new(a.num_links());
        moved.insert(LinkId::new(0));
        let mut hit = Vec::new();
        cache.bump_load_epoch(&moved, |f| hit.push(f));
        assert!(!hit.is_empty(), "some path crosses link 0");
        assert_eq!(cache.valid_rows(), flows.len() - hit.len());
        for (i, _) in flows.iter().enumerate() {
            let on_link0 = (0..k).any(|alt| {
                paths
                    .up_links(FlowId::new(i), IcxId::new(alt))
                    .contains(&LinkId::new(0))
            });
            assert_eq!(hit.contains(&i), on_link0, "flow {i}");
        }
    }

    mod proptests {
        use super::*;
        use crate::mapping::{BandwidthMapper, PreferenceMapper};
        use nexit_workload::PathTable;
        use proptest::prelude::*;

        /// One step of a randomized churn history against the cache.
        #[derive(Debug, Clone)]
        enum Op {
            /// Set one link's utilization class and bump the load epoch.
            ClassMove { link: usize, class: u32 },
            /// Structurally invalidate one row.
            InvalidateRow(usize),
            /// Go cold.
            InvalidateAll,
        }

        fn op() -> impl Strategy<Value = Op> {
            (0u8..7, 0usize..32, 0u32..12).prop_map(|(kind, idx, class)| match kind {
                0..=3 => Op::ClassMove { link: idx, class },
                4 | 5 => Op::InvalidateRow(idx),
                _ => Op::InvalidateAll,
            })
        }

        proptest! {
            /// Across any interleaving of class moves and invalidations,
            /// the memoized bandwidth mapper must stay bit-identical to
            /// a fresh fill against the live class snapshot — the
            /// soundness claim footprint invalidation rests on.
            #[test]
            fn cached_bandwidth_rows_match_fresh_under_churn(
                ops in proptest::collection::vec(op(), 1..25),
            ) {
                let (a, b, pair) = fixture();
                let view = PairView::new(&a, &b, &pair);
                let sp_a = ShortestPaths::compute(&a);
                let sp_b = ShortestPaths::compute(&b);
                let flows = PairFlows::build(&view, &sp_a, &sp_b, |s, d| {
                    1.0 + (s.index() + 2 * d.index()) as f64
                });
                let paths = PathTable::build(&view, &sp_a, &sp_b, &flows);
                let k = view.num_interconnections();
                let n = a.num_links();
                let capacities = vec![10.0; n];
                let mut classes = vec![0u32; n];
                let ids: Vec<usize> = (0..flows.len()).collect();
                let input = session(&flows, &ids, k);
                let current = Assignment::uniform(flows.len(), IcxId(0));

                let mut cache = GainCache::new(flows.len(), k).with_footprints(n);
                let mut cached = GainTable::new(ids.len(), k);
                let mut fresh = GainTable::new(ids.len(), k);
                let mut moved = LinkSet::new(n);
                for step in ops {
                    match step {
                        Op::ClassMove { link, class } => {
                            let l = link % n;
                            if classes[l] != class {
                                classes[l] = class;
                                moved.clear();
                                moved.insert(LinkId::new(l));
                                cache.bump_load_epoch(&moved, |_| {});
                            }
                        }
                        Op::InvalidateRow(i) => cache.invalidate(i % flows.len()),
                        Op::InvalidateAll => cache.invalidate_all(),
                    }
                    cached.reset(ids.len(), k);
                    CachedBandwidthMapper::new(
                        Side::A, &flows, &paths, &capacities, &classes, &mut cache,
                    )
                    .gains(&input, &current, &mut cached);
                    fresh.reset(ids.len(), k);
                    BandwidthMapper::new(Side::A, &flows, &paths, &capacities)
                        .with_classes(&classes)
                        .gains(&input, &current, &mut fresh);
                    prop_assert_eq!(cached.values(), fresh.values());
                }
            }
        }
    }
}
