//! Delta hooks for incremental re-negotiation under churn.
//!
//! A batch sweep computes every preference row from scratch for every
//! session; a streaming driver processing one churn event at a time
//! cannot afford that — a single flow arrival invalidates exactly one
//! row of the pair's gain table, and recomputing the other thousands is
//! pure waste. [`GainCache`] is the memo layer that makes the delta
//! path work: it holds one full-pair gain table per (topology variant,
//! side), tracks per-row validity, and serves session fills by copying
//! cached rows bit-identically — so a negotiation run against the cache
//! is byte-for-byte the negotiation a cold session would produce, while
//! touching only the rows an event actually invalidated.
//!
//! [`CachedDistanceMapper`] is the [`PreferenceMapper`] that plugs the
//! cache into the machine: the §5.1 distance objective's gains depend
//! only on the flow, its default, and the interconnection geometry —
//! never on other flows' routing — so a row, once computed for a
//! topology variant, stays valid across arbitrary flow add/remove and
//! load churn. Drivers invalidate rows explicitly (or wholesale via
//! [`GainCache::invalidate_all`] on a cold fallback); the cache never
//! guesses.
//!
//! The backing table participates in [`TableArena`] recycling
//! ([`GainCache::new_in`] / [`GainCache::recycle`]), so a driver that
//! rebuilds caches on topology flaps allocates each buffer once.

use crate::arena::{GainTable, TableArena};
use crate::engine::SessionInput;
use crate::mapping::PreferenceMapper;
use crate::outcome::Side;
use nexit_routing::{Assignment, PairFlows};

/// Per-row memo of one side's full-pair gain table, with explicit
/// invalidation. Rows are keyed by **pair** flow index (not session
/// index), so any session over a subset of the pair's flows can be
/// served from the same cache.
#[derive(Debug)]
pub struct GainCache {
    /// Cached rows, `num_flows x num_alternatives` (flat, arena-backed).
    table: GainTable,
    /// Whether each row holds a current value.
    valid: Vec<bool>,
    /// The default alternative each cached row was computed against
    /// (a row's gains are relative to its default, so a default change
    /// must invalidate it).
    row_default: Vec<usize>,
    /// Rows recomputed since construction (the delta path's work meter).
    refreshed: u64,
    /// Rows served straight from the cache.
    served: u64,
}

impl GainCache {
    /// An empty cache for `num_flows` pair flows with `num_alts`
    /// alternatives each; every row starts invalid.
    pub fn new(num_flows: usize, num_alts: usize) -> Self {
        Self::new_in(&mut TableArena::new(), num_flows, num_alts)
    }

    /// [`GainCache::new`] drawing the backing table from `arena`.
    pub fn new_in(arena: &mut TableArena, num_flows: usize, num_alts: usize) -> Self {
        Self {
            table: arena.gain_table(num_flows, num_alts),
            valid: vec![false; num_flows],
            row_default: vec![usize::MAX; num_flows],
            refreshed: 0,
            served: 0,
        }
    }

    /// Retire the cache, returning its backing table to `arena`.
    pub fn recycle(self, arena: &mut TableArena) {
        arena.recycle_gain(self.table);
    }

    /// Rows the cache covers.
    pub fn num_flows(&self) -> usize {
        self.valid.len()
    }

    /// Alternatives per row.
    pub fn num_alternatives(&self) -> usize {
        self.table.num_alternatives()
    }

    /// Rows recomputed since construction.
    pub fn refreshed(&self) -> u64 {
        self.refreshed
    }

    /// Rows served from the cache since construction.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Drop one row's cached value (e.g. the flow an event touched).
    pub fn invalidate(&mut self, flow: usize) {
        self.valid[flow] = false;
    }

    /// Drop every cached row — the cold-fallback reset. Counters are
    /// preserved (they meter cumulative work, not cache contents).
    pub fn invalidate_all(&mut self) {
        self.valid.iter_mut().for_each(|v| *v = false);
    }

    /// Number of currently valid rows.
    pub fn valid_rows(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }

    /// Serve one row: if the cached value is current for `default`,
    /// return it; otherwise run `fill` into the row, record the refresh,
    /// and return the fresh value. The returned slice is bit-identical
    /// to what `fill` would write — caching never perturbs a value.
    pub fn row_or_fill(
        &mut self,
        flow: usize,
        default: usize,
        fill: impl FnOnce(&mut [f64]),
    ) -> &[f64] {
        if !self.valid[flow] || self.row_default[flow] != default {
            fill(self.table.row_mut(flow));
            self.valid[flow] = true;
            self.row_default[flow] = default;
            self.refreshed += 1;
        } else {
            self.served += 1;
        }
        self.table.row(flow)
    }
}

/// The §5.1 distance objective served through a [`GainCache`]: rows for
/// flows the cache already holds are copied bit-identically; only
/// invalidated (or never-computed) rows touch the metric. One cache
/// must be keyed to one (side, topology variant) — distance gains are
/// static within a variant, so validity survives any amount of flow and
/// load churn until the driver invalidates.
pub struct CachedDistanceMapper<'a> {
    side: Side,
    flows: &'a PairFlows,
    cache: &'a mut GainCache,
}

impl<'a> CachedDistanceMapper<'a> {
    /// Mapper for one side of the pair, memoized through `cache` (whose
    /// shape must match the pair: one row per pair flow, one column per
    /// interconnection of this topology variant).
    pub fn new(side: Side, flows: &'a PairFlows, cache: &'a mut GainCache) -> Self {
        debug_assert_eq!(cache.num_flows(), flows.len(), "cache shaped for the pair");
        Self { side, flows, cache }
    }
}

impl PreferenceMapper for CachedDistanceMapper<'_> {
    fn gains(&mut self, input: &SessionInput, _current: &Assignment, out: &mut GainTable) {
        for (i, (&fid, &default)) in input.flow_ids.iter().zip(&input.defaults).enumerate() {
            let m = &self.flows.metrics[fid.index()];
            let side = self.side;
            let row = self.cache.row_or_fill(fid.index(), default.index(), |row| {
                let km = |alt: usize| match side {
                    Side::A => m.up_km[alt],
                    Side::B => m.down_km[alt],
                };
                let base = km(default.index());
                for (alt, cell) in row.iter_mut().enumerate() {
                    *cell = base - km(alt);
                }
            });
            out.row_mut(i).copy_from_slice(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::DistanceMapper;
    use nexit_routing::{Assignment, FlowId, PairFlows, ShortestPaths};
    use nexit_topology::{
        GeoPoint, IcxId, Interconnection, IspId, IspPair, IspTopology, Link, PairView, Pop, PopId,
    };

    fn pop(city: &str, lon: f64) -> Pop {
        Pop {
            city: city.into(),
            geo: GeoPoint::new(0.0, lon),
            weight: 1.0,
        }
    }

    fn line(id: u32, n: usize) -> IspTopology {
        let pops = (0..n).map(|i| pop(&format!("c{i}"), i as f64)).collect();
        let links = (0..n - 1)
            .map(|i| Link {
                a: PopId::new(i),
                b: PopId::new(i + 1),
                weight: 100.0,
                length_km: 100.0,
            })
            .collect();
        IspTopology::new(IspId(id), format!("L{id}"), pops, links, false).unwrap()
    }

    fn fixture() -> (IspTopology, IspTopology, IspPair) {
        let a = line(0, 3);
        let b = line(1, 3);
        let pair = IspPair::new(
            &a,
            &b,
            vec![
                Interconnection {
                    pop_a: PopId(0),
                    pop_b: PopId(0),
                    length_km: 0.0,
                },
                Interconnection {
                    pop_a: PopId(2),
                    pop_b: PopId(2),
                    length_km: 0.0,
                },
            ],
        )
        .unwrap();
        (a, b, pair)
    }

    fn session(flows: &PairFlows, ids: &[usize], k: usize) -> SessionInput {
        SessionInput {
            flow_ids: ids.iter().map(|&i| FlowId::new(i)).collect(),
            defaults: vec![IcxId(0); ids.len()],
            volumes: ids.iter().map(|&i| flows.flows[i].volume).collect(),
            num_alternatives: k,
        }
    }

    #[test]
    fn cached_rows_are_bit_identical_to_fresh() {
        let (a, b, pair) = fixture();
        let view = PairView::new(&a, &b, &pair);
        let sp_a = ShortestPaths::compute(&a);
        let sp_b = ShortestPaths::compute(&b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let k = view.num_interconnections();
        let ids: Vec<usize> = (0..flows.len()).collect();
        let input = session(&flows, &ids, k);
        let current = Assignment::uniform(flows.len(), IcxId(0));

        let mut fresh = GainTable::new(ids.len(), k);
        DistanceMapper::new(Side::A, &flows).gains(&input, &current, &mut fresh);

        let mut cache = GainCache::new(flows.len(), k);
        let mut cached = GainTable::new(ids.len(), k);
        // First pass fills, second serves; both must equal the fresh fill.
        for _ in 0..2 {
            cached.reset(ids.len(), k);
            CachedDistanceMapper::new(Side::A, &flows, &mut cache).gains(
                &input,
                &current,
                &mut cached,
            );
            assert_eq!(fresh.values(), cached.values());
        }
        assert_eq!(cache.refreshed(), ids.len() as u64);
        assert_eq!(cache.served(), ids.len() as u64);
    }

    #[test]
    fn invalidation_is_per_row() {
        let (a, b, pair) = fixture();
        let view = PairView::new(&a, &b, &pair);
        let sp_a = ShortestPaths::compute(&a);
        let sp_b = ShortestPaths::compute(&b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let k = view.num_interconnections();
        let ids: Vec<usize> = (0..flows.len()).collect();
        let input = session(&flows, &ids, k);
        let current = Assignment::uniform(flows.len(), IcxId(0));

        let mut cache = GainCache::new(flows.len(), k);
        let mut out = GainTable::new(ids.len(), k);
        CachedDistanceMapper::new(Side::B, &flows, &mut cache).gains(&input, &current, &mut out);
        assert_eq!(cache.valid_rows(), flows.len());

        cache.invalidate(3);
        assert_eq!(cache.valid_rows(), flows.len() - 1);
        let before = cache.refreshed();
        out.reset(ids.len(), k);
        CachedDistanceMapper::new(Side::B, &flows, &mut cache).gains(&input, &current, &mut out);
        assert_eq!(cache.refreshed(), before + 1, "only row 3 recomputes");

        cache.invalidate_all();
        assert_eq!(cache.valid_rows(), 0);
    }

    #[test]
    fn subset_sessions_share_the_cache() {
        let (a, b, pair) = fixture();
        let view = PairView::new(&a, &b, &pair);
        let sp_a = ShortestPaths::compute(&a);
        let sp_b = ShortestPaths::compute(&b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let k = view.num_interconnections();
        let current = Assignment::uniform(flows.len(), IcxId(0));

        let mut cache = GainCache::new(flows.len(), k);
        let first = session(&flows, &[0, 2, 4], k);
        let mut out = GainTable::new(3, k);
        CachedDistanceMapper::new(Side::A, &flows, &mut cache).gains(&first, &current, &mut out);
        assert_eq!(cache.refreshed(), 3);

        // An overlapping session refreshes only the unseen rows.
        let second = session(&flows, &[0, 2, 3, 4], k);
        let mut out = GainTable::new(4, k);
        CachedDistanceMapper::new(Side::A, &flows, &mut cache).gains(&second, &current, &mut out);
        assert_eq!(cache.refreshed(), 4);
        assert_eq!(cache.served(), 3);
    }

    #[test]
    fn recycling_reuses_the_backing_table() {
        let mut arena = TableArena::new();
        let cache = GainCache::new_in(&mut arena, 8, 3);
        cache.recycle(&mut arena);
        let again = GainCache::new_in(&mut arena, 8, 3);
        assert_eq!(again.num_flows(), 8);
        assert_eq!(again.valid_rows(), 0);
    }
}
