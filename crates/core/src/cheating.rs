//! Cheating (strategic disclosure) strategies.
//!
//! Nexit is not strategy-proof — an ISP can lie about its preferences —
//! but the paper argues (§4.2) and shows empirically (§5.4) that its
//! structure limits what lying can achieve. This module implements the
//! paper's evaluated cheater plus a naive baseline:
//!
//! * [`DisclosurePolicy::InflateBest`] — the paper's strategy: assuming
//!   *perfect knowledge* of the other ISP's preference list, inflate the
//!   preference of your best alternative for each flow "just enough so
//!   that it corresponds to maximum sum", preserving your original
//!   relative ordering as far as possible; when inflating is not enough
//!   (the class range clamps at `P`), deflate the competing alternatives
//!   instead.
//! * [`DisclosurePolicy::BlindMax`] — the naive baseline the paper
//!   mentions ("blindly maximizing preferences"): disclose `+P` for your
//!   best alternative of every flow and `-P` for all others, with no
//!   knowledge of the other list.

use crate::prefs::PrefTable;
use nexit_topology::IcxId;

/// How a party turns its true preference table into the disclosed one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisclosurePolicy {
    /// Disclose the truth (the honest default).
    Truthful,
    /// The paper's §5.4 cheater (requires the other list; the engine
    /// supplies it, modeling perfect knowledge).
    InflateBest,
    /// Naive cheater: `+P` on own best alternative, `-P` elsewhere.
    BlindMax,
}

impl DisclosurePolicy {
    /// Produce the disclosed table. Convenience wrapper over
    /// [`DisclosurePolicy::disclose_into`].
    ///
    /// `truth` is this party's true table, `other` the counterpart's
    /// disclosed table (perfect knowledge), `p` the class range, and
    /// `defaults` each flow's default alternative.
    pub fn disclose(
        &self,
        truth: &PrefTable,
        other: &PrefTable,
        p: i32,
        defaults: &[IcxId],
    ) -> PrefTable {
        let mut out = PrefTable::zero(truth.num_flows(), truth.num_alternatives());
        self.disclose_into(truth, other, p, defaults, &mut out);
        out
    }

    /// Produce the disclosed table into `out` (reshaped in place), the
    /// allocation-free form the machine uses on every (re)disclosure.
    pub fn disclose_into(
        &self,
        truth: &PrefTable,
        other: &PrefTable,
        p: i32,
        defaults: &[IcxId],
        out: &mut PrefTable,
    ) {
        out.reset(truth.num_flows(), truth.num_alternatives());
        match self {
            DisclosurePolicy::Truthful => {
                for flow in 0..truth.num_flows() {
                    out.row_mut(flow).copy_from_slice(truth.row(flow));
                }
            }
            DisclosurePolicy::InflateBest => inflate_best(truth, other, p, defaults, out),
            DisclosurePolicy::BlindMax => blind_max(truth, p, defaults, out),
        }
    }

    /// Whether this policy discloses non-truthfully.
    pub fn is_cheating(&self) -> bool {
        !matches!(self, DisclosurePolicy::Truthful)
    }

    /// Whether this policy must see the peer's disclosed list before
    /// producing its own (and therefore cannot disclose first).
    pub fn needs_peer_list(&self) -> bool {
        matches!(self, DisclosurePolicy::InflateBest)
    }
}

/// The cheater's best alternative for one flow: highest true preference,
/// ties to the lowest alternative id.
fn best_alternative(truth: &PrefTable, flow: usize) -> usize {
    let row = truth.row(flow);
    let mut best = 0;
    for (alt, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = alt;
        }
    }
    best
}

/// The paper's inflate-best strategy.
///
/// For each flow, let `b` be the cheater's true-best alternative. The
/// combined-maximum selection rule picks `argmax(d_cheater + d_other)`, so
/// the cheater needs `d(b) + other(b) >= d(x) + other(x)` for every `x`.
/// It first raises `d(b)` just enough (preserving its other disclosed
/// values, and hence their relative ordering); if `+P` clamping leaves
/// some competitor still winning, it lowers those competitors just enough
/// instead.
fn inflate_best(
    truth: &PrefTable,
    other: &PrefTable,
    p: i32,
    defaults: &[IcxId],
    out: &mut PrefTable,
) {
    let k = truth.num_alternatives();
    for flow in 0..truth.num_flows() {
        let b = best_alternative(truth, flow);
        let row = out.row_mut(flow);
        row.copy_from_slice(truth.row(flow));
        let target_sum =
            |row: &[i32], x: usize| row[x] as i64 + other.get(flow, IcxId::new(x)) as i64;
        // Raise d(b) until it is the (weak) combined maximum, clamped at P.
        let needed = (0..k)
            .filter(|&x| x != b)
            .map(|x| target_sum(row, x))
            .max()
            .unwrap_or(i64::MIN);
        if needed > i64::MIN {
            let other_b = other.get(flow, IcxId::new(b)) as i64;
            let want = (needed - other_b).clamp(i64::from(-p), i64::from(p)) as i32;
            row[b] = row[b].max(want).min(p);
            // If clamping left competitors above, deflate them to just
            // below the best alternative's sum.
            let best_sum = target_sum(row, b);
            for x in 0..k {
                if x == b {
                    continue;
                }
                if target_sum(row, x) > best_sum {
                    let other_x = other.get(flow, IcxId::new(x)) as i64;
                    row[x] = ((best_sum - other_x).clamp(i64::from(-p), i64::from(p))) as i32;
                }
            }
        }
        // Defaults keep class 0 in honest tables, but the cheater is free
        // to move even the default's disclosed class; the paper's strategy
        // only adjusts relative to sums, so nothing special is needed.
        let _ = defaults;
    }
}

/// Naive blind maximization.
fn blind_max(truth: &PrefTable, p: i32, _defaults: &[IcxId], out: &mut PrefTable) {
    for flow in 0..truth.num_flows() {
        let b = best_alternative(truth, flow);
        for (x, cell) in out.row_mut(flow).iter_mut().enumerate() {
            *cell = if x == b { p } else { -p };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table<R: AsRef<[i32]>>(rows: &[R]) -> PrefTable {
        PrefTable::from_rows(rows)
    }

    #[test]
    fn truthful_is_identity() {
        let t = table(&[vec![0, 3, -2]]);
        let o = table(&[vec![0, 0, 0]]);
        let d = DisclosurePolicy::Truthful.disclose(&t, &o, 10, &[IcxId(0)]);
        assert_eq!(d, t);
        assert!(!DisclosurePolicy::Truthful.is_cheating());
    }

    #[test]
    fn inflate_best_makes_best_win_combined() {
        // Cheater truly prefers alt 1 (+3), but the other ISP loves alt 2
        // (+9): truthfully, combined max is alt 2 (3+...: [0+0, 3+0, 1+9]
        // = [0, 3, 10]). The cheater must inflate alt 1 to win.
        let t = table(&[vec![0, 3, 1]]);
        let o = table(&[vec![0, 0, 9]]);
        let d = DisclosurePolicy::InflateBest.disclose(&t, &o, 10, &[IcxId(0)]);
        let combined: Vec<i32> = (0..3)
            .map(|x| d.get(0, IcxId::new(x)) + o.get(0, IcxId::new(x)))
            .collect();
        let best = combined.iter().max().unwrap();
        assert_eq!(
            combined[1], *best,
            "cheater's alt must reach max sum: {combined:?}"
        );
        assert!(d.within_range(10));
    }

    #[test]
    fn inflate_best_deflates_when_clamped() {
        // Other ISP's alt 2 preference is so high that even +P on alt 1
        // cannot reach it; the cheater must deflate alt 2.
        let t = table(&[vec![0, 3, 1]]);
        let o = table(&[vec![0, -9, 10]]);
        let d = DisclosurePolicy::InflateBest.disclose(&t, &o, 10, &[IcxId(0)]);
        let sum = |x: usize| d.get(0, IcxId::new(x)) + o.get(0, IcxId::new(x));
        assert!(
            sum(1) >= sum(2),
            "alt 1 (sum {}) must beat alt 2 (sum {})",
            sum(1),
            sum(2)
        );
        assert!(d.within_range(10));
    }

    #[test]
    fn inflate_preserves_relative_order_where_possible() {
        // Only the best alternative is raised; others keep their truthful
        // relative ordering when no deflation is required.
        let t = table(&[vec![0, 5, 2, -3]]);
        let o = table(&[vec![0, 0, 0, 0]]);
        let d = DisclosurePolicy::InflateBest.disclose(&t, &o, 10, &[IcxId(0)]);
        assert_eq!(d.get(0, IcxId(2)), 2);
        assert_eq!(d.get(0, IcxId(3)), -3);
        assert!(d.get(0, IcxId(1)) >= 5);
    }

    #[test]
    fn blind_max_is_all_or_nothing() {
        let t = table(&[vec![0, 4, 2], vec![0, -1, -5]]);
        let o = table(&[vec![0, 0, 0], vec![0, 0, 0]]);
        let d = DisclosurePolicy::BlindMax.disclose(&t, &o, 10, &[IcxId(0), IcxId(0)]);
        assert_eq!(d.row(0), &[-10, 10, -10]);
        assert_eq!(d.row(1), &[10, -10, -10]);
        assert!(DisclosurePolicy::BlindMax.is_cheating());
    }

    #[test]
    fn disclose_into_reuses_the_buffer() {
        let t = table(&[vec![0, 4, 2]]);
        let o = table(&[vec![0, 0, 0]]);
        let mut out = PrefTable::zero(0, 0);
        for policy in [
            DisclosurePolicy::Truthful,
            DisclosurePolicy::InflateBest,
            DisclosurePolicy::BlindMax,
        ] {
            policy.disclose_into(&t, &o, 10, &[IcxId(0)], &mut out);
            assert_eq!(out, policy.disclose(&t, &o, 10, &[IcxId(0)]));
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn arb_row(k: usize, p: i32) -> impl Strategy<Value = Vec<i32>> {
            proptest::collection::vec(-p..=p, k).prop_map(|mut r| {
                r[0] = 0;
                r
            })
        }

        proptest! {
            #[test]
            fn inflate_best_always_within_range_and_wins(
                t_row in arb_row(4, 10),
                o_row in arb_row(4, 10),
            ) {
                let t = PrefTable::from_rows(std::slice::from_ref(&t_row));
                let o = PrefTable::from_rows(std::slice::from_ref(&o_row));
                let d = DisclosurePolicy::InflateBest.disclose(&t, &o, 10, &[IcxId(0)]);
                prop_assert!(d.within_range(10));
                // The cheater's true-best alternative must be a combined
                // (weak) maximum whenever the range permits.
                let b = super::best_alternative(&t, 0);
                let sum = |x: usize| d.get(0, IcxId::new(x)) as i64 + o_row[x] as i64;
                let max = (0..4).map(&sum).max().unwrap();
                // With deflation the best is always reachable unless the
                // other row's spread exceeds 2P, impossible here... except
                // when competitor sums pin at the clamp; allow equality.
                prop_assert!(sum(b) >= max, "best {} sums {:?}", b,
                    (0..4).map(&sum).collect::<Vec<_>>());
            }
        }
    }
}
