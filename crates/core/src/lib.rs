//! The Nexit negotiation engine (the paper's primary contribution).
//!
//! Nexit lets a pair of neighboring ISPs agree on an interconnection for
//! every traffic flow they exchange while disclosing only *opaque
//! preference classes* — small integers in `[-P, P]` — instead of internal
//! metrics like latency, load or cost. Conceptually two steps (paper §4):
//!
//! 1. **ISP-internal evaluation** ([`mapping`]): each ISP maps every
//!    (flow, interconnection) alternative to a preference class relative
//!    to the *default* alternative (what the flow would do without
//!    negotiation, mapped to class 0). Mappers for the paper's distance,
//!    bandwidth and Fortz–Thorup objectives are provided; the trait is
//!    open for custom objectives.
//! 2. **The negotiation protocol** ([`machine`]): the ISPs exchange
//!    preference lists and proceed in rounds — decide turn, propose an
//!    alternative, accept it, optionally reassign preferences, decide
//!    whether to stop. Every step is a pluggable policy ([`policies`])
//!    because the paper specifies each as "agreed contractually in
//!    advance" with several listed options. The loop is one sans-IO
//!    state machine ([`machine::NegotiationMachine`]); the in-process
//!    driver ([`engine`]) and the wire-protocol agents (`nexit-proto`)
//!    are both thin shells around it.
//!
//! The engine guarantees the paper's headline incentive property: with the
//! early-termination policy an honest ISP never finishes with negative
//! cumulative preference gain — negotiation is risk-free relative to
//! default routing.
//!
//! [`cheating`] implements the paper's §5.4 cheater model (inflate the
//! preference of your best alternative to hijack the combined-maximum
//! selection rule, given perfect knowledge of the other side's list).

pub mod arena;
pub mod cheating;
pub mod delta;
pub mod engine;
pub mod index;
pub mod machine;
pub mod mapping;
pub mod outcome;
pub mod parallel;
pub mod policies;
pub mod prefs;
pub mod selection;

pub use arena::{FlowRange, GainTable, TableArena};
pub use cheating::DisclosurePolicy;
pub use delta::{CachedBandwidthMapper, CachedDistanceMapper, GainCache, LinkSet, RowFootprint};
pub use engine::{negotiate, negotiate_in, Party, SessionBuilder, SessionError, SessionInput};
pub use index::CandidateIndex;
pub use machine::{Action, Event, MachineError, MachineOutcome, NegotiationMachine};
pub use mapping::{
    utilization_classes, BandwidthMapper, DistanceMapper, FortzMapper, PreferenceMapper, SideLoads,
    UTIL_CLASS_WIDTH,
};
pub use outcome::{NegotiationOutcome, RoundRecord, Side, Termination};
pub use parallel::par_flows;
pub use policies::{AcceptRule, NexitConfig, ProposalRule, StopPolicy, TurnPolicy};
pub use prefs::{quantize, PrefTable};
