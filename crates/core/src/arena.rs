//! Flat, arena-backed columnar tables for the negotiation data path.
//!
//! The hot loop of a session touches the same three rectangular tables
//! over and over: raw metric gains (`f64`), quantized true classes and
//! disclosed classes (`i32`). Storing them as nested `Vec`s costs one
//! allocation per flow and scatters rows across the heap; every
//! reassignment then rebuilds the whole nest (mapper gains → quantize →
//! disclose). This module stores each table as **one** flat buffer with
//! explicit `(num_flows, num_alts)` shape — rows are contiguous
//! `num_alts`-sized slices — and provides a [`TableArena`] that recycles
//! the backing buffers across reassignments, sessions and group sweeps,
//! so the steady state of the round loop allocates nothing.
//!
//! [`FlowRange`] names a contiguous run of flows inside a larger
//! session. It is the currency of shared-storage views: grouped
//! negotiation lays the groups out contiguously and hands each group a
//! range of one session-wide layout, and
//! [`par_flows`](../../nexit_sim/parallel/fn.par_flows.html)-style
//! fan-out splits one table's rows into disjoint ranges for worker
//! threads.

/// A contiguous run of flows inside a larger session: `start..start+len`
/// in the session's local-flow index space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowRange {
    /// First flow of the range.
    pub start: usize,
    /// Number of flows covered.
    pub len: usize,
}

impl FlowRange {
    /// The range `start..start + len`.
    pub fn new(start: usize, len: usize) -> Self {
        Self { start, len }
    }

    /// The whole session: `0..len`.
    pub fn full(len: usize) -> Self {
        Self { start: 0, len }
    }

    /// One past the last flow.
    #[inline]
    pub fn end(&self) -> usize {
        self.start + self.len
    }

    /// True when the range covers no flows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The covered flow indices.
    pub fn indices(&self) -> std::ops::Range<usize> {
        self.start..self.end()
    }
}

/// A flat `flows × alternatives` table of raw metric gains.
///
/// `gains[flow][alt]` lives at `storage[flow * num_alts + alt]`; one
/// allocation backs the whole table and rows are contiguous slices.
/// Mappers fill a caller-provided table (see
/// [`crate::mapping::PreferenceMapper::gains`]) instead of allocating a
/// fresh nest of rows per (re)assignment.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GainTable {
    storage: Vec<f64>,
    num_flows: usize,
    num_alts: usize,
}

impl GainTable {
    /// A zeroed table of the given shape.
    pub fn new(num_flows: usize, num_alts: usize) -> Self {
        Self {
            storage: vec![0.0; num_flows * num_alts],
            num_flows,
            num_alts,
        }
    }

    /// Build from rows (tests and fixed-table mappers). Every row must
    /// have the same length.
    pub fn from_rows<R: AsRef<[f64]>>(rows: &[R]) -> Self {
        let num_alts = rows.first().map_or(0, |r| r.as_ref().len());
        let mut storage = Vec::with_capacity(rows.len() * num_alts);
        for row in rows {
            let row = row.as_ref();
            assert_eq!(row.len(), num_alts, "ragged gain table");
            storage.extend_from_slice(row);
        }
        Self {
            storage,
            num_flows: rows.len(),
            num_alts,
        }
    }

    /// Reshape to `(num_flows, num_alts)` and zero every cell, keeping
    /// the backing allocation.
    pub fn reset(&mut self, num_flows: usize, num_alts: usize) {
        self.storage.clear();
        self.storage.resize(num_flows * num_alts, 0.0);
        self.num_flows = num_flows;
        self.num_alts = num_alts;
    }

    /// Make this table a copy of `other`, reusing the backing buffer.
    pub fn copy_from(&mut self, other: &GainTable) {
        self.storage.clear();
        self.storage.extend_from_slice(&other.storage);
        self.num_flows = other.num_flows;
        self.num_alts = other.num_alts;
    }

    /// Number of flows covered.
    #[inline]
    pub fn num_flows(&self) -> usize {
        self.num_flows
    }

    /// Number of alternatives per flow.
    #[inline]
    pub fn num_alternatives(&self) -> usize {
        self.num_alts
    }

    /// One cell.
    #[inline]
    pub fn get(&self, flow: usize, alt: usize) -> f64 {
        self.storage[flow * self.num_alts + alt]
    }

    /// Set one cell.
    #[inline]
    pub fn set(&mut self, flow: usize, alt: usize, value: f64) {
        self.storage[flow * self.num_alts + alt] = value;
    }

    /// One flow's row.
    #[inline]
    pub fn row(&self, flow: usize) -> &[f64] {
        &self.storage[flow * self.num_alts..(flow + 1) * self.num_alts]
    }

    /// One flow's row, mutably.
    #[inline]
    pub fn row_mut(&mut self, flow: usize) -> &mut [f64] {
        &mut self.storage[flow * self.num_alts..(flow + 1) * self.num_alts]
    }

    /// The flat cell buffer, row-major.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.storage
    }

    /// The flat cell buffer, mutably. Rows are `num_alternatives()`-sized
    /// consecutive chunks; splitting this slice at row boundaries yields
    /// disjoint [`FlowRange`] views for parallel fills.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.storage
    }

    pub(crate) fn into_storage(self) -> Vec<f64> {
        self.storage
    }

    pub(crate) fn from_storage(mut storage: Vec<f64>, num_flows: usize, num_alts: usize) -> Self {
        storage.clear();
        storage.resize(num_flows * num_alts, 0.0);
        Self {
            storage,
            num_flows,
            num_alts,
        }
    }
}

/// A pool of retired table and index buffers.
///
/// Everything the machine allocates per session — the three preference
/// tables, the gain scratch and the candidate index's heaps and trees —
/// can be drawn from an arena at construction and returned with
/// [`crate::NegotiationMachine::recycle`]. A driver that runs many
/// sessions back to back (grouped negotiation, failure-scenario sweeps)
/// threads one arena through all of them and allocates each backing
/// buffer exactly once.
#[derive(Default)]
pub struct TableArena {
    /// Retired tables, kept whole so the pool itself stays flat (the
    /// whole point of this module is that `crates/core` holds no nested
    /// vectors); only their backing buffers matter.
    pref_bufs: Vec<crate::prefs::PrefTable>,
    gain_bufs: Vec<GainTable>,
    index_bufs: Vec<crate::index::IndexBuffers>,
}

impl TableArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// A zeroed preference table of the given shape, reusing a retired
    /// buffer when one is available.
    pub fn pref_table(&mut self, num_flows: usize, num_alts: usize) -> crate::prefs::PrefTable {
        let buf = self
            .pref_bufs
            .pop()
            .map_or_else(Vec::new, crate::prefs::PrefTable::into_storage);
        crate::prefs::PrefTable::from_storage(buf, num_flows, num_alts)
    }

    /// A zeroed gain table of the given shape, reusing a retired buffer
    /// when one is available.
    pub fn gain_table(&mut self, num_flows: usize, num_alts: usize) -> GainTable {
        let buf = self
            .gain_bufs
            .pop()
            .map_or_else(Vec::new, GainTable::into_storage);
        GainTable::from_storage(buf, num_flows, num_alts)
    }

    /// Return a preference table's backing buffer to the pool.
    pub fn recycle_pref(&mut self, table: crate::prefs::PrefTable) {
        self.pref_bufs.push(table);
    }

    /// Return a gain table's backing buffer to the pool.
    pub fn recycle_gain(&mut self, table: GainTable) {
        self.gain_bufs.push(table);
    }

    /// Retired candidate-index buffers, or a fresh set.
    pub(crate) fn index_buffers(&mut self) -> crate::index::IndexBuffers {
        self.index_bufs.pop().unwrap_or_default()
    }

    /// Return candidate-index buffers to the pool.
    pub(crate) fn recycle_index(&mut self, bufs: crate::index::IndexBuffers) {
        self.index_bufs.push(bufs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_range_basics() {
        let r = FlowRange::new(3, 4);
        assert_eq!(r.end(), 7);
        assert_eq!(r.indices().collect::<Vec<_>>(), vec![3, 4, 5, 6]);
        assert!(!r.is_empty());
        assert!(FlowRange::full(0).is_empty());
        assert_eq!(FlowRange::full(5), FlowRange::new(0, 5));
    }

    #[test]
    fn gain_table_rows_are_contiguous() {
        let mut t = GainTable::new(2, 3);
        t.set(0, 2, 1.5);
        t.row_mut(1).copy_from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(t.get(0, 2), 1.5);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(t.values(), &[0.0, 0.0, 1.5, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_rows_matches_manual_fill() {
        let t = GainTable::from_rows(&[vec![0.0, 1.0], vec![2.0, 3.0]]);
        assert_eq!(t.num_flows(), 2);
        assert_eq!(t.num_alternatives(), 2);
        assert_eq!(t.get(1, 0), 2.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        GainTable::from_rows(&[vec![0.0, 1.0], vec![2.0]]);
    }

    #[test]
    fn reset_keeps_capacity_and_zeroes() {
        let mut t = GainTable::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let cap = t.values().len();
        t.reset(1, 3);
        assert_eq!(t.values(), &[0.0; 3]);
        assert!(t.values().len() >= cap.min(3));
        t.reset(2, 2);
        assert_eq!(t.num_flows(), 2);
        assert_eq!(t.num_alternatives(), 2);
        assert_eq!(t.values(), &[0.0; 4]);
    }

    #[test]
    fn arena_recycles_buffers() {
        let mut arena = TableArena::new();
        let mut g = arena.gain_table(4, 4);
        g.set(0, 0, 9.0);
        let ptr = g.values().as_ptr();
        arena.recycle_gain(g);
        // The next table of any shape reuses the same allocation, zeroed.
        let g2 = arena.gain_table(2, 2);
        assert_eq!(g2.values(), &[0.0; 4]);
        assert_eq!(g2.values().as_ptr(), ptr);

        let p = arena.pref_table(3, 2);
        assert_eq!(p.num_flows(), 3);
        assert!(p.within_range(0));
        arena.recycle_pref(p);
    }
}
