//! Pure selection functions shared by the in-process engine and the
//! distributed wire-protocol agents.
//!
//! Both implementations must take bit-identical decisions from the same
//! disclosed state — the centralized engine ([`crate::engine`]) for
//! simulation speed, and the message-passing agents
//! (`nexit-proto`) for deployment fidelity — so the decision rules live
//! here, parameterized only on data.
//!
//! [`select_proposal`], [`projected_gain`] and [`combined_best`] are the
//! *reference* implementations: straightforward full-table scans whose
//! semantics define the protocol. The hot path
//! ([`crate::machine::NegotiationMachine`]) executes the incrementally
//! maintained [`crate::index::CandidateIndex`] instead, which is
//! property-tested to take bit-identical decisions; the scans remain the
//! equivalence oracle and the fallback for configurations the index does
//! not cover (pathologically large preference ranges).

use crate::outcome::Side;
use crate::policies::{ProposalRule, TurnPolicy};
use crate::prefs::PrefTable;
use nexit_topology::IcxId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Negotiable state visible to selection: which local flows remain and
/// which (flow, alternative) pairs were withdrawn by veto.
///
/// Withdrawn alternatives live in one flat bitset and the remaining-flow
/// count is maintained on every accept, so the per-round checks the
/// machine performs ([`TableState::is_banned`],
/// [`TableState::num_remaining`]) are O(1).
#[derive(Debug, Clone)]
pub struct TableState {
    /// `true` while the local flow is still on the table.
    remaining: Vec<bool>,
    /// Flat bitset over `flow * num_alternatives + alt`; a set bit marks
    /// a vetoed (withdrawn) alternative.
    banned: Vec<u64>,
    num_alternatives: usize,
    num_remaining: usize,
}

impl TableState {
    /// Fresh state with all flows on the table.
    pub fn new(num_flows: usize, num_alternatives: usize) -> Self {
        let bits = num_flows * num_alternatives;
        Self {
            remaining: vec![true; num_flows],
            banned: vec![0; bits.div_ceil(64)],
            num_alternatives,
            num_remaining: num_flows,
        }
    }

    /// Number of flows the state covers (remaining or not).
    #[inline]
    pub fn num_flows(&self) -> usize {
        self.remaining.len()
    }

    /// Number of alternatives per flow.
    #[inline]
    pub fn num_alternatives(&self) -> usize {
        self.num_alternatives
    }

    /// Number of flows still on the table. O(1): the counter is
    /// maintained on every [`TableState::accept`].
    #[inline]
    pub fn num_remaining(&self) -> usize {
        self.num_remaining
    }

    /// Whether the flow is still on the table.
    #[inline]
    pub fn is_remaining(&self, flow: usize) -> bool {
        self.remaining[flow]
    }

    /// Whether the (flow, alternative) cell was withdrawn by veto.
    #[inline]
    pub fn is_banned(&self, flow: usize, alt: usize) -> bool {
        let bit = flow * self.num_alternatives + alt;
        self.banned[bit / 64] & (1 << (bit % 64)) != 0
    }

    /// Settle a flow (an accepted proposal removes it from the table).
    pub fn accept(&mut self, flow: usize) {
        debug_assert!(self.remaining[flow], "flow accepted twice");
        self.remaining[flow] = false;
        self.num_remaining -= 1;
    }

    /// Withdraw one (flow, alternative) cell (a vetoed proposal).
    pub fn ban(&mut self, flow: usize, alt: usize) {
        debug_assert!(alt < self.num_alternatives);
        let bit = flow * self.num_alternatives + alt;
        self.banned[bit / 64] |= 1 << (bit % 64);
    }
}

/// The combined-maximum alternative of one flow and its combined sum.
/// Used for stop projections. Ties prefer the flow's *default*
/// alternative (no movement without reason), then the lowest id.
pub fn combined_best(
    d_own: &PrefTable,
    d_other: &PrefTable,
    state: &TableState,
    local: usize,
    num_alternatives: usize,
    default: IcxId,
) -> (IcxId, i64) {
    let mut best_alt = IcxId::new(0);
    let mut best_sum = i64::MIN;
    let mut best_is_default = false;
    for alt in 0..num_alternatives {
        if state.is_banned(local, alt) {
            continue;
        }
        let id = IcxId::new(alt);
        let sum = i64::from(d_own.get(local, id)) + i64::from(d_other.get(local, id));
        let is_default = id == default;
        if sum > best_sum || (sum == best_sum && is_default && !best_is_default) {
            best_sum = sum;
            best_alt = id;
            best_is_default = is_default;
        }
    }
    (best_alt, best_sum)
}

/// The proposer's choice of (local flow, alternative), or `None` when
/// nothing is proposable.
///
/// `self_guard` carries `(own_true_table, own_cumulative_gain)` when the
/// veto accept-rule is active: the proposer never proposes an alternative
/// that would push its own true cumulative gain negative.
#[allow(clippy::needless_range_loop)] // parallel arrays indexed together
pub fn select_proposal(
    d_own: &PrefTable,
    d_other: &PrefTable,
    state: &TableState,
    num_alternatives: usize,
    rule: ProposalRule,
    self_guard: Option<(&PrefTable, i64)>,
    defaults: &[IcxId],
) -> Option<(usize, IcxId)> {
    // Key: (primary, secondary, prefer-default-on-tie). The default
    // alternative wins full ties so ISPs never move a flow without a
    // disclosed reason (movement at all-zero preferences would otherwise
    // leak unmeasured real-metric losses).
    let mut best: Option<((i64, i64, i64), usize, IcxId)> = None;
    for local in 0..state.num_flows() {
        if !state.is_remaining(local) {
            continue;
        }
        for alt in 0..num_alternatives {
            if state.is_banned(local, alt) {
                continue;
            }
            let alt_id = IcxId::new(alt);
            if let Some((own_true, own_cum)) = self_guard {
                if own_cum + i64::from(own_true.get(local, alt_id)) < 0 {
                    continue;
                }
            }
            let o = i64::from(d_own.get(local, alt_id));
            let t = i64::from(d_other.get(local, alt_id));
            let default_bias = i64::from(alt_id == defaults[local]);
            let key = match rule {
                ProposalRule::MaxCombined => (o + t, o, default_bias),
                ProposalRule::BestLocalMinHarm => (o, t, default_bias),
            };
            if best.is_none_or(|(bk, _, _)| key > bk) {
                best = Some((key, local, alt_id));
            }
        }
    }
    best.map(|(_, local, alt)| (local, alt))
}

/// Early-termination projection: the best *nonempty* prefix sum of
/// `own_true` preferences over the remaining flows, in combined-selection
/// order (see the engine's documentation for semantics). Returns 0 when
/// no flows remain.
#[allow(clippy::needless_range_loop)] // parallel arrays indexed together
pub fn projected_gain(
    own_true: &PrefTable,
    d_own: &PrefTable,
    d_other: &PrefTable,
    state: &TableState,
    num_alternatives: usize,
    defaults: &[IcxId],
) -> i64 {
    let mut picks: Vec<(i64, i64)> = Vec::new(); // (combined, own true)
    for local in 0..state.num_flows() {
        if !state.is_remaining(local) {
            continue;
        }
        let (alt, combined) = combined_best(
            d_own,
            d_other,
            state,
            local,
            num_alternatives,
            defaults[local],
        );
        picks.push((combined, i64::from(own_true.get(local, alt))));
    }
    picks.sort_by_key(|&(combined, _)| std::cmp::Reverse(combined));
    let mut best = i64::MIN;
    let mut run = 0i64;
    for (_, own) in picks {
        run += own;
        best = best.max(run);
    }
    if best == i64::MIN {
        0
    } else {
        best
    }
}

/// The deterministic end-of-session rollback plan for
/// [`crate::AcceptRule::CreditVeto`].
///
/// `accepted` lists the accepted moves in round order as
/// `(local_flow, alternative)`. While either side's cumulative disclosed
/// gain is negative, the plan reverts that side's disclosedly-worst
/// remaining move (ties to the earliest round). Returns the indices into
/// `accepted` to revert, in revert order. Both sides of a distributed
/// session compute this identically from shared state.
pub fn rollback_plan(
    d_a: &PrefTable,
    d_b: &PrefTable,
    accepted: &[(usize, IcxId)],
    mut gain_a: i64,
    mut gain_b: i64,
) -> Vec<usize> {
    let mut reverted = vec![false; accepted.len()];
    let mut plan = Vec::new();
    loop {
        let side_a = if gain_a < 0 {
            true
        } else if gain_b < 0 {
            false
        } else {
            return plan;
        };
        let table = if side_a { d_a } else { d_b };
        let mut worst: Option<(i64, usize)> = None;
        for (i, &(local, alt)) in accepted.iter().enumerate() {
            if reverted[i] {
                continue;
            }
            let pref = i64::from(table.get(local, alt));
            if pref < 0 && worst.is_none_or(|(wp, _)| pref < wp) {
                worst = Some((pref, i));
            }
        }
        let Some((_, idx)) = worst else {
            return plan; // nothing left to revert for the negative side
        };
        let (local, alt) = accepted[idx];
        reverted[idx] = true;
        gain_a -= i64::from(d_a.get(local, alt));
        gain_b -= i64::from(d_b.get(local, alt));
        plan.push(idx);
    }
}

/// Whose turn it is in `round`, given the policy and current disclosed
/// cumulative gains. Both sides of a distributed session compute this
/// identically.
pub fn decide_turn(
    policy: TurnPolicy,
    round: usize,
    disclosed_gain_a: i64,
    disclosed_gain_b: i64,
) -> Side {
    match policy {
        TurnPolicy::Alternate => {
            if round.is_multiple_of(2) {
                Side::A
            } else {
                Side::B
            }
        }
        TurnPolicy::LowerGain => {
            use std::cmp::Ordering;
            match disclosed_gain_a.cmp(&disclosed_gain_b) {
                Ordering::Less => Side::A,
                Ordering::Greater => Side::B,
                Ordering::Equal => {
                    if round.is_multiple_of(2) {
                        Side::A
                    } else {
                        Side::B
                    }
                }
            }
        }
        TurnPolicy::CoinToss { seed } => {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (round as u64).wrapping_mul(0x9E3779B97F4A7C15));
            if rng.gen_bool(0.5) {
                Side::A
            } else {
                Side::B
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table<R: AsRef<[i32]>>(rows: &[R]) -> PrefTable {
        PrefTable::from_rows(rows)
    }

    #[test]
    fn table_state_counter_and_bitset() {
        // 70 alternatives per flow: cells span multiple bitset words.
        let mut state = TableState::new(3, 70);
        assert_eq!(state.num_remaining(), 3);
        state.ban(0, 0);
        state.ban(2, 69);
        assert!(state.is_banned(0, 0));
        assert!(state.is_banned(2, 69));
        assert!(!state.is_banned(1, 0));
        assert!(!state.is_banned(2, 68));
        state.accept(1);
        assert_eq!(state.num_remaining(), 2);
        assert!(!state.is_remaining(1));
        state.accept(0);
        state.accept(2);
        assert_eq!(state.num_remaining(), 0);
    }

    #[test]
    fn combined_best_skips_banned() {
        let a = table(&[vec![0, 5, 3]]);
        let b = table(&[vec![0, 5, 4]]);
        let mut state = TableState::new(1, 3);
        assert_eq!(
            combined_best(&a, &b, &state, 0, 3, IcxId(0)),
            (IcxId(1), 10)
        );
        state.ban(0, 1);
        assert_eq!(combined_best(&a, &b, &state, 0, 3, IcxId(0)), (IcxId(2), 7));
    }

    #[test]
    fn combined_best_prefers_default_on_tie() {
        let a = table(&[vec![0, 0, 0]]);
        let b = table(&[vec![0, 0, 0]]);
        let state = TableState::new(1, 3);
        assert_eq!(combined_best(&a, &b, &state, 0, 3, IcxId(2)), (IcxId(2), 0));
    }

    #[test]
    fn proposal_respects_guard() {
        let own = table(&[vec![0, -5]]);
        let other = table(&[vec![0, 10]]);
        let state = TableState::new(1, 2);
        let defaults = [IcxId(0)];
        // Without guard: combined max picks alt 1 (sum 5).
        let p = select_proposal(
            &own,
            &other,
            &state,
            2,
            ProposalRule::MaxCombined,
            None,
            &defaults,
        );
        assert_eq!(p, Some((0, IcxId(1))));
        // With guard at cum 0, alt 1 would go to -5: only the default left.
        let p = select_proposal(
            &own,
            &other,
            &state,
            2,
            ProposalRule::MaxCombined,
            Some((&own, 0)),
            &defaults,
        );
        assert_eq!(p, Some((0, IcxId(0))));
        // With banked gain 5, alt 1 is acceptable again.
        let p = select_proposal(
            &own,
            &other,
            &state,
            2,
            ProposalRule::MaxCombined,
            Some((&own, 5)),
            &defaults,
        );
        assert_eq!(p, Some((0, IcxId(1))));
    }

    #[test]
    fn projection_empty_is_zero() {
        let t = table::<[i32; 0]>(&[]);
        let state = TableState::new(0, 2);
        assert_eq!(projected_gain(&t, &t, &t, &state, 2, &[]), 0);
    }

    #[test]
    fn rollback_reverts_worst_until_nonnegative() {
        // Moves: (A -5, B +9), (A +3, B 0), (A -1, B +2). gains A=-3, B=11.
        let d_a = table(&[vec![0, -5], vec![0, 3], vec![0, -1]]);
        let d_b = table(&[vec![0, 9], vec![0, 0], vec![0, 2]]);
        let accepted = vec![(0, IcxId(1)), (1, IcxId(1)), (2, IcxId(1))];
        let plan = rollback_plan(&d_a, &d_b, &accepted, -3, 11);
        // A reverts its worst move (idx 0, -5): gains A=2, B=2; done.
        assert_eq!(plan, vec![0]);
    }

    #[test]
    fn rollback_noop_when_both_nonnegative() {
        let d = table(&[vec![0, 1]]);
        assert!(rollback_plan(&d, &d, &[(0, IcxId(1))], 1, 1).is_empty());
    }

    #[test]
    fn turn_policies() {
        assert_eq!(decide_turn(TurnPolicy::Alternate, 0, 0, 0), Side::A);
        assert_eq!(decide_turn(TurnPolicy::Alternate, 1, 0, 0), Side::B);
        assert_eq!(decide_turn(TurnPolicy::LowerGain, 0, 3, 1), Side::B);
        assert_eq!(decide_turn(TurnPolicy::LowerGain, 0, 1, 3), Side::A);
        // Coin toss: deterministic per (seed, round).
        let t1 = decide_turn(TurnPolicy::CoinToss { seed: 5 }, 7, 0, 0);
        let t2 = decide_turn(TurnPolicy::CoinToss { seed: 5 }, 7, 0, 0);
        assert_eq!(t1, t2);
    }
}
