//! Opaque preference classes and quantization.
//!
//! Preferences are integers in `[-P, P]` (the paper uses `P = 10` and
//! notes larger ranges add nothing). Class 0 is the flow's *default*
//! alternative; positive classes are better-than-default, negative worse.
//!
//! The mapping from an ISP's internal metric must **compose over
//! addition** (paper §4, step 1): an ISP should accept two class `-1`
//! alternatives to win one class `+3` alternative. A per-flow
//! normalization would break that (a `-1` on one flow could hide a much
//! larger real loss than a `+3` gain on another), so [`quantize`] applies
//! one *global* linear scale per ISP per mapping round: the largest
//! absolute metric delta maps to ±P and everything else scales
//! proportionally.
//!
//! Tables are stored flat ([`crate::arena`]): one `Vec<i32>` with an
//! explicit `(num_flows, num_alts)` shape, so rows are contiguous
//! slices, the rectangular invariant is structural (a row's length
//! cannot be changed through [`PrefTable::row_mut`]), and the backing
//! buffer can be recycled through a [`crate::arena::TableArena`].

use crate::arena::GainTable;
use nexit_topology::IcxId;

/// A preference table for one ISP over one negotiated flow set:
/// `prefs[local_flow][alternative]` is the preference class, stored
/// row-major in one flat buffer.
///
/// "Local flow" indices are positions within the *negotiated subset* (see
/// [`crate::SessionInput`]), not global [`nexit_routing::FlowId`]s.
#[derive(Debug, Clone, Eq)]
pub struct PrefTable {
    storage: Vec<i32>,
    num_flows: usize,
    num_alts: usize,
}

impl PartialEq for PrefTable {
    fn eq(&self, other: &Self) -> bool {
        // Empty tables compare equal regardless of their nominal
        // alternative count (matching the historical rows-based
        // comparison, where an empty table had no rows to disagree on).
        self.num_flows == other.num_flows
            && (self.num_flows == 0
                || (self.num_alts == other.num_alts && self.storage == other.storage))
    }
}

impl PrefTable {
    /// Build from raw rows. Every row must have the same number of
    /// alternatives.
    pub fn from_rows<R: AsRef<[i32]>>(rows: &[R]) -> Self {
        let num_alts = rows.first().map_or(0, |r| r.as_ref().len());
        let mut storage = Vec::with_capacity(rows.len() * num_alts);
        for row in rows {
            let row = row.as_ref();
            assert_eq!(row.len(), num_alts, "ragged preference table");
            storage.extend_from_slice(row);
        }
        Self {
            storage,
            num_flows: rows.len(),
            num_alts,
        }
    }

    /// An all-zero (indifferent) table.
    pub fn zero(num_flows: usize, num_alternatives: usize) -> Self {
        Self {
            storage: vec![0; num_flows * num_alternatives],
            num_flows,
            num_alts: num_alternatives,
        }
    }

    /// Reshape to `(num_flows, num_alts)` and zero every class, keeping
    /// the backing allocation.
    pub fn reset(&mut self, num_flows: usize, num_alts: usize) {
        self.storage.clear();
        self.storage.resize(num_flows * num_alts, 0);
        self.num_flows = num_flows;
        self.num_alts = num_alts;
    }

    pub(crate) fn into_storage(self) -> Vec<i32> {
        self.storage
    }

    pub(crate) fn from_storage(mut storage: Vec<i32>, num_flows: usize, num_alts: usize) -> Self {
        storage.clear();
        storage.resize(num_flows * num_alts, 0);
        Self {
            storage,
            num_flows,
            num_alts,
        }
    }

    /// Preference for a local flow index and alternative.
    #[inline]
    pub fn get(&self, local_flow: usize, alt: IcxId) -> i32 {
        self.storage[local_flow * self.num_alts + alt.index()]
    }

    /// Mutable access to one flow's row. The slice length is fixed, so
    /// callers cannot break the rectangular-table invariant.
    #[inline]
    pub fn row_mut(&mut self, local_flow: usize) -> &mut [i32] {
        &mut self.storage[local_flow * self.num_alts..(local_flow + 1) * self.num_alts]
    }

    /// One flow's preference row.
    #[inline]
    pub fn row(&self, local_flow: usize) -> &[i32] {
        &self.storage[local_flow * self.num_alts..(local_flow + 1) * self.num_alts]
    }

    /// Number of flows covered.
    #[inline]
    pub fn num_flows(&self) -> usize {
        self.num_flows
    }

    /// Number of alternatives per flow (0 for an empty table).
    #[inline]
    pub fn num_alternatives(&self) -> usize {
        if self.num_flows == 0 {
            0
        } else {
            self.num_alts
        }
    }

    /// Largest preference in the table (0 for an empty table).
    pub fn max_class(&self) -> i32 {
        self.storage.iter().copied().max().unwrap_or(0)
    }

    /// Verify every class is within `[-p, p]`.
    pub fn within_range(&self, p: i32) -> bool {
        self.storage.iter().all(|&c| (-p..=p).contains(&c))
    }
}

/// Quantize raw metric *gains* into preference classes with one global
/// linear scale. Convenience wrapper over [`quantize_into`] allocating a
/// fresh table.
pub fn quantize(gains: &GainTable, p: i32) -> PrefTable {
    let mut out = PrefTable::zero(gains.num_flows(), gains.num_alternatives());
    quantize_into(gains, p, &mut out, &mut Vec::new());
    out
}

/// Quantize raw metric *gains* into preference classes with one global
/// linear scale, writing into `out` (reshaped in place) and using
/// `magnitudes` as sort scratch — the hot-path form that allocates
/// nothing once the buffers are warm.
///
/// `gains[flow][alt]` is the ISP-internal improvement of the alternative
/// over the flow's default (positive = better, in whatever unit the ISP
/// uses). The scale maps the largest `|gain|` to `±p`; a table of all-zero
/// gains maps to all-zero classes. The default alternative of every flow
/// has gain 0 by construction and therefore class 0, as the paper
/// requires.
pub fn quantize_into(gains: &GainTable, p: i32, out: &mut PrefTable, magnitudes: &mut Vec<f64>) {
    assert!(p > 0, "preference range must be positive");
    out.reset(gains.num_flows(), gains.num_alternatives());
    // Robust scale: the 95th percentile of the nonzero |gains| maps to
    // ±p and larger outliers clamp. A plain maximum would let one
    // extreme flow (e.g. a transcontinental detour among regional flows)
    // crush every other delta into class 0, destroying the resolution
    // the negotiation needs; P "large enough to differentiate
    // alternatives with substantially different quality" (paper §4) is a
    // statement about the typical spread, not the single worst case.
    magnitudes.clear();
    magnitudes.extend(gains.values().iter().map(|g| g.abs()).filter(|&g| g > 0.0));
    if magnitudes.is_empty() {
        return; // all-zero gains map to the all-zero table
    }
    magnitudes.sort_by(|a, b| a.partial_cmp(b).expect("finite gains"));
    let idx = ((magnitudes.len() as f64 * 0.95).ceil() as usize)
        .saturating_sub(1)
        .min(magnitudes.len() - 1);
    let scale_base = magnitudes[idx];
    let scale = p as f64 / scale_base;
    // Floor, not round: gains round *down* and losses round *away from
    // zero*, so a class never overstates a gain or understates a loss.
    // This yields a real-metric guarantee on top of the engine's
    // preference-unit one: if an ISP's cumulative class gain is >= 0,
    // its true metric change is >= 0 too (each +1 class is backed by at
    // least one quantum of true gain, each -1 class by at most one
    // quantum of true loss). Tested as a property in the engine suite.
    for (cell, &g) in out.storage.iter_mut().zip(gains.values()) {
        *cell = ((g * scale).floor() as i32).clamp(-p, p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gains<R: AsRef<[f64]>>(rows: &[R]) -> GainTable {
        GainTable::from_rows(rows)
    }

    #[test]
    fn zero_table() {
        let t = PrefTable::zero(3, 2);
        assert_eq!(t.num_flows(), 3);
        assert_eq!(t.num_alternatives(), 2);
        assert_eq!(t.get(0, IcxId(1)), 0);
        assert!(t.within_range(1));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged() {
        PrefTable::from_rows(&[vec![0, 1], vec![0]]);
    }

    #[test]
    fn row_mut_cannot_resize() {
        // The flat layout makes the rectangular invariant structural: a
        // row is a fixed-length slice, not a growable vector.
        let mut t = PrefTable::from_rows(&[vec![0, 1], vec![2, 3]]);
        let row: &mut [i32] = t.row_mut(1);
        row[0] = 7;
        assert_eq!(t.row(1), &[7, 3]);
        assert_eq!(t.num_alternatives(), 2);
    }

    #[test]
    fn empty_tables_compare_equal() {
        assert_eq!(PrefTable::zero(0, 2), PrefTable::zero(0, 5));
        assert_ne!(PrefTable::zero(1, 2), PrefTable::zero(1, 3));
    }

    #[test]
    fn quantize_scales_to_range() {
        // Largest |gain| is 50 -> maps to 10; 25 -> 5; -50 -> -10.
        let t = quantize(&gains(&[vec![0.0, 50.0], vec![25.0, -50.0]]), 10);
        assert_eq!(t.get(0, IcxId(0)), 0);
        assert_eq!(t.get(0, IcxId(1)), 10);
        assert_eq!(t.get(1, IcxId(0)), 5);
        assert_eq!(t.get(1, IcxId(1)), -10);
    }

    #[test]
    fn quantize_floor_is_conservative() {
        // Gains round down, losses round away from zero.
        let t = quantize(&gains(&[vec![0.0, 9.0, -1.0, -9.0, 10.0]]), 10);
        // scale_base = p95 of {9,1,9,10} = 10 -> scale = 1.0
        assert_eq!(t.row(0), &[0, 9, -1, -9, 10]);
        let t = quantize(&gains(&[vec![0.0, 14.0, -14.0, 100.0]]), 10);
        // p95 of {14,14,100} = 100 -> scale = 0.1: 1.4 -> 1, -1.4 -> -2
        assert_eq!(t.get(0, IcxId(1)), 1);
        assert_eq!(t.get(0, IcxId(2)), -2);
    }

    #[test]
    fn quantize_all_zero() {
        let t = quantize(&gains(&[vec![0.0, 0.0]]), 10);
        assert_eq!(t.row(0), &[0, 0]);
    }

    #[test]
    fn quantize_into_reuses_buffers() {
        let g = gains(&[vec![0.0, 50.0], vec![25.0, -50.0]]);
        let mut out = PrefTable::zero(0, 0);
        let mut scratch = Vec::new();
        quantize_into(&g, 10, &mut out, &mut scratch);
        assert_eq!(quantize(&g, 10), out);
        // A second round with a different shape reuses both buffers.
        let g2 = gains(&[vec![0.0, -3.0]]);
        quantize_into(&g2, 10, &mut out, &mut scratch);
        assert_eq!(quantize(&g2, 10), out);
    }

    #[test]
    fn quantize_is_global_not_per_flow() {
        // Flow 0 has a tiny gain, flow 1 a huge one; per-flow normalization
        // would give both class 10. Global scaling must keep flow 0 small.
        let t = quantize(&gains(&[vec![0.0, 1.0], vec![0.0, 100.0]]), 10);
        assert_eq!(t.get(1, IcxId(1)), 10);
        assert!(t.get(0, IcxId(1)) <= 1, "tiny gain must stay tiny");
    }

    #[test]
    fn max_class_and_range() {
        let t = quantize(&gains(&[vec![0.0, 3.0, -7.0]]), 5);
        assert!(t.within_range(5));
        assert_eq!(t.max_class(), 2); // 3/7*5 = 2.14 -> 2
        assert!(!t.within_range(1));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn quantize_always_within_range(
                (rows, p) in (1usize..6).prop_flat_map(|k| (
                    proptest::collection::vec(
                        proptest::collection::vec(-1e6f64..1e6, k), 1..20),
                    1i32..50,
                )),
            ) {
                let t = quantize(&gains(&rows), p);
                prop_assert!(t.within_range(p));
            }

            #[test]
            fn quantize_preserves_sign_and_order_per_flow(
                rows in (2usize..6).prop_flat_map(|k| proptest::collection::vec(
                    proptest::collection::vec(-1e3f64..1e3, k), 1..10)),
            ) {
                let p = 1000; // large range: ordering must survive rounding
                let t = quantize(&gains(&rows), p);
                for (fi, row) in rows.iter().enumerate() {
                    for (ai, &g) in row.iter().enumerate() {
                        let c = t.get(fi, IcxId::new(ai));
                        if g > 0.0 { prop_assert!(c >= 0); }
                        if g < 0.0 { prop_assert!(c <= 0); }
                        for (aj, &h) in row.iter().enumerate() {
                            if g > h {
                                prop_assert!(
                                    c >= t.get(fi, IcxId::new(aj)),
                                    "order violated: gain {g} > {h} but class {c} < {}",
                                    t.get(fi, IcxId::new(aj))
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
