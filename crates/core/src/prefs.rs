//! Opaque preference classes and quantization.
//!
//! Preferences are integers in `[-P, P]` (the paper uses `P = 10` and
//! notes larger ranges add nothing). Class 0 is the flow's *default*
//! alternative; positive classes are better-than-default, negative worse.
//!
//! The mapping from an ISP's internal metric must **compose over
//! addition** (paper §4, step 1): an ISP should accept two class `-1`
//! alternatives to win one class `+3` alternative. A per-flow
//! normalization would break that (a `-1` on one flow could hide a much
//! larger real loss than a `+3` gain on another), so [`quantize`] applies
//! one *global* linear scale per ISP per mapping round: the largest
//! absolute metric delta maps to ±P and everything else scales
//! proportionally.

use nexit_topology::IcxId;

/// A preference table for one ISP over one negotiated flow set:
/// `prefs[local_flow][alternative]` is the preference class.
///
/// "Local flow" indices are positions within the *negotiated subset* (see
/// [`crate::SessionInput`]), not global [`nexit_routing::FlowId`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefTable {
    prefs: Vec<Vec<i32>>,
}

impl PrefTable {
    /// Build from raw rows. Every row must have the same number of
    /// alternatives.
    pub fn new(prefs: Vec<Vec<i32>>) -> Self {
        if let Some(first) = prefs.first() {
            let k = first.len();
            assert!(
                prefs.iter().all(|row| row.len() == k),
                "ragged preference table"
            );
        }
        Self { prefs }
    }

    /// An all-zero (indifferent) table.
    pub fn zero(num_flows: usize, num_alternatives: usize) -> Self {
        Self {
            prefs: vec![vec![0; num_alternatives]; num_flows],
        }
    }

    /// Preference for a local flow index and alternative.
    #[inline]
    pub fn get(&self, local_flow: usize, alt: IcxId) -> i32 {
        self.prefs[local_flow][alt.index()]
    }

    /// Mutable access for one flow row.
    #[inline]
    pub fn row_mut(&mut self, local_flow: usize) -> &mut Vec<i32> {
        &mut self.prefs[local_flow]
    }

    /// One flow's preference row.
    #[inline]
    pub fn row(&self, local_flow: usize) -> &[i32] {
        &self.prefs[local_flow]
    }

    /// Number of flows covered.
    #[inline]
    pub fn num_flows(&self) -> usize {
        self.prefs.len()
    }

    /// Number of alternatives per flow (0 for an empty table).
    #[inline]
    pub fn num_alternatives(&self) -> usize {
        self.prefs.first().map_or(0, Vec::len)
    }

    /// Largest preference in the table (0 for an empty table).
    pub fn max_class(&self) -> i32 {
        self.prefs
            .iter()
            .flat_map(|r| r.iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// Verify every class is within `[-p, p]`.
    pub fn within_range(&self, p: i32) -> bool {
        self.prefs
            .iter()
            .flat_map(|r| r.iter())
            .all(|&c| (-p..=p).contains(&c))
    }
}

/// Quantize raw metric *gains* into preference classes with one global
/// linear scale.
///
/// `gains[flow][alt]` is the ISP-internal improvement of the alternative
/// over the flow's default (positive = better, in whatever unit the ISP
/// uses). The scale maps the largest `|gain|` to `±p`; a table of all-zero
/// gains maps to all-zero classes. The default alternative of every flow
/// has gain 0 by construction and therefore class 0, as the paper
/// requires.
pub fn quantize(gains: &[Vec<f64>], p: i32) -> PrefTable {
    assert!(p > 0, "preference range must be positive");
    // Robust scale: the 95th percentile of the nonzero |gains| maps to
    // ±p and larger outliers clamp. A plain maximum would let one
    // extreme flow (e.g. a transcontinental detour among regional flows)
    // crush every other delta into class 0, destroying the resolution
    // the negotiation needs; P "large enough to differentiate
    // alternatives with substantially different quality" (paper §4) is a
    // statement about the typical spread, not the single worst case.
    let mut magnitudes: Vec<f64> = gains
        .iter()
        .flat_map(|r| r.iter())
        .map(|g| g.abs())
        .filter(|&g| g > 0.0)
        .collect();
    if magnitudes.is_empty() {
        return PrefTable::new(gains.iter().map(|r| vec![0; r.len()]).collect());
    }
    magnitudes.sort_by(|a, b| a.partial_cmp(b).expect("finite gains"));
    let idx = ((magnitudes.len() as f64 * 0.95).ceil() as usize)
        .saturating_sub(1)
        .min(magnitudes.len() - 1);
    let scale_base = magnitudes[idx];
    let scale = p as f64 / scale_base;
    // Floor, not round: gains round *down* and losses round *away from
    // zero*, so a class never overstates a gain or understates a loss.
    // This yields a real-metric guarantee on top of the engine's
    // preference-unit one: if an ISP's cumulative class gain is >= 0,
    // its true metric change is >= 0 too (each +1 class is backed by at
    // least one quantum of true gain, each -1 class by at most one
    // quantum of true loss). Tested as a property in the engine suite.
    PrefTable::new(
        gains
            .iter()
            .map(|row| {
                row.iter()
                    .map(|g| ((g * scale).floor() as i32).clamp(-p, p))
                    .collect()
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_table() {
        let t = PrefTable::zero(3, 2);
        assert_eq!(t.num_flows(), 3);
        assert_eq!(t.num_alternatives(), 2);
        assert_eq!(t.get(0, IcxId(1)), 0);
        assert!(t.within_range(1));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged() {
        PrefTable::new(vec![vec![0, 1], vec![0]]);
    }

    #[test]
    fn quantize_scales_to_range() {
        // Largest |gain| is 50 -> maps to 10; 25 -> 5; -50 -> -10.
        let t = quantize(&[vec![0.0, 50.0], vec![25.0, -50.0]], 10);
        assert_eq!(t.get(0, IcxId(0)), 0);
        assert_eq!(t.get(0, IcxId(1)), 10);
        assert_eq!(t.get(1, IcxId(0)), 5);
        assert_eq!(t.get(1, IcxId(1)), -10);
    }

    #[test]
    fn quantize_floor_is_conservative() {
        // Gains round down, losses round away from zero.
        let t = quantize(&[vec![0.0, 9.0, -1.0, -9.0, 10.0]], 10);
        // scale_base = p95 of {9,1,9,10} = 10 -> scale = 1.0
        assert_eq!(t.row(0), &[0, 9, -1, -9, 10]);
        let t = quantize(&[vec![0.0, 14.0, -14.0, 100.0]], 10);
        // p95 of {14,14,100} = 100 -> scale = 0.1: 1.4 -> 1, -1.4 -> -2
        assert_eq!(t.get(0, IcxId(1)), 1);
        assert_eq!(t.get(0, IcxId(2)), -2);
    }

    #[test]
    fn quantize_all_zero() {
        let t = quantize(&[vec![0.0, 0.0]], 10);
        assert_eq!(t.row(0), &[0, 0]);
    }

    #[test]
    fn quantize_is_global_not_per_flow() {
        // Flow 0 has a tiny gain, flow 1 a huge one; per-flow normalization
        // would give both class 10. Global scaling must keep flow 0 small.
        let t = quantize(&[vec![0.0, 1.0], vec![0.0, 100.0]], 10);
        assert_eq!(t.get(1, IcxId(1)), 10);
        assert!(t.get(0, IcxId(1)) <= 1, "tiny gain must stay tiny");
    }

    #[test]
    fn max_class_and_range() {
        let t = quantize(&[vec![0.0, 3.0, -7.0]], 5);
        assert!(t.within_range(5));
        assert_eq!(t.max_class(), 2); // 3/7*5 = 2.14 -> 2
        assert!(!t.within_range(1));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn quantize_always_within_range(
                (gains, p) in (1usize..6).prop_flat_map(|k| (
                    proptest::collection::vec(
                        proptest::collection::vec(-1e6f64..1e6, k), 1..20),
                    1i32..50,
                )),
            ) {
                let t = quantize(&gains, p);
                prop_assert!(t.within_range(p));
            }

            #[test]
            fn quantize_preserves_sign_and_order_per_flow(
                gains in (2usize..6).prop_flat_map(|k| proptest::collection::vec(
                    proptest::collection::vec(-1e3f64..1e3, k), 1..10)),
            ) {
                let p = 1000; // large range: ordering must survive rounding
                let t = quantize(&gains, p);
                for (fi, row) in gains.iter().enumerate() {
                    for (ai, &g) in row.iter().enumerate() {
                        let c = t.get(fi, IcxId::new(ai));
                        if g > 0.0 { prop_assert!(c >= 0); }
                        if g < 0.0 { prop_assert!(c <= 0); }
                        for (aj, &h) in row.iter().enumerate() {
                            if g > h {
                                prop_assert!(
                                    c >= t.get(fi, IcxId::new(aj)),
                                    "order violated: gain {g} > {h} but class {c} < {}",
                                    t.get(fi, IcxId::new(aj))
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
