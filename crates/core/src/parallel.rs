//! Flow-level parallel fills for the flat gain tables.
//!
//! The preference mappers spend their time in per-flow cost loops that
//! are independent of each other once the shared state (the load
//! vector) is snapshotted. Because a [`GainTable`] is one flat buffer
//! whose rows are contiguous `num_alternatives()`-sized chunks, it
//! splits into disjoint sub-slices of whole rows — each worker writes
//! its own range and nothing else, so the result is **byte-identical**
//! to the serial fill for any thread count (each cell is computed once,
//! by the same arithmetic, from shared read-only state).
//!
//! This lives in the core crate so the mappers themselves
//! ([`crate::BandwidthMapper::with_threads`],
//! [`crate::FortzMapper::with_threads`], and the simulation harness's
//! destination mapper) can fan out; the experiment harness re-exports
//! it next to its pair-level `par_map`.

use crate::arena::GainTable;

/// How many worker threads a fill should use: an explicit request, or
/// every available core when `requested` is 0 (the auto setting).
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    }
}

/// Fill the rows of one flat [`GainTable`] in parallel: `fill(flow, row)`
/// computes flow `flow`'s gain row in place. `threads <= 1` runs the
/// plain serial loop; any other count produces bitwise-identical output.
pub fn par_flows<F>(threads: usize, table: &mut GainTable, fill: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    let num_flows = table.num_flows();
    let k = table.num_alternatives();
    if num_flows == 0 || k == 0 {
        return;
    }
    let threads = resolve_threads(threads).min(num_flows);
    if threads <= 1 {
        for flow in 0..num_flows {
            fill(flow, table.row_mut(flow));
        }
        return;
    }
    let rows_per = num_flows.div_ceil(threads);
    crossbeam::thread::scope(|s| {
        let fill = &fill;
        let mut rest = table.values_mut();
        let mut start = 0;
        while start < num_flows {
            let take = rows_per.min(num_flows - start);
            let (chunk, tail) = rest.split_at_mut(take * k);
            rest = tail;
            let base = start;
            s.spawn(move |_| {
                for (i, row) in chunk.chunks_mut(k).enumerate() {
                    fill(base + i, row);
                }
            });
            start += take;
        }
    })
    .expect("par_flows worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately order-sensitive fill: each cell mixes the flow and
    /// alternative index through float math that would drift if a cell
    /// were computed twice or from the wrong indices.
    fn reference_fill(flow: usize, row: &mut [f64]) {
        for (alt, cell) in row.iter_mut().enumerate() {
            *cell = (flow as f64 + 1.0).sqrt() * (alt as f64 - 1.5) / 3.0;
        }
    }

    #[test]
    fn par_flows_is_byte_identical_across_thread_counts() {
        let mut serial = GainTable::new(37, 5);
        par_flows(1, &mut serial, reference_fill);
        for threads in [2, 4] {
            let mut parallel = GainTable::new(37, 5);
            par_flows(threads, &mut parallel, reference_fill);
            assert!(
                serial
                    .values()
                    .iter()
                    .zip(parallel.values())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "thread count {threads} changed the table"
            );
        }
    }

    #[test]
    fn par_flows_handles_empty_and_tiny_tables() {
        let mut empty = GainTable::new(0, 4);
        par_flows(4, &mut empty, |_, _| panic!("no rows to fill"));
        let mut one = GainTable::new(1, 2);
        par_flows(8, &mut one, reference_fill);
        let mut expect = GainTable::new(1, 2);
        reference_fill(0, expect.row_mut(0));
        assert_eq!(one, expect);
    }

    #[test]
    fn auto_resolves_to_at_least_one() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
