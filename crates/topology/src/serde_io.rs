//! JSON import/export for topologies and universes.
//!
//! Users who have access to the measured Rocketfuel dataset (or any other
//! PoP-level maps) can convert it to this JSON schema and run every
//! experiment on real data instead of the synthetic universe.

use crate::generator::Universe;
use crate::isp::IspTopology;
use crate::TopologyError;

/// Serialize a universe to pretty-printed JSON.
pub fn universe_to_json(universe: &Universe) -> String {
    serde_json::to_string_pretty(universe).expect("universe serialization cannot fail")
}

/// Load a universe from JSON, rebuilding indices and re-validating every
/// topology.
pub fn universe_from_json(json: &str) -> Result<Universe, TopologyError> {
    let mut universe: Universe =
        serde_json::from_str(json).map_err(|e| TopologyError::InvalidSerialized(e.to_string()))?;
    universe.rebuild_indices();
    for isp in &universe.isps {
        validate(isp)?;
    }
    for (i, pair) in universe.pairs.iter().enumerate() {
        let a = universe
            .isps
            .get(pair.isp_a.index())
            .ok_or(TopologyError::InvalidSerialized(format!(
                "pair {i} references missing ISP {}",
                pair.isp_a
            )))?;
        let b = universe
            .isps
            .get(pair.isp_b.index())
            .ok_or(TopologyError::InvalidSerialized(format!(
                "pair {i} references missing ISP {}",
                pair.isp_b
            )))?;
        for (j, icx) in pair.interconnections() {
            if icx.pop_a.index() >= a.num_pops() || icx.pop_b.index() >= b.num_pops() {
                return Err(TopologyError::BadInterconnection { icx: j.index() });
            }
        }
    }
    Ok(universe)
}

/// Serialize one ISP topology to JSON.
pub fn isp_to_json(isp: &IspTopology) -> String {
    serde_json::to_string_pretty(isp).expect("topology serialization cannot fail")
}

/// Load one ISP topology from JSON, rebuilding the adjacency index and
/// re-validating.
pub fn isp_from_json(json: &str) -> Result<IspTopology, TopologyError> {
    let mut isp: IspTopology =
        serde_json::from_str(json).map_err(|e| TopologyError::InvalidSerialized(e.to_string()))?;
    isp.rebuild_adjacency();
    validate(&isp)?;
    Ok(isp)
}

/// Re-run the structural checks done by [`IspTopology::new`] on an already
/// constructed topology (used after deserialization).
fn validate(isp: &IspTopology) -> Result<(), TopologyError> {
    // Round-trip through the constructor; cheap at these sizes.
    IspTopology::new(
        isp.id,
        isp.name.clone(),
        isp.pops.clone(),
        isp.links.clone(),
        isp.is_mesh,
    )
    .map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, TopologyGenerator};

    fn small_universe() -> Universe {
        TopologyGenerator::new(GeneratorConfig {
            num_isps: 8,
            num_mesh_isps: 1,
            seed: 42,
            ..GeneratorConfig::default()
        })
        .generate()
    }

    #[test]
    fn universe_roundtrip() {
        let u = small_universe();
        let json = universe_to_json(&u);
        let back = universe_from_json(&json).unwrap();
        assert_eq!(u.isps, back.isps);
        assert_eq!(u.pairs, back.pairs);
    }

    #[test]
    fn isp_roundtrip() {
        let u = small_universe();
        let json = isp_to_json(&u.isps[0]);
        let back = isp_from_json(&json).unwrap();
        assert_eq!(u.isps[0], back);
    }

    #[test]
    fn adjacency_rebuilt_after_load() {
        let u = small_universe();
        let json = isp_to_json(&u.isps[0]);
        let back = isp_from_json(&json).unwrap();
        // Adjacency is #[serde(skip)]; equality above checks pops/links; here
        // check the index actually works post-load.
        for (p, _) in back.pops() {
            for &lid in back.incident_links(p) {
                assert!(back.link(lid).opposite(p).is_some());
            }
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(universe_from_json("{not json").is_err());
        assert!(isp_from_json("[]").is_err());
    }

    #[test]
    fn rejects_tampered_pair() {
        let u = small_universe();
        let mut json = universe_to_json(&u);
        // Point a pair at a pop index that cannot exist.
        json = json.replacen("\"pop_a\": 0,", "\"pop_a\": 4096,", 1);
        if json.contains("4096") {
            assert!(universe_from_json(&json).is_err());
        }
    }
}
