//! Deterministic Rocketfuel-like topology synthesis.
//!
//! The paper's dataset — 65 measured PoP-level ISP maps with geographic
//! coordinates and inferred link weights — is not redistributable, so this
//! module synthesizes a universe with the same load-bearing properties:
//!
//! * **heavy-tailed ISP sizes** (a few large tier-1 backbones, many small
//!   regional networks),
//! * **geographic embedding**: PoPs are real cities with real coordinates
//!   and populations, so geographic distance and gravity weights behave
//!   like the measured data,
//! * **distance-driven intradomain connectivity**: a spanning tree over
//!   geographic distance plus Waxman-style extra edges, giving the sparse
//!   2–3.5 average degree seen in PoP-level maps,
//! * **a minority of logical-mesh ISPs** (the paper excluded eight whose
//!   measured maps were meshes; we generate the same fraction and mark
//!   them with [`crate::IspTopology::is_mesh`]),
//! * **interconnections in shared cities**: two ISPs can peer wherever
//!   both have a PoP in the same city, and large hub cities (New York,
//!   London, …) are shared by many ISPs — exactly how real peering
//!   placement works.
//!
//! Everything is driven by a single seed: the same
//! [`GeneratorConfig`] always produces bit-identical universes.

use crate::city::{builtin_cities, City, Region};
use crate::ids::{IspId, PopId};
use crate::isp::{IspTopology, Link, Pop};
use crate::pair::{Interconnection, IspPair, PairView};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tunables for universe synthesis. `Default` reproduces the paper-scale
/// universe: 65 ISPs, 8 of them meshes.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// RNG seed; the sole source of randomness.
    pub seed: u64,
    /// Number of ISPs to generate.
    pub num_isps: usize,
    /// Minimum PoPs per ISP.
    pub min_pops: usize,
    /// Maximum PoPs per ISP.
    pub max_pops: usize,
    /// Exponent of the size distribution: sizes are
    /// `min + (max-min) * u^size_skew` for uniform `u`, so larger skew
    /// means more small ISPs.
    pub size_skew: f64,
    /// Number of ISPs generated as logical meshes (paper: 8 of 65).
    pub num_mesh_isps: usize,
    /// Waxman edge probability scale (`alpha`): expected extra edges per PoP (scaled by 1/(n-1) internally); higher means denser graphs.
    pub waxman_alpha: f64,
    /// Waxman distance decay (`beta`), as a fraction of the ISP's mean pairwise PoP distance.
    pub waxman_beta: f64,
    /// Probability that a candidate ISP pair actually peers. Calibrated so
    /// the eligible-pair counts land near the paper's 229 (≥2 icx) and
    /// 247 (≥3 icx).
    pub peer_probability: f64,
    /// Probability that each shared city of a peering pair hosts an
    /// interconnection.
    pub icx_per_shared_city_probability: f64,
    /// Length assigned to a same-city interconnection, in kilometres
    /// (cross-town fiber).
    pub same_city_icx_km: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            seed: 20050502, // NSDI '05 started May 2, 2005
            num_isps: 65,
            min_pops: 4,
            max_pops: 48,
            size_skew: 2.2,
            num_mesh_isps: 8,
            waxman_alpha: 2.4,
            waxman_beta: 0.6,
            peer_probability: 0.40,
            icx_per_shared_city_probability: 0.9,
            same_city_icx_km: 5.0,
        }
    }
}

serde::impl_json_struct!(GeneratorConfig {
    seed,
    num_isps,
    min_pops,
    max_pops,
    size_skew,
    num_mesh_isps,
    waxman_alpha,
    waxman_beta,
    peer_probability,
    icx_per_shared_city_probability,
    same_city_icx_km,
});

/// A generated universe: ISP topologies plus every peering pair.
#[derive(Debug, Clone)]
pub struct Universe {
    /// All ISPs; an [`IspId`] indexes this vector.
    pub isps: Vec<IspTopology>,
    /// All peering pairs (each with at least one interconnection).
    pub pairs: Vec<IspPair>,
    /// The configuration that produced this universe.
    pub config: GeneratorConfig,
}

serde::impl_json_struct!(Universe {
    isps,
    pairs,
    config
});

impl Universe {
    /// Borrowed view of the `i`-th pair.
    pub fn pair_view(&self, i: usize) -> PairView<'_> {
        let pair = &self.pairs[i];
        PairView::new(
            &self.isps[pair.isp_a.index()],
            &self.isps[pair.isp_b.index()],
            pair,
        )
    }

    /// Indices of pairs with at least `k` interconnections, optionally
    /// excluding pairs that involve a mesh ISP (the paper's distance
    /// experiments exclude meshes; its bandwidth experiments do not).
    pub fn eligible_pairs(&self, min_icx: usize, exclude_mesh: bool) -> Vec<usize> {
        self.pairs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.num_interconnections() >= min_icx)
            .filter(|(_, p)| {
                !exclude_mesh
                    || (!self.isps[p.isp_a.index()].is_mesh && !self.isps[p.isp_b.index()].is_mesh)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Rebuild adjacency indices after deserialization.
    pub fn rebuild_indices(&mut self) {
        for isp in &mut self.isps {
            isp.rebuild_adjacency();
        }
    }
}

/// The synthesizer. Stateless apart from the config; every call to
/// [`TopologyGenerator::generate`] re-derives everything from the seed.
#[derive(Debug, Clone)]
pub struct TopologyGenerator {
    config: GeneratorConfig,
}

impl TopologyGenerator {
    /// Create a generator with the given configuration.
    pub fn new(config: GeneratorConfig) -> Self {
        Self { config }
    }

    /// Generate the full universe.
    pub fn generate(&self) -> Universe {
        let cities = builtin_cities();
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        let mut isps = Vec::with_capacity(self.config.num_isps);
        for i in 0..self.config.num_isps {
            // Mesh ISPs are interleaved deterministically through the list
            // rather than bunched at one end, so pair sampling sees them
            // uniformly.
            let is_mesh = self.config.num_mesh_isps > 0
                && i % (self.config.num_isps / self.config.num_mesh_isps.max(1)).max(1) == 0
                && isps.iter().filter(|t: &&IspTopology| t.is_mesh).count()
                    < self.config.num_mesh_isps;
            isps.push(self.generate_isp(IspId::new(i), &cities, is_mesh, &mut rng));
        }

        let pairs = self.generate_pairs(&isps, &mut rng);
        Universe {
            isps,
            pairs,
            config: self.config.clone(),
        }
    }

    fn sample_size(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        let span = (self.config.max_pops - self.config.min_pops) as f64;
        self.config.min_pops + (span * u.powf(self.config.size_skew)).round() as usize
    }

    fn sample_home_region(&self, rng: &mut StdRng) -> Region {
        // Rocketfuel was dominated by North American and European ISPs.
        let r: f64 = rng.gen();
        match r {
            x if x < 0.58 => Region::NorthAmerica,
            x if x < 0.84 => Region::Europe,
            x if x < 0.93 => Region::Asia,
            x if x < 0.97 => Region::SouthAmerica,
            _ => Region::Oceania,
        }
    }

    /// Weighted sample of `n` distinct cities. Hub bias: selection weight is
    /// `population^0.8`, so New York / London / Tokyo appear in many ISPs,
    /// which is what creates multi-city peering opportunities.
    fn sample_cities<'c>(
        &self,
        cities: &'c [City],
        n: usize,
        home: Region,
        global: bool,
        rng: &mut StdRng,
    ) -> Vec<&'c City> {
        let mut chosen: Vec<&City> = Vec::with_capacity(n);
        let mut taken = vec![false; cities.len()];
        while chosen.len() < n {
            // Decide the candidate region for this draw.
            let use_home = if global {
                rng.gen_bool(0.65)
            } else {
                rng.gen_bool(0.92)
            };
            let candidates: Vec<usize> = cities
                .iter()
                .enumerate()
                .filter(|(i, c)| !taken[*i] && if use_home { c.region == home } else { true })
                .map(|(i, _)| i)
                .collect();
            if candidates.is_empty() {
                // Home region exhausted; fall back to any untaken city.
                let rest: Vec<usize> = (0..cities.len()).filter(|&i| !taken[i]).collect();
                if rest.is_empty() {
                    break; // table exhausted; smaller ISP than requested
                }
                let idx = rest[rng.gen_range(0..rest.len())];
                taken[idx] = true;
                chosen.push(&cities[idx]);
                continue;
            }
            let total: f64 = candidates
                .iter()
                .map(|&i| cities[i].population_millions.powf(0.8))
                .sum();
            let mut pick = rng.gen::<f64>() * total;
            let mut selected = candidates[candidates.len() - 1];
            for &i in &candidates {
                pick -= cities[i].population_millions.powf(0.8);
                if pick <= 0.0 {
                    selected = i;
                    break;
                }
            }
            taken[selected] = true;
            chosen.push(&cities[selected]);
        }
        chosen
    }

    fn generate_isp(
        &self,
        id: IspId,
        cities: &[City],
        is_mesh: bool,
        rng: &mut StdRng,
    ) -> IspTopology {
        let mut n = self.sample_size(rng);
        if is_mesh {
            // Mesh ISPs in the measured data were small-to-medium; cap so
            // the O(n^2) link count stays reasonable.
            n = n.min(12).max(self.config.min_pops);
        }
        let home = self.sample_home_region(rng);
        let global = n >= 24; // large backbones span regions
        let chosen = self.sample_cities(cities, n, home, global, rng);

        let pops: Vec<Pop> = chosen
            .iter()
            .map(|c| Pop {
                city: c.name.clone(),
                geo: c.geo,
                weight: c.population_millions,
            })
            .collect();

        let links = if is_mesh {
            full_mesh_links(&pops)
        } else {
            waxman_links(
                &pops,
                self.config.waxman_alpha,
                self.config.waxman_beta,
                rng,
            )
        };

        IspTopology::new(id, format!("isp-{:02}", id.0), pops, links, is_mesh)
            .expect("generator produced invalid topology")
    }

    fn generate_pairs(&self, isps: &[IspTopology], rng: &mut StdRng) -> Vec<IspPair> {
        let mut pairs = Vec::new();
        for i in 0..isps.len() {
            for j in (i + 1)..isps.len() {
                let shared = shared_cities(&isps[i], &isps[j]);
                if shared.len() < 2 {
                    continue;
                }
                if !rng.gen_bool(self.config.peer_probability) {
                    continue;
                }
                let mut icx = Vec::new();
                for (pa, pb) in &shared {
                    if icx.len() + 1 == shared.len() && icx.is_empty() {
                        // Guarantee at least one interconnection survives the
                        // per-city coin flip for pairs that decided to peer.
                        icx.push(Interconnection {
                            pop_a: *pa,
                            pop_b: *pb,
                            length_km: self.config.same_city_icx_km,
                        });
                        continue;
                    }
                    if rng.gen_bool(self.config.icx_per_shared_city_probability) {
                        icx.push(Interconnection {
                            pop_a: *pa,
                            pop_b: *pb,
                            length_km: self.config.same_city_icx_km,
                        });
                    }
                }
                if icx.len() >= 2 {
                    pairs.push(
                        IspPair::new(&isps[i], &isps[j], icx)
                            .expect("generator produced invalid pair"),
                    );
                }
            }
        }
        pairs
    }
}

/// PoP pairs co-located in the same city across two ISPs, in city order.
fn shared_cities(a: &IspTopology, b: &IspTopology) -> Vec<(PopId, PopId)> {
    let mut out = Vec::new();
    for (pa, pop_a) in a.pops() {
        if let Some(pb) = b.pop_in_city(&pop_a.city) {
            out.push((pa, pb));
        }
    }
    out
}

/// Full-mesh link set (used for mesh ISPs). Weights equal geographic
/// length, but callers must treat mesh distances as non-geographic.
fn full_mesh_links(pops: &[Pop]) -> Vec<Link> {
    let mut links = Vec::new();
    for i in 0..pops.len() {
        for j in (i + 1)..pops.len() {
            let d = pops[i].geo.distance_km(&pops[j].geo).max(1.0);
            links.push(Link {
                a: PopId::new(i),
                b: PopId::new(j),
                weight: d,
                length_km: d,
            });
        }
    }
    links
}

/// Spanning tree over geographic distance plus Waxman extra edges.
///
/// The spanning tree (Prim's algorithm) guarantees connectivity with
/// short-haul links; the Waxman pass then adds each non-tree edge `(i,j)`
/// with probability `alpha * exp(-d_ij / (beta * diameter))`, reproducing
/// the distance-biased redundancy of real backbone maps.
#[allow(clippy::needless_range_loop)] // adjacency-matrix style indexing
fn waxman_links(pops: &[Pop], alpha: f64, beta: f64, rng: &mut StdRng) -> Vec<Link> {
    let n = pops.len();
    assert!(n >= 1);
    let d = |i: usize, j: usize| pops[i].geo.distance_km(&pops[j].geo).max(1.0);

    // Prim's MST.
    let mut in_tree = vec![false; n];
    let mut best = vec![(f64::INFINITY, usize::MAX); n]; // (dist, parent)
    in_tree[0] = true;
    for j in 1..n {
        best[j] = (d(0, j), 0);
    }
    let mut links = Vec::new();
    let mut in_graph = vec![vec![false; n]; n];
    for _ in 1..n {
        let (next, _) = best
            .iter()
            .enumerate()
            .filter(|(i, _)| !in_tree[*i])
            .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap())
            .map(|(i, v)| (i, v.0))
            .expect("tree incomplete");
        let parent = best[next].1;
        in_tree[next] = true;
        let dist = d(parent, next);
        links.push(Link {
            a: PopId::new(parent),
            b: PopId::new(next),
            weight: dist,
            length_km: dist,
        });
        in_graph[parent][next] = true;
        in_graph[next][parent] = true;
        for j in 0..n {
            if !in_tree[j] && d(next, j) < best[j].0 {
                best[j] = (d(next, j), next);
            }
        }
    }

    // Waxman extra edges. The distance scale is the *mean* pairwise
    // distance (the classic diameter scale makes tightly clustered ISPs
    // with one remote outlier nearly complete graphs), and the base
    // probability is normalized by `n-1` so the expected number of extra
    // edges grows linearly with PoP count — keeping average degree in the
    // 2.5–4 band of real PoP-level maps at every ISP size.
    let num_dist_pairs = (n * n.saturating_sub(1) / 2).max(1) as f64;
    let mean_dist = ((0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .map(|(i, j)| d(i, j))
        .sum::<f64>()
        / num_dist_pairs)
        .max(1.0);
    for i in 0..n {
        for j in (i + 1)..n {
            if in_graph[i][j] {
                continue;
            }
            let p = (alpha / (n.max(2) - 1) as f64) * (-d(i, j) / (beta * mean_dist)).exp();
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                let dist = d(i, j);
                links.push(Link {
                    a: PopId::new(i),
                    b: PopId::new(j),
                    weight: dist,
                    length_km: dist,
                });
                in_graph[i][j] = true;
                in_graph[j][i] = true;
            }
        }
    }
    links
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(seed: u64) -> GeneratorConfig {
        GeneratorConfig {
            seed,
            num_isps: 12,
            num_mesh_isps: 2,
            ..GeneratorConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TopologyGenerator::new(small_config(7)).generate();
        let b = TopologyGenerator::new(small_config(7)).generate();
        assert_eq!(a.isps.len(), b.isps.len());
        for (x, y) in a.isps.iter().zip(&b.isps) {
            assert_eq!(x, y);
        }
        assert_eq!(a.pairs, b.pairs);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TopologyGenerator::new(small_config(1)).generate();
        let b = TopologyGenerator::new(small_config(2)).generate();
        assert_ne!(
            a.isps.iter().map(|i| i.num_pops()).collect::<Vec<_>>(),
            b.isps.iter().map(|i| i.num_pops()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn isp_count_and_mesh_count() {
        let u = TopologyGenerator::new(small_config(3)).generate();
        assert_eq!(u.isps.len(), 12);
        assert_eq!(u.isps.iter().filter(|i| i.is_mesh).count(), 2);
    }

    #[test]
    fn sizes_within_bounds() {
        let cfg = small_config(5);
        let u = TopologyGenerator::new(cfg.clone()).generate();
        for isp in &u.isps {
            assert!(isp.num_pops() >= cfg.min_pops, "{}", isp.name);
            assert!(isp.num_pops() <= cfg.max_pops, "{}", isp.name);
        }
    }

    #[test]
    fn all_topologies_connected_by_construction() {
        // IspTopology::new validates connectivity; generation not panicking
        // is the check, but also verify adjacency is populated.
        let u = TopologyGenerator::new(small_config(11)).generate();
        for isp in &u.isps {
            for (p, _) in isp.pops() {
                if isp.num_pops() > 1 {
                    assert!(
                        !isp.incident_links(p).is_empty(),
                        "{} pop {} isolated",
                        isp.name,
                        p
                    );
                }
            }
        }
    }

    #[test]
    fn mesh_isps_are_full_meshes() {
        let u = TopologyGenerator::new(small_config(13)).generate();
        for isp in u.isps.iter().filter(|i| i.is_mesh) {
            let n = isp.num_pops();
            assert_eq!(isp.num_links(), n * (n - 1) / 2, "{}", isp.name);
        }
    }

    #[test]
    fn pairs_reference_real_pops_in_same_city() {
        let u = TopologyGenerator::new(small_config(17)).generate();
        for pair in &u.pairs {
            let a = &u.isps[pair.isp_a.index()];
            let b = &u.isps[pair.isp_b.index()];
            for (_, icx) in pair.interconnections() {
                assert_eq!(
                    a.pop(icx.pop_a).city,
                    b.pop(icx.pop_b).city,
                    "interconnection endpoints in different cities"
                );
            }
        }
    }

    #[test]
    fn pairs_have_at_least_two_interconnections() {
        let u = TopologyGenerator::new(small_config(19)).generate();
        for pair in &u.pairs {
            assert!(pair.num_interconnections() >= 2);
        }
    }

    #[test]
    fn eligible_pairs_filters() {
        let u = TopologyGenerator::new(small_config(23)).generate();
        let all2 = u.eligible_pairs(2, false);
        let no_mesh2 = u.eligible_pairs(2, true);
        let all3 = u.eligible_pairs(3, false);
        assert!(no_mesh2.len() <= all2.len());
        assert!(all3.len() <= all2.len());
        for &i in &no_mesh2 {
            let p = &u.pairs[i];
            assert!(!u.isps[p.isp_a.index()].is_mesh);
            assert!(!u.isps[p.isp_b.index()].is_mesh);
        }
    }

    #[test]
    fn full_universe_has_paper_scale_pairs() {
        // The default config must land near the paper's pair counts:
        // 229 pairs with >=2 icx (mesh excluded), 247 with >=3 (any).
        let u = TopologyGenerator::new(GeneratorConfig::default()).generate();
        let distance_pairs = u.eligible_pairs(2, true).len();
        let bandwidth_pairs = u.eligible_pairs(3, false).len();
        assert!(
            (150..=350).contains(&distance_pairs),
            "distance-eligible pairs = {distance_pairs}, want ~229"
        );
        assert!(
            (150..=350).contains(&bandwidth_pairs),
            "bandwidth-eligible pairs = {bandwidth_pairs}, want ~247"
        );
    }

    #[test]
    fn waxman_graph_is_sparse() {
        let u = TopologyGenerator::new(small_config(29)).generate();
        for isp in u.isps.iter().filter(|i| !i.is_mesh) {
            let n = isp.num_pops() as f64;
            let avg_degree = 2.0 * isp.num_links() as f64 / n;
            assert!(
                avg_degree < 6.0,
                "{}: avg degree {avg_degree} too dense",
                isp.name
            );
        }
    }
}
