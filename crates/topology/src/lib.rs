//! PoP-level ISP topology model and synthetic topology generation.
//!
//! The NSDI 2005 Nexit evaluation uses a measured dataset of 65 PoP-level
//! ISP topologies (Rocketfuel) with geographic PoP coordinates and inferred
//! intra-ISP link weights. That dataset is not redistributable, so this
//! crate provides:
//!
//! * the **data model** — [`IspTopology`], [`Pop`], [`Link`],
//!   [`Interconnection`], [`IspPair`] — able to represent either measured or
//!   synthetic topologies,
//! * a **deterministic generator** ([`generator::TopologyGenerator`]) that
//!   synthesizes a Rocketfuel-like universe of ISPs: heavy-tailed PoP
//!   counts, geographically embedded PoPs drawn from a built-in table of
//!   real world cities, spanning-tree-plus-Waxman intra-ISP connectivity,
//!   and interconnections wherever two ISPs are present in the same city,
//! * **JSON import/export** ([`serde_io`]) so users with access to the real
//!   measured data can substitute it directly.
//!
//! All coordinates are WGS-84 latitude/longitude and all distances are
//! great-circle kilometres ([`geo::GeoPoint::distance_km`]).

pub mod city;
pub mod generator;
pub mod geo;
pub mod ids;
pub mod isp;
pub mod pair;
pub mod serde_io;

pub use city::{builtin_cities, City};
pub use generator::{GeneratorConfig, TopologyGenerator, Universe};
pub use geo::GeoPoint;
pub use ids::{IcxId, IspId, LinkId, PopId};
pub use isp::{IspTopology, Link, Pop};
pub use pair::{Interconnection, IspPair, PairView};

/// Errors produced while constructing or validating topologies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A link references a PoP index that does not exist in the ISP.
    DanglingLink { link: usize, pop: usize },
    /// The intra-ISP graph is not connected; the payload is an unreachable PoP.
    Disconnected { pop: usize },
    /// An ISP must have at least one PoP.
    EmptyIsp,
    /// A link connects a PoP to itself.
    SelfLoop { link: usize },
    /// An interconnection references a missing PoP on one side.
    BadInterconnection { icx: usize },
    /// A serialized topology failed validation on load.
    InvalidSerialized(String),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::DanglingLink { link, pop } => {
                write!(f, "link {link} references nonexistent pop {pop}")
            }
            TopologyError::Disconnected { pop } => {
                write!(f, "intra-ISP graph is disconnected: pop {pop} unreachable")
            }
            TopologyError::EmptyIsp => write!(f, "ISP topology has no PoPs"),
            TopologyError::SelfLoop { link } => write!(f, "link {link} is a self-loop"),
            TopologyError::BadInterconnection { icx } => {
                write!(f, "interconnection {icx} references a nonexistent pop")
            }
            TopologyError::InvalidSerialized(msg) => {
                write!(f, "invalid serialized topology: {msg}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}
