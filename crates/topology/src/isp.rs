//! One ISP's PoP-level topology.
//!
//! A topology is an undirected weighted graph: nodes are PoPs (points of
//! presence, one per city the ISP operates in) and edges are intra-ISP
//! links. Link weights model the ISP's intradomain routing (the measured
//! dataset used inferred IGP weights; our generator uses geographic link
//! length, which the inference showed those weights to track closely).

use crate::geo::GeoPoint;
use crate::ids::{IspId, LinkId, PopId};
use crate::TopologyError;

/// A point of presence: one router-level aggregation point in one city.
#[derive(Debug, Clone, PartialEq)]
pub struct Pop {
    /// Name of the city hosting this PoP (matches the built-in city table
    /// for generated topologies; free-form for imported ones).
    pub city: String,
    /// Geographic location.
    pub geo: GeoPoint,
    /// Gravity-model weight (population of the city in millions). Flows to
    /// and from this PoP are sized proportionally to this weight.
    pub weight: f64,
}

serde::impl_json_struct!(Pop { city, geo, weight });

/// An undirected intra-ISP link between two PoPs.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// One endpoint.
    pub a: PopId,
    /// The other endpoint.
    pub b: PopId,
    /// Routing weight used by shortest-path computation (IGP metric).
    pub weight: f64,
    /// Physical length in kilometres (geographic distance between the
    /// endpoint PoPs); used by the distance metric.
    pub length_km: f64,
}

impl Link {
    /// The endpoint opposite `pop`, or `None` if `pop` is not an endpoint.
    pub fn opposite(&self, pop: PopId) -> Option<PopId> {
        if pop == self.a {
            Some(self.b)
        } else if pop == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

serde::impl_json_struct!(Link {
    a,
    b,
    weight,
    length_km
});

/// A complete PoP-level ISP topology.
#[derive(Debug, Clone, PartialEq)]
pub struct IspTopology {
    /// Identifier within the universe this ISP belongs to.
    pub id: IspId,
    /// Human-readable name (e.g. `"isp-07"` or an AS name for imports).
    pub name: String,
    /// All PoPs. A [`PopId`] indexes this vector.
    pub pops: Vec<Pop>,
    /// All links. A [`LinkId`] indexes this vector.
    pub links: Vec<Link>,
    /// `true` when the measured topology was a logical mesh whose
    /// geographic distances are not meaningful. The paper excludes eight
    /// such ISPs from the distance experiments; the generator reproduces a
    /// matching fraction of mesh ISPs.
    pub is_mesh: bool,
    /// Adjacency index: for each PoP, the ids of its incident links.
    /// Rebuilt on construction and after deserialization; not serialized.
    adjacency: Vec<Vec<LinkId>>,
}

serde::impl_json_struct!(IspTopology { id, name, pops, links, is_mesh } skip { adjacency });

impl IspTopology {
    /// Build a topology and its adjacency index, validating structure.
    ///
    /// Validation rejects empty ISPs, dangling link endpoints, self-loops,
    /// and disconnected graphs (every PoP must reach every other PoP, or
    /// intradomain routing would be partial).
    pub fn new(
        id: IspId,
        name: impl Into<String>,
        pops: Vec<Pop>,
        links: Vec<Link>,
        is_mesh: bool,
    ) -> Result<Self, TopologyError> {
        if pops.is_empty() {
            return Err(TopologyError::EmptyIsp);
        }
        for (i, l) in links.iter().enumerate() {
            if l.a.index() >= pops.len() {
                return Err(TopologyError::DanglingLink {
                    link: i,
                    pop: l.a.index(),
                });
            }
            if l.b.index() >= pops.len() {
                return Err(TopologyError::DanglingLink {
                    link: i,
                    pop: l.b.index(),
                });
            }
            if l.a == l.b {
                return Err(TopologyError::SelfLoop { link: i });
            }
        }
        let mut topo = Self {
            id,
            name: name.into(),
            pops,
            links,
            is_mesh,
            adjacency: Vec::new(),
        };
        topo.rebuild_adjacency();
        topo.check_connected()?;
        Ok(topo)
    }

    /// Rebuild the adjacency index from `links`. Must be called after
    /// deserialization (serde skips the index) or any manual link edit.
    pub fn rebuild_adjacency(&mut self) {
        let mut adj = vec![Vec::new(); self.pops.len()];
        for (i, l) in self.links.iter().enumerate() {
            adj[l.a.index()].push(LinkId::new(i));
            adj[l.b.index()].push(LinkId::new(i));
        }
        self.adjacency = adj;
    }

    fn check_connected(&self) -> Result<(), TopologyError> {
        let n = self.pops.len();
        let mut seen = vec![false; n];
        let mut stack = vec![PopId::new(0)];
        seen[0] = true;
        while let Some(p) = stack.pop() {
            for &lid in self.incident_links(p) {
                let link = &self.links[lid.index()];
                let q = link.opposite(p).expect("adjacency index corrupt");
                if !seen[q.index()] {
                    seen[q.index()] = true;
                    stack.push(q);
                }
            }
        }
        match seen.iter().position(|s| !s) {
            Some(pop) => Err(TopologyError::Disconnected { pop }),
            None => Ok(()),
        }
    }

    /// Number of PoPs.
    #[inline]
    pub fn num_pops(&self) -> usize {
        self.pops.len()
    }

    /// Number of links.
    #[inline]
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Iterator over `(PopId, &Pop)`.
    pub fn pops(&self) -> impl Iterator<Item = (PopId, &Pop)> {
        self.pops
            .iter()
            .enumerate()
            .map(|(i, p)| (PopId::new(i), p))
    }

    /// Iterator over `(LinkId, &Link)`.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkId::new(i), l))
    }

    /// The pop with the given id. Panics on out-of-range id (ids are only
    /// minted by this crate, so an out-of-range id is a logic error).
    #[inline]
    pub fn pop(&self, id: PopId) -> &Pop {
        &self.pops[id.index()]
    }

    /// The link with the given id.
    #[inline]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Ids of the links incident to `pop`.
    #[inline]
    pub fn incident_links(&self, pop: PopId) -> &[LinkId] {
        &self.adjacency[pop.index()]
    }

    /// The PoP located in `city`, if any. Generated topologies have at most
    /// one PoP per city.
    pub fn pop_in_city(&self, city: &str) -> Option<PopId> {
        self.pops
            .iter()
            .position(|p| p.city == city)
            .map(PopId::new)
    }

    /// Find an existing link between two PoPs (either direction).
    pub fn link_between(&self, a: PopId, b: PopId) -> Option<LinkId> {
        self.incident_links(a)
            .iter()
            .copied()
            .find(|&lid| self.links[lid.index()].opposite(a) == Some(b))
    }

    /// Total geographic length of all links, in kilometres.
    pub fn total_link_length_km(&self) -> f64 {
        self.links.iter().map(|l| l.length_km).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn tiny_topology() -> IspTopology {
        // Triangle: 0 -- 1 -- 2 -- 0
        let pops = vec![
            Pop {
                city: "a".into(),
                geo: GeoPoint::new(0.0, 0.0),
                weight: 1.0,
            },
            Pop {
                city: "b".into(),
                geo: GeoPoint::new(0.0, 1.0),
                weight: 2.0,
            },
            Pop {
                city: "c".into(),
                geo: GeoPoint::new(1.0, 0.0),
                weight: 3.0,
            },
        ];
        let links = vec![
            Link {
                a: PopId(0),
                b: PopId(1),
                weight: 1.0,
                length_km: 111.0,
            },
            Link {
                a: PopId(1),
                b: PopId(2),
                weight: 1.0,
                length_km: 157.0,
            },
            Link {
                a: PopId(2),
                b: PopId(0),
                weight: 1.0,
                length_km: 111.0,
            },
        ];
        IspTopology::new(IspId(0), "tiny", pops, links, false).unwrap()
    }

    #[test]
    fn construct_valid() {
        let t = tiny_topology();
        assert_eq!(t.num_pops(), 3);
        assert_eq!(t.num_links(), 3);
        assert_eq!(t.incident_links(PopId(0)).len(), 2);
    }

    #[test]
    fn rejects_empty() {
        let err = IspTopology::new(IspId(0), "e", vec![], vec![], false).unwrap_err();
        assert_eq!(err, TopologyError::EmptyIsp);
    }

    #[test]
    fn rejects_dangling_link() {
        let pops = vec![Pop {
            city: "a".into(),
            geo: GeoPoint::new(0.0, 0.0),
            weight: 1.0,
        }];
        let links = vec![Link {
            a: PopId(0),
            b: PopId(5),
            weight: 1.0,
            length_km: 1.0,
        }];
        let err = IspTopology::new(IspId(0), "d", pops, links, false).unwrap_err();
        assert!(matches!(err, TopologyError::DanglingLink { pop: 5, .. }));
    }

    #[test]
    fn rejects_self_loop() {
        let pops = vec![
            Pop {
                city: "a".into(),
                geo: GeoPoint::new(0.0, 0.0),
                weight: 1.0,
            },
            Pop {
                city: "b".into(),
                geo: GeoPoint::new(0.0, 1.0),
                weight: 1.0,
            },
        ];
        let links = vec![
            Link {
                a: PopId(0),
                b: PopId(0),
                weight: 1.0,
                length_km: 1.0,
            },
            Link {
                a: PopId(0),
                b: PopId(1),
                weight: 1.0,
                length_km: 1.0,
            },
        ];
        let err = IspTopology::new(IspId(0), "s", pops, links, false).unwrap_err();
        assert!(matches!(err, TopologyError::SelfLoop { link: 0 }));
    }

    #[test]
    fn rejects_disconnected() {
        let pops = vec![
            Pop {
                city: "a".into(),
                geo: GeoPoint::new(0.0, 0.0),
                weight: 1.0,
            },
            Pop {
                city: "b".into(),
                geo: GeoPoint::new(0.0, 1.0),
                weight: 1.0,
            },
            Pop {
                city: "c".into(),
                geo: GeoPoint::new(1.0, 1.0),
                weight: 1.0,
            },
        ];
        let links = vec![Link {
            a: PopId(0),
            b: PopId(1),
            weight: 1.0,
            length_km: 1.0,
        }];
        let err = IspTopology::new(IspId(0), "dis", pops, links, false).unwrap_err();
        assert_eq!(err, TopologyError::Disconnected { pop: 2 });
    }

    #[test]
    fn link_opposite() {
        let t = tiny_topology();
        let l = t.link(LinkId(0));
        assert_eq!(l.opposite(PopId(0)), Some(PopId(1)));
        assert_eq!(l.opposite(PopId(1)), Some(PopId(0)));
        assert_eq!(l.opposite(PopId(2)), None);
    }

    #[test]
    fn pop_in_city_lookup() {
        let t = tiny_topology();
        assert_eq!(t.pop_in_city("b"), Some(PopId(1)));
        assert_eq!(t.pop_in_city("zzz"), None);
    }

    #[test]
    fn link_between_lookup() {
        let t = tiny_topology();
        assert_eq!(t.link_between(PopId(0), PopId(2)), Some(LinkId(2)));
        assert_eq!(t.link_between(PopId(2), PopId(0)), Some(LinkId(2)));
    }

    #[test]
    fn total_length() {
        let t = tiny_topology();
        assert!((t.total_link_length_km() - 379.0).abs() < 1e-9);
    }
}
