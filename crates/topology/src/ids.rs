//! Strongly-typed index newtypes.
//!
//! Indices are plain `u32`s under the hood — topologies in this domain are
//! small (tens of PoPs, hundreds of links) — but mixing up a PoP index with
//! a link index is an easy and painful bug, so each index space gets its own
//! newtype. All ids are *local*: a [`PopId`] is an index into one ISP's
//! `pops` vector, not a global identifier.

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        serde::impl_json_newtype!($name);

        impl $name {
            /// Construct from a `usize` index, panicking on overflow
            /// (topologies never approach `u32::MAX` entities).
            #[inline]
            pub fn new(index: usize) -> Self {
                debug_assert!(index <= u32::MAX as usize);
                Self(index as u32)
            }

            /// The raw index, for slice access.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", stringify!($name), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                Self::new(index)
            }
        }
    };
}

id_newtype!(
    /// Index of an ISP within a [`crate::Universe`].
    IspId
);
id_newtype!(
    /// Index of a PoP within one ISP's topology.
    PopId
);
id_newtype!(
    /// Index of a link within one ISP's topology.
    LinkId
);
id_newtype!(
    /// Index of an interconnection within one [`crate::IspPair`].
    IcxId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let p = PopId::new(42);
        assert_eq!(p.index(), 42);
        assert_eq!(p, PopId(42));
    }

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; here we just check Display tags.
        assert_eq!(PopId(1).to_string(), "PopId1");
        assert_eq!(LinkId(1).to_string(), "LinkId1");
        assert_eq!(IspId(3).to_string(), "IspId3");
        assert_eq!(IcxId(0).to_string(), "IcxId0");
    }

    #[test]
    fn from_usize() {
        let l: LinkId = 7usize.into();
        assert_eq!(l.index(), 7);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(PopId(1) < PopId(2));
        assert!(IcxId(0) < IcxId(10));
    }
}
