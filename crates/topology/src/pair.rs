//! Neighboring ISP pairs and their interconnections.
//!
//! The unit of every Nexit experiment is a *pair* of ISPs joined by one or
//! more interconnections (inter-ISP links, typically in cities where both
//! ISPs have a PoP). The pair stores only indices; the topologies
//! themselves live in the [`crate::Universe`] (or are held by the caller)
//! and are borrowed together with the pair through a [`PairView`].

use crate::ids::{IcxId, IspId, PopId};
use crate::isp::IspTopology;
use crate::TopologyError;

/// One inter-ISP link between a PoP of ISP A and a PoP of ISP B.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interconnection {
    /// PoP on the A side.
    pub pop_a: PopId,
    /// PoP on the B side.
    pub pop_b: PopId,
    /// Physical length in kilometres. Interconnections in the same city
    /// have near-zero length; the generator also supports longer private
    /// interconnects.
    pub length_km: f64,
}

serde::impl_json_struct!(Interconnection {
    pop_a,
    pop_b,
    length_km
});

/// A pair of neighboring ISPs with two or more interconnections.
#[derive(Debug, Clone, PartialEq)]
pub struct IspPair {
    /// The "A" ISP (in directed experiments, A is the upstream by default).
    pub isp_a: IspId,
    /// The "B" ISP.
    pub isp_b: IspId,
    /// All interconnections. An [`IcxId`] indexes this vector.
    pub interconnections: Vec<Interconnection>,
}

serde::impl_json_struct!(IspPair {
    isp_a,
    isp_b,
    interconnections
});

impl IspPair {
    /// Construct a pair, validating interconnection endpoints against the
    /// two topologies.
    pub fn new(
        a: &IspTopology,
        b: &IspTopology,
        interconnections: Vec<Interconnection>,
    ) -> Result<Self, TopologyError> {
        for (i, icx) in interconnections.iter().enumerate() {
            if icx.pop_a.index() >= a.num_pops() || icx.pop_b.index() >= b.num_pops() {
                return Err(TopologyError::BadInterconnection { icx: i });
            }
        }
        Ok(Self {
            isp_a: a.id,
            isp_b: b.id,
            interconnections,
        })
    }

    /// Number of interconnections.
    #[inline]
    pub fn num_interconnections(&self) -> usize {
        self.interconnections.len()
    }

    /// Iterator over `(IcxId, &Interconnection)`.
    pub fn interconnections(&self) -> impl Iterator<Item = (IcxId, &Interconnection)> {
        self.interconnections
            .iter()
            .enumerate()
            .map(|(i, x)| (IcxId::new(i), x))
    }

    /// The interconnection with the given id.
    #[inline]
    pub fn interconnection(&self, id: IcxId) -> &Interconnection {
        &self.interconnections[id.index()]
    }

    /// The pair with the remaining interconnections after `failed` is
    /// removed. Ids of surviving interconnections are *renumbered*; use the
    /// returned mapping `old -> Option<new>` when translating.
    pub fn without_interconnection(&self, failed: IcxId) -> (IspPair, Vec<Option<IcxId>>) {
        let mut survivors = Vec::with_capacity(self.interconnections.len().saturating_sub(1));
        let mut mapping = vec![None; self.interconnections.len()];
        for (id, icx) in self.interconnections() {
            if id != failed {
                mapping[id.index()] = Some(IcxId::new(survivors.len()));
                survivors.push(*icx);
            }
        }
        (
            IspPair {
                isp_a: self.isp_a,
                isp_b: self.isp_b,
                interconnections: survivors,
            },
            mapping,
        )
    }
}

/// A pair together with borrowed topologies — the form every algorithm in
/// the workspace consumes.
#[derive(Debug, Clone, Copy)]
pub struct PairView<'a> {
    /// Topology of the A-side ISP.
    pub a: &'a IspTopology,
    /// Topology of the B-side ISP.
    pub b: &'a IspTopology,
    /// The pair record (interconnections).
    pub pair: &'a IspPair,
}

impl<'a> PairView<'a> {
    /// Bundle a pair with its topologies, asserting that the ids match.
    pub fn new(a: &'a IspTopology, b: &'a IspTopology, pair: &'a IspPair) -> Self {
        assert_eq!(a.id, pair.isp_a, "pair/topology mismatch on A side");
        assert_eq!(b.id, pair.isp_b, "pair/topology mismatch on B side");
        Self { a, b, pair }
    }

    /// The view with A and B swapped and interconnection endpoints
    /// mirrored. Directed experiments run each direction through the same
    /// code by flipping the view.
    pub fn reversed(&self, scratch: &'a mut Option<IspPair>) -> PairView<'a> {
        let rev = IspPair {
            isp_a: self.b.id,
            isp_b: self.a.id,
            interconnections: self
                .pair
                .interconnections
                .iter()
                .map(|icx| Interconnection {
                    pop_a: icx.pop_b,
                    pop_b: icx.pop_a,
                    length_km: icx.length_km,
                })
                .collect(),
        };
        *scratch = Some(rev);
        PairView {
            a: self.b,
            b: self.a,
            pair: scratch.as_ref().unwrap(),
        }
    }

    /// Number of interconnections.
    #[inline]
    pub fn num_interconnections(&self) -> usize {
        self.pair.num_interconnections()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::GeoPoint;
    use crate::isp::{Link, Pop};

    fn line_topology(id: u32, n: usize) -> IspTopology {
        let pops = (0..n)
            .map(|i| Pop {
                city: format!("c{i}"),
                geo: GeoPoint::new(0.0, i as f64),
                weight: 1.0,
            })
            .collect();
        let links = (0..n - 1)
            .map(|i| Link {
                a: PopId::new(i),
                b: PopId::new(i + 1),
                weight: 1.0,
                length_km: 111.0,
            })
            .collect();
        IspTopology::new(IspId(id), format!("line{id}"), pops, links, false).unwrap()
    }

    #[test]
    fn build_pair() {
        let a = line_topology(0, 3);
        let b = line_topology(1, 3);
        let pair = IspPair::new(
            &a,
            &b,
            vec![
                Interconnection {
                    pop_a: PopId(0),
                    pop_b: PopId(0),
                    length_km: 0.0,
                },
                Interconnection {
                    pop_a: PopId(2),
                    pop_b: PopId(2),
                    length_km: 0.0,
                },
            ],
        )
        .unwrap();
        assert_eq!(pair.num_interconnections(), 2);
    }

    #[test]
    fn rejects_bad_interconnection() {
        let a = line_topology(0, 3);
        let b = line_topology(1, 3);
        let err = IspPair::new(
            &a,
            &b,
            vec![Interconnection {
                pop_a: PopId(0),
                pop_b: PopId(9),
                length_km: 0.0,
            }],
        )
        .unwrap_err();
        assert_eq!(err, TopologyError::BadInterconnection { icx: 0 });
    }

    #[test]
    fn remove_interconnection_renumbers() {
        let a = line_topology(0, 4);
        let b = line_topology(1, 4);
        let pair = IspPair::new(
            &a,
            &b,
            (0..3)
                .map(|i| Interconnection {
                    pop_a: PopId(i),
                    pop_b: PopId(i),
                    length_km: 0.0,
                })
                .collect(),
        )
        .unwrap();
        let (smaller, mapping) = pair.without_interconnection(IcxId(1));
        assert_eq!(smaller.num_interconnections(), 2);
        assert_eq!(mapping, vec![Some(IcxId(0)), None, Some(IcxId(1))]);
        assert_eq!(smaller.interconnection(IcxId(1)).pop_a, PopId(2));
    }

    #[test]
    fn reversed_view_swaps_sides() {
        let a = line_topology(0, 3);
        let b = line_topology(1, 4);
        let pair = IspPair::new(
            &a,
            &b,
            vec![Interconnection {
                pop_a: PopId(1),
                pop_b: PopId(3),
                length_km: 5.0,
            }],
        )
        .unwrap();
        let view = PairView::new(&a, &b, &pair);
        let mut scratch = None;
        let rev = view.reversed(&mut scratch);
        assert_eq!(rev.a.id, IspId(1));
        assert_eq!(rev.b.id, IspId(0));
        assert_eq!(rev.pair.interconnection(IcxId(0)).pop_a, PopId(3));
        assert_eq!(rev.pair.interconnection(IcxId(0)).pop_b, PopId(1));
    }

    #[test]
    #[should_panic(expected = "pair/topology mismatch")]
    fn view_rejects_mismatched_ids() {
        let a = line_topology(0, 3);
        let b = line_topology(1, 3);
        let c = line_topology(2, 3);
        let pair = IspPair::new(&a, &b, vec![]).unwrap();
        let _ = PairView::new(&a, &c, &pair);
    }
}
