//! Built-in table of world cities with coordinates and populations.
//!
//! The paper weights PoPs by city population (a CIESIN 50×50-square-mile
//! grid estimate) to drive its gravity-model traffic matrices. We substitute
//! a built-in table of major world cities with approximate metro-area
//! populations. Only *relative* weights matter for the gravity model, and
//! the table reproduces the two properties the paper relies on: a skewed
//! (heavy-tailed) population distribution, and realistic geographic spread
//! across the regions where measured ISPs had PoPs.

use crate::geo::GeoPoint;

/// A city that can host a PoP.
#[derive(Debug, Clone, PartialEq)]
pub struct City {
    /// Human-readable city name (unique within the built-in table).
    pub name: String,
    /// Geographic location of the city center.
    pub geo: GeoPoint,
    /// Approximate metro population, in millions.
    pub population_millions: f64,
    /// Coarse continental region, used by the generator to give each
    /// synthetic ISP a realistic geographic footprint.
    pub region: Region,
}

serde::impl_json_struct!(City {
    name,
    geo,
    population_millions,
    region
});

/// Coarse continental regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    NorthAmerica,
    Europe,
    Asia,
    SouthAmerica,
    Oceania,
}

serde::impl_json_enum!(Region {
    NorthAmerica,
    Europe,
    Asia,
    SouthAmerica,
    Oceania
});

impl Region {
    /// All regions, in a fixed order used for deterministic sampling.
    pub const ALL: [Region; 5] = [
        Region::NorthAmerica,
        Region::Europe,
        Region::Asia,
        Region::SouthAmerica,
        Region::Oceania,
    ];
}

macro_rules! city {
    ($name:literal, $lat:expr, $lon:expr, $pop:expr, $region:ident) => {
        City {
            name: String::from($name),
            geo: GeoPoint {
                lat: $lat,
                lon: $lon,
            },
            population_millions: $pop,
            region: Region::$region,
        }
    };
}

/// The built-in city table: 128 cities, heavy concentration in North
/// America and Europe (where the Rocketfuel ISPs were measured), with
/// enough Asian / South American / Oceanian cities for the tier-1 global
/// backbones. Populations are rough 2005-era metro figures in millions —
/// only relative magnitude matters.
pub fn builtin_cities() -> Vec<City> {
    vec![
        // --- North America (hub cities first; generators bias toward hubs) ---
        city!("New York", 40.7128, -74.0060, 18.8, NorthAmerica),
        city!("Los Angeles", 34.0522, -118.2437, 12.9, NorthAmerica),
        city!("Chicago", 41.8781, -87.6298, 9.4, NorthAmerica),
        city!("Washington DC", 38.9072, -77.0369, 5.3, NorthAmerica),
        city!("San Francisco", 37.7749, -122.4194, 4.2, NorthAmerica),
        city!("San Jose", 37.3382, -121.8863, 1.8, NorthAmerica),
        city!("Dallas", 32.7767, -96.7970, 5.7, NorthAmerica),
        city!("Houston", 29.7604, -95.3698, 5.2, NorthAmerica),
        city!("Atlanta", 33.7490, -84.3880, 4.9, NorthAmerica),
        city!("Miami", 25.7617, -80.1918, 5.4, NorthAmerica),
        city!("Seattle", 47.6062, -122.3321, 3.2, NorthAmerica),
        city!("Boston", 42.3601, -71.0589, 4.4, NorthAmerica),
        city!("Denver", 39.7392, -104.9903, 2.4, NorthAmerica),
        city!("Phoenix", 33.4484, -112.0740, 3.7, NorthAmerica),
        city!("Philadelphia", 39.9526, -75.1652, 5.8, NorthAmerica),
        city!("Detroit", 42.3314, -83.0458, 4.4, NorthAmerica),
        city!("Minneapolis", 44.9778, -93.2650, 3.0, NorthAmerica),
        city!("St Louis", 38.6270, -90.1994, 2.8, NorthAmerica),
        city!("Tampa", 27.9506, -82.4572, 2.4, NorthAmerica),
        city!("Portland", 45.5152, -122.6784, 2.0, NorthAmerica),
        city!("San Diego", 32.7157, -117.1611, 2.9, NorthAmerica),
        city!("Las Vegas", 36.1699, -115.1398, 1.6, NorthAmerica),
        city!("Salt Lake City", 40.7608, -111.8910, 1.0, NorthAmerica),
        city!("Kansas City", 39.0997, -94.5786, 1.9, NorthAmerica),
        city!("Austin", 30.2672, -97.7431, 1.3, NorthAmerica),
        city!("San Antonio", 29.4241, -98.4936, 1.7, NorthAmerica),
        city!("Orlando", 28.5383, -81.3792, 1.8, NorthAmerica),
        city!("Charlotte", 35.2271, -80.8431, 1.5, NorthAmerica),
        city!("Pittsburgh", 40.4406, -79.9959, 2.4, NorthAmerica),
        city!("Cleveland", 41.4993, -81.6944, 2.1, NorthAmerica),
        city!("Cincinnati", 39.1031, -84.5120, 2.0, NorthAmerica),
        city!("Columbus", 39.9612, -82.9988, 1.7, NorthAmerica),
        city!("Indianapolis", 39.7684, -86.1581, 1.6, NorthAmerica),
        city!("Nashville", 36.1627, -86.7816, 1.4, NorthAmerica),
        city!("Raleigh", 35.7796, -78.6382, 1.0, NorthAmerica),
        city!("Richmond", 37.5407, -77.4360, 1.1, NorthAmerica),
        city!("New Orleans", 29.9511, -90.0715, 1.3, NorthAmerica),
        city!("Memphis", 35.1495, -90.0490, 1.2, NorthAmerica),
        city!("Oklahoma City", 35.4676, -97.5164, 1.1, NorthAmerica),
        city!("Albuquerque", 35.0844, -106.6504, 0.8, NorthAmerica),
        city!("Tucson", 32.2226, -110.9747, 0.9, NorthAmerica),
        city!("Sacramento", 38.5816, -121.4944, 2.0, NorthAmerica),
        city!("Fresno", 36.7378, -119.7871, 0.9, NorthAmerica),
        city!("Spokane", 47.6588, -117.4260, 0.5, NorthAmerica),
        city!("Boise", 43.6150, -116.2023, 0.5, NorthAmerica),
        city!("Omaha", 41.2565, -95.9345, 0.8, NorthAmerica),
        city!("Des Moines", 41.5868, -93.6250, 0.6, NorthAmerica),
        city!("Milwaukee", 43.0389, -87.9065, 1.6, NorthAmerica),
        city!("Buffalo", 42.8864, -78.8784, 1.2, NorthAmerica),
        city!("Rochester", 43.1566, -77.6088, 1.1, NorthAmerica),
        city!("Albany", 42.6526, -73.7562, 0.9, NorthAmerica),
        city!("Hartford", 41.7658, -72.6734, 1.2, NorthAmerica),
        city!("Jacksonville", 30.3322, -81.6557, 1.2, NorthAmerica),
        city!("Toronto", 43.6532, -79.3832, 5.1, NorthAmerica),
        city!("Montreal", 45.5017, -73.5673, 3.6, NorthAmerica),
        city!("Vancouver", 49.2827, -123.1207, 2.1, NorthAmerica),
        city!("Calgary", 51.0447, -114.0719, 1.1, NorthAmerica),
        city!("Ottawa", 45.4215, -75.6972, 1.1, NorthAmerica),
        city!("Mexico City", 19.4326, -99.1332, 18.5, NorthAmerica),
        // --- Europe ---
        city!("London", 51.5074, -0.1278, 12.0, Europe),
        city!("Paris", 48.8566, 2.3522, 11.0, Europe),
        city!("Frankfurt", 50.1109, 8.6821, 2.6, Europe),
        city!("Amsterdam", 52.3676, 4.9041, 2.4, Europe),
        city!("Brussels", 50.8503, 4.3517, 1.9, Europe),
        city!("Madrid", 40.4168, -3.7038, 5.8, Europe),
        city!("Barcelona", 41.3851, 2.1734, 4.7, Europe),
        city!("Milan", 45.4642, 9.1900, 4.1, Europe),
        city!("Rome", 41.9028, 12.4964, 3.8, Europe),
        city!("Berlin", 52.5200, 13.4050, 4.2, Europe),
        city!("Munich", 48.1351, 11.5820, 2.6, Europe),
        city!("Hamburg", 53.5511, 9.9937, 3.1, Europe),
        city!("Dusseldorf", 51.2277, 6.7735, 1.5, Europe),
        city!("Vienna", 48.2082, 16.3738, 2.2, Europe),
        city!("Zurich", 47.3769, 8.5417, 1.3, Europe),
        city!("Geneva", 46.2044, 6.1432, 0.9, Europe),
        city!("Stockholm", 59.3293, 18.0686, 1.9, Europe),
        city!("Copenhagen", 55.6761, 12.5683, 1.9, Europe),
        city!("Oslo", 59.9139, 10.7522, 1.0, Europe),
        city!("Helsinki", 60.1699, 24.9384, 1.2, Europe),
        city!("Dublin", 53.3498, -6.2603, 1.6, Europe),
        city!("Manchester", 53.4808, -2.2426, 2.6, Europe),
        city!("Birmingham", 52.4862, -1.8904, 2.5, Europe),
        city!("Edinburgh", 55.9533, -3.1883, 0.9, Europe),
        city!("Lisbon", 38.7223, -9.1393, 2.8, Europe),
        city!("Warsaw", 52.2297, 21.0122, 2.9, Europe),
        city!("Prague", 50.0755, 14.4378, 1.9, Europe),
        city!("Budapest", 47.4979, 19.0402, 2.5, Europe),
        city!("Athens", 37.9838, 23.7275, 3.6, Europe),
        city!("Lyon", 45.7640, 4.8357, 1.7, Europe),
        city!("Marseille", 43.2965, 5.3698, 1.6, Europe),
        city!("Luxembourg", 49.6116, 6.1319, 0.4, Europe),
        city!("Moscow", 55.7558, 37.6173, 14.8, Europe),
        // --- Asia ---
        city!("Tokyo", 35.6762, 139.6503, 34.5, Asia),
        city!("Osaka", 34.6937, 135.5023, 18.6, Asia),
        city!("Seoul", 37.5665, 126.9780, 22.6, Asia),
        city!("Hong Kong", 22.3193, 114.1694, 6.9, Asia),
        city!("Singapore", 1.3521, 103.8198, 4.2, Asia),
        city!("Taipei", 25.0330, 121.5654, 6.5, Asia),
        city!("Shanghai", 31.2304, 121.4737, 14.5, Asia),
        city!("Beijing", 39.9042, 116.4074, 12.4, Asia),
        city!("Mumbai", 19.0760, 72.8777, 17.7, Asia),
        city!("Delhi", 28.7041, 77.1025, 15.7, Asia),
        city!("Bangalore", 12.9716, 77.5946, 6.1, Asia),
        city!("Bangkok", 13.7563, 100.5018, 6.6, Asia),
        city!("Kuala Lumpur", 3.1390, 101.6869, 4.4, Asia),
        city!("Jakarta", -6.2088, 106.8456, 13.2, Asia),
        city!("Manila", 14.5995, 120.9842, 10.7, Asia),
        city!("Tel Aviv", 32.0853, 34.7818, 2.9, Asia),
        city!("Dubai", 25.2048, 55.2708, 1.3, Asia),
        city!("Istanbul", 41.0082, 28.9784, 9.7, Asia),
        // --- South America ---
        city!("Sao Paulo", -23.5505, -46.6333, 17.7, SouthAmerica),
        city!("Rio de Janeiro", -22.9068, -43.1729, 11.0, SouthAmerica),
        city!("Buenos Aires", -34.6037, -58.3816, 13.0, SouthAmerica),
        city!("Santiago", -33.4489, -70.6693, 5.4, SouthAmerica),
        city!("Lima", -12.0464, -77.0428, 7.7, SouthAmerica),
        city!("Bogota", 4.7110, -74.0721, 7.0, SouthAmerica),
        city!("Caracas", 10.4806, -66.9036, 3.2, SouthAmerica),
        // --- Oceania ---
        city!("Sydney", -33.8688, 151.2093, 4.2, Oceania),
        city!("Melbourne", -37.8136, 144.9631, 3.6, Oceania),
        city!("Brisbane", -27.4698, 153.0251, 1.8, Oceania),
        city!("Perth", -31.9505, 115.8605, 1.4, Oceania),
        city!("Auckland", -36.8485, 174.7633, 1.2, Oceania),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_nonempty_and_unique() {
        let cities = builtin_cities();
        assert!(
            cities.len() >= 100,
            "expected >=100 cities, got {}",
            cities.len()
        );
        let mut names: Vec<&str> = cities.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate city names in table");
    }

    #[test]
    fn coordinates_in_range() {
        for c in builtin_cities() {
            assert!((-90.0..=90.0).contains(&c.geo.lat), "{}", c.name);
            assert!((-180.0..=180.0).contains(&c.geo.lon), "{}", c.name);
            assert!(c.population_millions > 0.0, "{}", c.name);
        }
    }

    #[test]
    fn populations_are_heavy_tailed() {
        // The gravity model depends on skew: the biggest city should be
        // much larger than the median city.
        let mut pops: Vec<f64> = builtin_cities()
            .iter()
            .map(|c| c.population_millions)
            .collect();
        pops.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = pops[pops.len() / 2];
        let max = *pops.last().unwrap();
        assert!(
            max / median > 5.0,
            "population distribution not skewed: max={max} median={median}"
        );
    }

    #[test]
    fn every_region_represented() {
        let cities = builtin_cities();
        for region in Region::ALL {
            assert!(
                cities.iter().any(|c| c.region == region),
                "no city in {region:?}"
            );
        }
    }

    #[test]
    fn north_america_dominates() {
        // Rocketfuel ISPs were mostly North American; the generator relies
        // on NA having the deepest city pool.
        let cities = builtin_cities();
        let na = cities
            .iter()
            .filter(|c| c.region == Region::NorthAmerica)
            .count();
        assert!(na >= 40, "NA city pool too small: {na}");
    }
}
