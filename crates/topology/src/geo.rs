//! Geographic coordinates and great-circle distance.
//!
//! The paper estimates link length "using the geographical distance between
//! its endpoints" (citing Padmanabhan & Subramanian's geographic mapping
//! work), so distance in kilometres between PoPs is the fundamental length
//! unit of the whole reproduction.

/// Mean Earth radius in kilometres (IUGG value).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A WGS-84 latitude/longitude point, in degrees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north, in `[-90, 90]`.
    pub lat: f64,
    /// Longitude in degrees, positive east, in `[-180, 180]`.
    pub lon: f64,
}

serde::impl_json_struct!(GeoPoint { lat, lon });

impl GeoPoint {
    /// Create a new point. Debug-asserts the coordinate ranges.
    pub fn new(lat: f64, lon: f64) -> Self {
        debug_assert!(
            (-90.0..=90.0).contains(&lat),
            "latitude out of range: {lat}"
        );
        debug_assert!(
            (-180.0..=180.0).contains(&lon),
            "longitude out of range: {lon}"
        );
        Self { lat, lon }
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    ///
    /// Haversine is numerically stable for the short-to-continental
    /// distances that occur between PoPs, and symmetric:
    /// `a.distance_km(b) == b.distance_km(a)`.
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().min(1.0).asin()
    }

    /// Midpoint along the great circle between two points.
    ///
    /// Used by the generator to place synthetic PoPs "between" cities.
    pub fn midpoint(&self, other: &GeoPoint) -> GeoPoint {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let bx = lat2.cos() * (lon2 - lon1).cos();
        let by = lat2.cos() * (lon2 - lon1).sin();
        let lat3 = (lat1.sin() + lat2.sin()).atan2(((lat1.cos() + bx).powi(2) + by.powi(2)).sqrt());
        let lon3 = lon1 + by.atan2(lat1.cos() + bx);
        GeoPoint::new(lat3.to_degrees(), normalize_lon(lon3.to_degrees()))
    }
}

/// Normalize a longitude into `[-180, 180]`.
fn normalize_lon(mut lon: f64) -> f64 {
    while lon > 180.0 {
        lon -= 360.0;
    }
    while lon < -180.0 {
        lon += 360.0;
    }
    lon
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nyc() -> GeoPoint {
        GeoPoint::new(40.7128, -74.0060)
    }
    fn london() -> GeoPoint {
        GeoPoint::new(51.5074, -0.1278)
    }
    fn seattle() -> GeoPoint {
        GeoPoint::new(47.6062, -122.3321)
    }

    #[test]
    fn zero_distance_to_self() {
        let p = nyc();
        assert!(p.distance_km(&p) < 1e-9);
    }

    #[test]
    fn known_distance_nyc_london() {
        // Commonly quoted great-circle distance: ~5570 km.
        let d = nyc().distance_km(&london());
        assert!((d - 5570.0).abs() < 30.0, "got {d}");
    }

    #[test]
    fn known_distance_nyc_seattle() {
        // ~3870-3880 km.
        let d = nyc().distance_km(&seattle());
        assert!((d - 3875.0).abs() < 40.0, "got {d}");
    }

    #[test]
    fn distance_is_symmetric() {
        let (a, b) = (nyc(), seattle());
        assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-9);
    }

    #[test]
    fn midpoint_is_equidistant() {
        let (a, b) = (nyc(), london());
        let m = a.midpoint(&b);
        let da = a.distance_km(&m);
        let db = b.distance_km(&m);
        assert!((da - db).abs() < 1.0, "da={da} db={db}");
        // and roughly half the direct distance
        assert!((da - a.distance_km(&b) / 2.0).abs() < 1.0);
    }

    #[test]
    fn normalize_lon_wraps() {
        assert!((normalize_lon(190.0) - (-170.0)).abs() < 1e-9);
        assert!((normalize_lon(-190.0) - 170.0).abs() < 1e-9);
        assert!((normalize_lon(0.0)).abs() < 1e-9);
    }

    #[test]
    fn triangle_inequality_sample() {
        let (a, b, c) = (nyc(), london(), seattle());
        assert!(a.distance_km(&b) <= a.distance_km(&c) + c.distance_km(&b) + 1e-6);
    }
}
