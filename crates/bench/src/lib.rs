pub fn noop() {}
