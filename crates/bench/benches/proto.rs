//! Wire-protocol benchmarks: codec throughput and full-session cost.

use criterion::{criterion_group, criterion_main, Criterion};
use nexit_core::{DisclosurePolicy, GainTable, NexitConfig, PreferenceMapper, SessionInput, Side};
use nexit_proto::{run_session, Agent, FaultyLink, Message};
use nexit_routing::{Assignment, FlowId};
use nexit_topology::IcxId;

struct Flat(usize);
impl PreferenceMapper for Flat {
    fn gains(&mut self, _i: &SessionInput, _c: &Assignment, out: &mut GainTable) {
        for f in 0..self.0 {
            for (a, cell) in out.row_mut(f).iter_mut().enumerate() {
                *cell = ((f + a) % 7) as f64 - 3.0;
            }
        }
    }
}

fn bench_proto(c: &mut Criterion) {
    c.bench_function("preflist_codec_roundtrip_500x4", |b| {
        let msg = Message::PrefList {
            prefs: (0..500)
                .map(|f| (0..4).map(|a| ((f * a) % 21) as i16 - 10).collect())
                .collect(),
        };
        b.iter(|| {
            let wire = msg.encode();
            let mut codec = nexit_proto::FrameCodec::new();
            codec.feed(&wire);
            let frame = codec.next_frame().unwrap().unwrap();
            Message::decode(&frame).unwrap()
        });
    });

    let mut g = c.benchmark_group("session");
    g.sample_size(20);
    g.bench_function("full_session_200_flows", |b| {
        let n = 200;
        let input = SessionInput {
            flow_ids: (0..n).map(FlowId::new).collect(),
            defaults: vec![IcxId(0); n],
            volumes: vec![1.0; n],
            num_alternatives: 4,
        };
        let default = Assignment::uniform(n, IcxId(0));
        let config = NexitConfig::win_win();
        b.iter(|| {
            let mut a = Agent::new(
                Side::A,
                "A",
                input.clone(),
                default.clone(),
                Flat(n),
                DisclosurePolicy::Truthful,
                config,
            )
            .unwrap();
            let mut bb = Agent::new(
                Side::B,
                "B",
                input.clone(),
                default.clone(),
                Flat(n),
                DisclosurePolicy::Truthful,
                config,
            )
            .unwrap();
            let mut ab = FaultyLink::reliable();
            let mut ba = FaultyLink::reliable();
            run_session(&mut a, &mut bb, &mut ab, &mut ba).unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_proto);
criterion_main!(benches);
