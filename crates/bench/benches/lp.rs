//! Simplex solver benchmarks on min-max-ratio programs shaped like the
//! bandwidth optimum.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nexit_lp::{solve, ConstraintOp, LpProblem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build a min-max load-ratio LP: `flows` flows split over `k` choices,
/// `links` capacity rows with random coefficients.
fn min_max_problem(flows: usize, k: usize, links: usize, seed: u64) -> LpProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = LpProblem::new();
    let t = p.add_variable(1.0);
    let x = |f: usize, i: usize| 1 + f * k + i;
    for _ in 0..flows * k {
        p.add_variable(0.0);
    }
    for f in 0..flows {
        p.add_constraint(
            (0..k).map(|i| (x(f, i), 1.0)).collect(),
            ConstraintOp::Eq,
            1.0,
        );
    }
    for _ in 0..links {
        let mut row: Vec<(usize, f64)> = Vec::new();
        for f in 0..flows {
            for i in 0..k {
                if rng.gen_bool(0.3) {
                    row.push((x(f, i), rng.gen_range(0.1..2.0)));
                }
            }
        }
        if row.is_empty() {
            continue;
        }
        row.push((t, -rng.gen_range(1.0..10.0)));
        p.add_constraint(row, ConstraintOp::Le, 0.0);
    }
    p
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex");
    group.sample_size(10);
    for &(flows, links) in &[(20usize, 20usize), (60, 40), (120, 80)] {
        group.bench_with_input(
            BenchmarkId::new("min_max", format!("{flows}f_{links}l")),
            &(flows, links),
            |bencher, &(flows, links)| {
                let p = min_max_problem(flows, 3, links, 7);
                bencher.iter(|| solve(&p));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lp);
criterion_main!(benches);
