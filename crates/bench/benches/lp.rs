//! Simplex solver benchmarks on min-max-ratio programs shaped like the
//! bandwidth optimum, cold and warm-started.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nexit_lp::{solve, ConstraintOp, LpProblem, SimplexWorkspace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build a min-max load-ratio LP: `flows` flows split over `k` choices,
/// `links` capacity rows with random coefficients.
fn min_max_problem(flows: usize, k: usize, links: usize, seed: u64) -> LpProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = LpProblem::new();
    let t = p.add_variable(1.0);
    let x = |f: usize, i: usize| 1 + f * k + i;
    for _ in 0..flows * k {
        p.add_variable(0.0);
    }
    for f in 0..flows {
        p.add_constraint(
            (0..k).map(|i| (x(f, i), 1.0)).collect(),
            ConstraintOp::Eq,
            1.0,
        );
    }
    for _ in 0..links {
        let mut row: Vec<(usize, f64)> = Vec::new();
        for f in 0..flows {
            for i in 0..k {
                if rng.gen_bool(0.3) {
                    row.push((x(f, i), rng.gen_range(0.1..2.0)));
                }
            }
        }
        if row.is_empty() {
            continue;
        }
        row.push((t, -rng.gen_range(1.0..10.0)));
        p.add_constraint(row, ConstraintOp::Le, 0.0);
    }
    p
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex");
    group.sample_size(10);
    for &(flows, links) in &[(20usize, 20usize), (60, 40), (120, 80)] {
        group.bench_with_input(
            BenchmarkId::new("min_max", format!("{flows}f_{links}l")),
            &(flows, links),
            |bencher, &(flows, links)| {
                let p = min_max_problem(flows, 3, links, 7);
                bencher.iter(|| solve(&p));
            },
        );
    }
    // Warm restarts: one solved program, then a run of rhs-only patches
    // (the failure-sweep access pattern). Each iteration re-solves 8
    // perturbed programs from the retained basis; compare against
    // `min_max` x8 for the cold equivalent.
    for &(flows, links) in &[(60usize, 40usize), (120, 80)] {
        group.bench_with_input(
            BenchmarkId::new("warm_rhs", format!("{flows}f_{links}l")),
            &(flows, links),
            |bencher, &(flows, links)| {
                let mut p = min_max_problem(flows, 3, links, 7);
                let rows = p.num_constraints();
                let mut ws = SimplexWorkspace::new();
                ws.solve(&p);
                bencher.iter(|| {
                    let mut acc = 0.0;
                    for step in 0..8u64 {
                        // Perturb a deterministic spread of capacity rows
                        // (rows past the flow-conservation block).
                        for k in 0..4 {
                            let row = flows + ((step as usize * 7 + k * 13) % (rows - flows));
                            let rhs = p.rhs(row);
                            p.set_rhs(row, rhs - 0.01 * ((step + 1) as f64));
                        }
                        if let nexit_lp::LpOutcome::Optimal { objective, .. } = ws.solve(&p) {
                            acc += objective;
                        }
                    }
                    acc
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lp);
criterion_main!(benches);
