//! Per-figure regeneration benchmarks: each paper figure's pipeline on a
//! smoke-scale universe, so regressions in any experiment path surface in
//! CI. The full-scale regeneration lives in the `experiments` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use nexit_sim::experiments::{ablation, bandwidth, cheating, distance, diverse, filters};
use nexit_sim::ExpConfig;
use nexit_topology::{GeneratorConfig, TopologyGenerator, Universe};

fn smoke_universe() -> Universe {
    TopologyGenerator::new(GeneratorConfig {
        num_isps: 14,
        num_mesh_isps: 2,
        ..GeneratorConfig::default()
    })
    .generate()
}

fn cfg() -> ExpConfig {
    ExpConfig {
        max_pairs: Some(4),
        max_failures_per_pair: 2,
        ..ExpConfig::smoke()
    }
}

fn bench_figures(c: &mut Criterion) {
    let u = smoke_universe();
    let cfg = cfg();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig4_fig6_distance", |b| b.iter(|| distance::run(&u, &cfg)));
    group.bench_function("fig5_filters", |b| b.iter(|| filters::run(&u, &cfg)));
    group.bench_function("fig7_fig8_bandwidth", |b| {
        b.iter(|| bandwidth::run(&u, &cfg))
    });
    group.bench_function("fig9_diverse", |b| b.iter(|| diverse::run(&u, &cfg)));
    group.bench_function("fig10_cheat_distance", |b| {
        b.iter(|| cheating::run_distance(&u, &cfg))
    });
    group.bench_function("fig11_cheat_bandwidth", |b| {
        b.iter(|| cheating::run_bandwidth(&u, &cfg))
    });
    group.bench_function("prange_sweep", |b| {
        b.iter(|| ablation::preference_range_sweep(&u, &cfg, &[1, 10]))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
