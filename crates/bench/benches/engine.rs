//! Negotiation-engine benchmarks: session cost versus flow count and
//! alternatives, with and without reassignment — plus the
//! failure-scenario LP sweep (warm vs cold), whose rows pin the
//! warm-start win in `BENCH_engine.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nexit_core::{negotiate, GainTable, NexitConfig, Party, PreferenceMapper, SessionInput};
use nexit_routing::{Assignment, FlowId};
use nexit_sim::experiments::bandwidth::PairFailureSweep;
use nexit_sim::ExpConfig;
use nexit_topology::{GeneratorConfig, IcxId, TopologyGenerator};
use nexit_workload::{assign_capacities, BackupRule, CapacityModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct RandomMapper {
    gains: GainTable,
}

impl RandomMapper {
    fn new(n: usize, k: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gains = GainTable::new(n, k);
        for f in 0..n {
            let row = gains.row_mut(f);
            for cell in row.iter_mut() {
                *cell = rng.gen_range(-100.0..100.0);
            }
            row[0] = 0.0;
        }
        Self { gains }
    }
}

impl PreferenceMapper for RandomMapper {
    /// Projects the fixed global table onto the session's flows, so the
    /// same mapper serves whole-set sessions and grouped sub-sessions.
    fn gains(&mut self, i: &SessionInput, _c: &Assignment, out: &mut GainTable) {
        for (local, f) in i.flow_ids.iter().enumerate() {
            out.row_mut(local)
                .copy_from_slice(self.gains.row(f.index()));
        }
    }
}

fn input(n: usize, k: usize) -> SessionInput {
    SessionInput {
        flow_ids: (0..n).map(FlowId::new).collect(),
        defaults: vec![IcxId(0); n],
        volumes: vec![1.0; n],
        num_alternatives: k,
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("negotiate");
    group.sample_size(20);
    for &n in &[50usize, 200, 800] {
        group.bench_with_input(BenchmarkId::new("flows", n), &n, |bencher, &n| {
            let inp = input(n, 4);
            let default = Assignment::uniform(n, IcxId(0));
            bencher.iter(|| {
                let mut a = Party::honest("A", RandomMapper::new(n, 4, 1));
                let mut b = Party::honest("B", RandomMapper::new(n, 4, 2));
                negotiate(&inp, &default, &mut a, &mut b, &NexitConfig::win_win())
            });
        });
    }
    for &k in &[2usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("alternatives", k), &k, |bencher, &k| {
            let inp = input(200, k);
            let default = Assignment::uniform(200, IcxId(0));
            bencher.iter(|| {
                let mut a = Party::honest("A", RandomMapper::new(200, k, 1));
                let mut b = Party::honest("B", RandomMapper::new(200, k, 2));
                negotiate(&inp, &default, &mut a, &mut b, &NexitConfig::win_win())
            });
        });
    }
    // Paper-scale sessions: a large ISP pair negotiating every flow.
    // These are the sessions the candidate index exists for — the
    // per-round work must stay near-constant, not O(flows × alts).
    for &(n, k) in &[(2_000usize, 8usize), (4_000, 8)] {
        group.bench_with_input(
            BenchmarkId::new("large", format!("{n}x{k}")),
            &(n, k),
            |bencher, &(n, k)| {
                let inp = input(n, k);
                let default = Assignment::uniform(n, IcxId(0));
                bencher.iter(|| {
                    let mut a = Party::honest("A", RandomMapper::new(n, k, 1));
                    let mut b = Party::honest("B", RandomMapper::new(n, k, 2));
                    negotiate(&inp, &default, &mut a, &mut b, &NexitConfig::win_win())
                });
            },
        );
    }
    // Early-termination stop projections are the other rescan hot spot:
    // every round used to re-sort all remaining flows.
    group.bench_function("large_early_stop/2000x8", |bencher| {
        let (n, k) = (2_000, 8);
        let inp = input(n, k);
        let default = Assignment::uniform(n, IcxId(0));
        let config = NexitConfig {
            stop: nexit_core::StopPolicy::Early,
            ..NexitConfig::win_win()
        };
        bencher.iter(|| {
            let mut a = Party::honest("A", RandomMapper::new(n, k, 1));
            let mut b = Party::honest("B", RandomMapper::new(n, k, 2));
            negotiate(&inp, &default, &mut a, &mut b, &config)
        });
    });
    // Reassignment is the allocation-churn hot spot the table arena
    // targets: every 5% of accepted volume the whole mapper-gains →
    // quantize → disclose chain re-runs on both sides. With flat
    // arena-backed tables the steady state of this loop allocates
    // nothing but the wire copy of each disclosed table.
    group.bench_function("reassignment_5pct", |bencher| {
        let n = 200;
        let inp = input(n, 4);
        let default = Assignment::uniform(n, IcxId(0));
        let config = NexitConfig {
            reassign_interval_frac: Some(0.05),
            ..NexitConfig::win_win()
        };
        bencher.iter(|| {
            let mut a = Party::honest("A", RandomMapper::new(n, 4, 1));
            let mut b = Party::honest("B", RandomMapper::new(n, 4, 2));
            negotiate(&inp, &default, &mut a, &mut b, &config)
        });
    });
    // Grouped negotiation: many back-to-back sessions over one shared
    // arena. Before the arena each group allocated its own tables, index
    // heaps and projection tree, making the sweep's setup
    // O(groups × group size) allocations; now the whole sweep draws from
    // one recycled buffer set.
    group.bench_function("grouped_sweep/2000x8x32", |bencher| {
        let (n, k, groups) = (2_000, 8, 32);
        let inp = input(n, k);
        let default = Assignment::uniform(n, IcxId(0));
        bencher.iter(|| {
            let mut a = Party::honest("A", RandomMapper::new(n, k, 1));
            let mut b = Party::honest("B", RandomMapper::new(n, k, 2));
            nexit_baselines::negotiate_in_groups(
                &inp,
                &default,
                &mut a,
                &mut b,
                &NexitConfig::win_win(),
                groups,
            )
        });
    });
    group.finish();
}

/// One pair, all failure scenarios, each re-solved across a ladder of
/// background-load scales (the §5.2 what-if-traffic-grows sweep): the
/// fractional-optimum LPs solved warm (per-scenario skeleton built once,
/// rhs patched per scale, basis carried over) versus cold (the identical
/// formulation with the basis invalidated before every solve). The
/// warm/cold ratio is the tentpole number the CI bench gate tracks.
fn bench_scenario_sweep(c: &mut Criterion) {
    let universe = TopologyGenerator::new(GeneratorConfig {
        num_isps: 16,
        num_mesh_isps: 1,
        seed: 11,
        ..GeneratorConfig::default()
    })
    .generate();
    let cfg = ExpConfig {
        max_failures_per_pair: 5,
        threads: 1,
        ..ExpConfig::default()
    };
    let capacity_model = CapacityModel::default();
    // Deterministically pick the eligible pair with the most scenarios
    // (ties broken by pair order) so the sweep covers several programs.
    let sweep = universe
        .eligible_pairs(3, false)
        .into_iter()
        .map(|idx| PairFailureSweep::build(&universe, idx, &cfg, &capacity_model))
        .max_by_key(|s| s.scenarios.len())
        .expect("universe yields an eligible pair");
    assert!(
        sweep.scenarios.len() >= 3,
        "sweep too small to exercise warm starts: {}",
        sweep.scenarios.len()
    );
    const GROWTH: [f64; 5] = [1.0, 1.05, 1.1, 1.2, 1.4];

    let mut group = c.benchmark_group("scenario_sweep");
    group.sample_size(10);
    group.bench_function("warm", |b| {
        b.iter(|| {
            let mut lp = sweep.lp_session(usize::MAX);
            let mut acc = 0.0;
            for s in &sweep.scenarios {
                for &scale in &GROWTH {
                    acc += lp
                        .solve_failure_scaled(s.failed, scale)
                        .expect("solvable")
                        .t;
                }
            }
            acc
        })
    });
    group.bench_function("cold", |b| {
        b.iter(|| {
            let mut lp = sweep.lp_session(usize::MAX);
            let mut acc = 0.0;
            for s in &sweep.scenarios {
                for &scale in &GROWTH {
                    lp.invalidate_warm();
                    acc += lp
                        .solve_failure_scaled(s.failed, scale)
                        .expect("solvable")
                        .t;
                }
            }
            acc
        })
    });
    group.finish();
}

/// One pair, all failure scenarios, re-solved across the capacity-model
/// grid (the §5.2 alternate-model ablation): the `-capacity`
/// coefficients of every skeleton are patched per model and re-solved
/// warm (column refresh against each scenario's retained basis
/// factorization) versus cold (the identical formulation with the basis
/// invalidated before every solve). The warm/cold ratio is this PR's
/// tentpole number in the CI bench gate — coefficient patches must
/// re-enter at >= 2x over cold.
fn bench_model_grid(c: &mut Criterion) {
    let universe = TopologyGenerator::new(GeneratorConfig {
        num_isps: 16,
        num_mesh_isps: 1,
        seed: 11,
        ..GeneratorConfig::default()
    })
    .generate();
    let cfg = ExpConfig {
        max_failures_per_pair: 5,
        threads: 1,
        ..ExpConfig::default()
    };
    let sweep = universe
        .eligible_pairs(3, false)
        .into_iter()
        .map(|idx| PairFailureSweep::build(&universe, idx, &cfg, &CapacityModel::default()))
        .max_by_key(|s| s.scenarios.len())
        .expect("universe yields an eligible pair");
    assert!(sweep.scenarios.len() >= 3, "sweep too small");
    // The ablation's capacity grid: per-model capacities assigned from
    // the shared pre-failure loads (coefficient-only patches of the one
    // skeleton per scenario).
    let models = [
        CapacityModel::default(),
        CapacityModel {
            power_of_two: true,
            ..CapacityModel::default()
        },
        CapacityModel {
            backup: BackupRule::Max,
            ..CapacityModel::default()
        },
        CapacityModel {
            backup: BackupRule::Average,
            ..CapacityModel::default()
        },
    ];
    let caps: Vec<(Vec<f64>, Vec<f64>)> = models
        .iter()
        .map(|m| {
            (
                assign_capacities(m, &sweep.pre_loads.up),
                assign_capacities(m, &sweep.pre_loads.down),
            )
        })
        .collect();

    let mut group = c.benchmark_group("model_grid");
    group.sample_size(10);
    group.bench_function("warm", |b| {
        b.iter(|| {
            let mut lp = sweep.lp_session(usize::MAX);
            let mut acc = 0.0;
            for (caps_up, caps_down) in &caps {
                for s in &sweep.scenarios {
                    acc += lp
                        .solve_with_model(s.failed, caps_up, caps_down)
                        .expect("solvable")
                        .t;
                }
            }
            acc
        })
    });
    group.bench_function("cold", |b| {
        b.iter(|| {
            let mut lp = sweep.lp_session(usize::MAX);
            let mut acc = 0.0;
            for (caps_up, caps_down) in &caps {
                for s in &sweep.scenarios {
                    lp.invalidate_warm();
                    acc += lp
                        .solve_with_model(s.failed, caps_up, caps_down)
                        .expect("solvable")
                        .t;
                }
            }
            acc
        })
    });
    group.finish();
}

/// Build a min-max load-ratio LP (the bandwidth-optimum shape): `flows`
/// flows split over `k` choices, `links` capacity rows with random
/// coefficients. Returns the capacity rows as `(row index, capacity)`
/// for the patch benches. Mirrors the `lp` bench's generator so the
/// gated rows here and the exploratory rows there describe the same
/// programs.
fn min_max_program(
    flows: usize,
    k: usize,
    links: usize,
    seed: u64,
) -> (nexit_lp::LpProblem, Vec<(usize, f64)>) {
    use nexit_lp::{ConstraintOp, LpProblem};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = LpProblem::new();
    let t = p.add_variable(1.0);
    let x = |f: usize, i: usize| 1 + f * k + i;
    for _ in 0..flows * k {
        p.add_variable(0.0);
    }
    for f in 0..flows {
        p.add_constraint(
            (0..k).map(|i| (x(f, i), 1.0)).collect(),
            ConstraintOp::Eq,
            1.0,
        );
    }
    let mut cap_rows: Vec<(usize, f64)> = Vec::new();
    for _ in 0..links {
        let mut row: Vec<(usize, f64)> = Vec::new();
        for f in 0..flows {
            for i in 0..k {
                if rng.gen_bool(0.3) {
                    row.push((x(f, i), rng.gen_range(0.1..2.0)));
                }
            }
        }
        if row.is_empty() {
            continue;
        }
        let cap = rng.gen_range(1.0..10.0);
        row.push((t, -cap));
        cap_rows.push((p.num_constraints(), cap));
        p.add_constraint(row, ConstraintOp::Le, 0.0);
    }
    (p, cap_rows)
}

/// Synthetic min-max-ratio programs, cold and warm: the gated
/// `BENCH_engine.json` rows for the simplex engine itself.
///
/// * `cold` — one full two-phase solve of the paper-scale 120-flow /
///   80-link program per iteration: the first-solve price every new
///   skeleton (broker batch, churn event, mesh hop) pays, and the row
///   the sparse-LU + devex engine is gated on (parity vs the old dense
///   tableau).
/// * `warm_rhs` — 8 runs of rhs-only patches re-entered through the
///   workspace's dual-simplex path (the failure-sweep access pattern).
/// * `warm_coeff` — 8 runs of capacity-column perturbations re-entered
///   through the column-refresh path (the model-grid access pattern).
fn bench_simplex(c: &mut Criterion) {
    use nexit_lp::SimplexWorkspace;

    let mut group = c.benchmark_group("simplex");
    group.sample_size(10);

    group.bench_function("cold", |bencher| {
        let (p, _) = min_max_program(120, 3, 80, 7);
        bencher.iter(|| match nexit_lp::solve(&p) {
            nexit_lp::LpOutcome::Optimal { objective, .. } => objective,
            other => panic!("bench program must be solvable, got {other:?}"),
        });
    });

    group.bench_function("warm_rhs", |bencher| {
        let (mut p, cap_rows) = min_max_program(120, 3, 80, 7);
        let mut ws = SimplexWorkspace::new();
        ws.solve(&p);
        bencher.iter(|| {
            let mut acc = 0.0;
            for step in 0..8u64 {
                // Tighten a deterministic spread of capacity rows
                // (rows past the flow-conservation block).
                for j in 0..4 {
                    let (row, _) = cap_rows[(step as usize * 7 + j * 13) % cap_rows.len()];
                    let rhs = p.rhs(row);
                    p.set_rhs(row, rhs - 0.01 * ((step + 1) as f64));
                }
                if let nexit_lp::LpOutcome::Optimal { objective, .. } = ws.solve(&p) {
                    acc += objective;
                }
            }
            acc
        });
    });

    group.bench_function("warm_coeff", |bencher| {
        let (mut p, cap_rows) = min_max_program(60, 3, 40, 7);
        let mut ws = SimplexWorkspace::new();
        ws.solve(&p);
        bencher.iter(|| {
            let mut acc = 0.0;
            for step in 0..8u64 {
                // Perturb a deterministic spread of capacity coefficients
                // (the t column of rows past the conservation block).
                for j in 0..4 {
                    let (row, cap) = cap_rows[(step as usize * 7 + j * 13) % cap_rows.len()];
                    let scale = 1.0 + 0.05 * ((step + j as u64) % 5) as f64;
                    p.set_coefficient(row, 0, -cap * scale);
                }
                if let nexit_lp::LpOutcome::Optimal { objective, .. } = ws.solve(&p) {
                    acc += objective;
                }
            }
            acc
        });
    });
    group.finish();
}

/// The session broker serving whole batches of wire negotiations: the
/// tentpole numbers for `nexit-broker` (sessions/sec at 1k and 10k
/// pairs). The synthetic workload is `experiments broker`'s
/// ([`nexit_sim::experiments::broker::synthetic_specs`]), so the bench
/// rows, the CLI's sessions/sec and the CI gate all describe the same
/// sessions. Worker count is fixed at 1 so the rows measure broker
/// overhead (framing, queueing, arena recycling), not host parallelism.
fn bench_broker(c: &mut Criterion) {
    use nexit_broker::{Broker, BrokerConfig, ReliableConfig};
    use nexit_proto::channel::FaultConfig;
    use nexit_sim::experiments::broker::{synthetic_specs, ALTS, FLOWS};

    let mut group = c.benchmark_group("broker");
    group.sample_size(10);
    for &(label, pairs) in &[("1k_pairs", 1_000usize), ("10k_pairs", 10_000)] {
        group.bench_function(label, |bencher| {
            let broker = Broker::new(BrokerConfig::with_workers(1));
            bencher.iter(|| {
                let run = broker.run_pairs(synthetic_specs(pairs, FLOWS, ALTS, 1));
                assert_eq!(run.stats.completed, pairs);
                run.stats.frames
            });
        });
    }
    // The 1k batch again, but over links dropping and corrupting 5% of
    // frames each (10% faulted overall) with the ARQ layer healing them:
    // the row prices retransmission + dedup overhead against the clean
    // broker/1k_pairs baseline. Degradation is on, so the batch always
    // lands (completed + degraded); at the default retry budget every
    // session in practice recovers outright.
    group.bench_function("faulty_10pct", |bencher| {
        let faults = FaultConfig {
            drop_chance: 0.05,
            corrupt_chance: 0.05,
            ..FaultConfig::RELIABLE
        };
        let config = BrokerConfig::with_workers(1)
            .with_reliability(ReliableConfig::default())
            .with_degradation();
        let broker = Broker::new(config);
        bencher.iter(|| {
            let pairs = 1_000usize;
            let specs: Vec<_> = synthetic_specs(pairs, FLOWS, ALTS, 1)
                .into_iter()
                .enumerate()
                .map(|(i, spec)| spec.with_faults(faults, 1 + i as u64))
                .collect();
            let run = broker.run_pairs(specs);
            assert_eq!(run.stats.completed + run.stats.degraded, pairs);
            assert_eq!(run.stats.failed, 0);
            run.stats.retransmits
        });
    });
    group.finish();
}

/// The churn driver's steady-state feed, replayed incrementally versus
/// rebuilt from scratch after every event. `replay` drives one pair's
/// seeded 60-event feed (load drift + flow churn, no topology flaps)
/// through [`nexit_sim::churn::ChurnDriver`] — cached gain rows,
/// recycled arenas, warm LP re-entry; `cold_replay` applies the same
/// feed to the logical state only and pays a full cold rebuild (fresh
/// mappers, fresh negotiation, cold LP) per event. `bw_replay` /
/// `bw_cold_replay` are the same pair and feed under the bandwidth
/// objective, where the delta path's win additionally rests on
/// footprint-keyed invalidation (only rows whose links changed
/// utilization class recompute). Both ratios are the delta path's
/// whole-feed win, gated at >= 2x in CI; per-event percentiles live in
/// `experiments churn`.
fn bench_churn(c: &mut Criterion) {
    use nexit_sim::churn::{self, ChurnConfig, ChurnDriver, ChurnPair, LogicalState, Objective};

    let universe = churn::universe();
    let cfg = ChurnConfig::default();
    // Deterministically pick the smallest eligible pair with enough
    // flows that single-flow events stay under the impact threshold:
    // the delta path (not the cold fallback) is what the row prices,
    // and a compact LP keeps per-iteration time CI-friendly.
    let flows_of = |i: usize| {
        let p = &universe.pairs[i];
        universe.isps[p.isp_a.index()].num_pops() * universe.isps[p.isp_b.index()].num_pops()
    };
    let idx = universe
        .eligible_pairs(3, false)
        .into_iter()
        .filter(|&i| flows_of(i) >= 48)
        .min_by_key(|&i| flows_of(i))
        .expect("universe yields an eligible pair with 48+ flows");
    let pair = ChurnPair::build(&universe, idx, 0);
    let initial = churn::initial_active(&pair, 42);
    let trace = churn::generate_trace(&pair, &initial, 60, 42);

    let mut group = c.benchmark_group("churn");
    group.sample_size(10);
    group.bench_function("replay", |bencher| {
        bencher.iter(|| {
            let mut driver = ChurnDriver::new(&pair, initial.clone(), cfg);
            let mut acc = 0u64;
            for event in &trace {
                driver.apply(event);
                acc += driver.last_work();
            }
            acc
        });
    });
    group.bench_function("cold_replay", |bencher| {
        bencher.iter(|| {
            let mut state = LogicalState::new(initial.clone());
            let mut acc = 0u64;
            for event in &trace {
                state.apply(&pair, event.kind);
                let (_, work) = churn::cold_rebuild(&pair, &state, &cfg);
                acc += work;
            }
            acc
        });
    });
    let bw_cfg = ChurnConfig {
        objective: Objective::Bandwidth,
        ..ChurnConfig::default()
    };
    group.bench_function("bw_replay", |bencher| {
        bencher.iter(|| {
            let mut driver = ChurnDriver::new(&pair, initial.clone(), bw_cfg);
            let mut acc = 0u64;
            for event in &trace {
                driver.apply(event);
                acc += driver.last_work();
            }
            acc
        });
    });
    group.bench_function("bw_cold_replay", |bencher| {
        bencher.iter(|| {
            let mut state = LogicalState::new(initial.clone());
            let mut acc = 0u64;
            for event in &trace {
                state.apply(&pair, event.kind);
                let (_, work) = churn::cold_rebuild(&pair, &state, &bw_cfg);
                acc += work;
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_engine,
    bench_scenario_sweep,
    bench_model_grid,
    bench_simplex,
    bench_broker,
    bench_churn
);
criterion_main!(benches);
