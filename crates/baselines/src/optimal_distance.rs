//! Globally optimal distance routing.
//!
//! With the distance metric, flows are independent: the globally optimal
//! routing "uses the interconnection that minimizes the total distance for
//! each flow" (§5.1). No LP needed — a per-flow argmin.

use nexit_routing::{Assignment, PairFlows};
use nexit_topology::IcxId;

/// The assignment minimizing each flow's total end-to-end distance.
/// Ties break to the lower interconnection id, deterministically.
pub fn optimal_distance(flows: &PairFlows) -> Assignment {
    let choices = flows
        .metrics
        .iter()
        .map(|m| {
            let mut best = IcxId::new(0);
            let mut best_km = m.total_km(best);
            for alt in 1..m.num_alternatives() {
                let id = IcxId::new(alt);
                let km = m.total_km(id);
                if km < best_km {
                    best = id;
                    best_km = km;
                }
            }
            best
        })
        .collect();
    Assignment::from_choices(choices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexit_routing::{assignment, ShortestPaths};
    use nexit_topology::{
        GeoPoint, Interconnection, IspId, IspPair, IspTopology, Link, PairView, Pop, PopId,
    };

    fn pop(city: &str, lon: f64) -> Pop {
        Pop {
            city: city.into(),
            geo: GeoPoint::new(0.0, lon),
            weight: 1.0,
        }
    }

    fn line(id: u32, n: usize) -> IspTopology {
        let pops = (0..n).map(|i| pop(&format!("c{i}"), i as f64)).collect();
        let links = (0..n - 1)
            .map(|i| Link {
                a: PopId::new(i),
                b: PopId::new(i + 1),
                weight: 100.0,
                length_km: 100.0,
            })
            .collect();
        IspTopology::new(IspId(id), format!("L{id}"), pops, links, false).unwrap()
    }

    #[test]
    fn picks_total_minimum_per_flow() {
        let a = line(0, 3);
        let b = line(1, 3);
        let pair = IspPair::new(
            &a,
            &b,
            vec![
                Interconnection {
                    pop_a: PopId(0),
                    pop_b: PopId(0),
                    length_km: 0.0,
                },
                Interconnection {
                    pop_a: PopId(2),
                    pop_b: PopId(2),
                    length_km: 0.0,
                },
            ],
        )
        .unwrap();
        let view = PairView::new(&a, &b, &pair);
        let sp_a = ShortestPaths::compute(&a);
        let sp_b = ShortestPaths::compute(&b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let opt = optimal_distance(&flows);
        // Flow a0->b0 (id 0): icx0 total 0 vs icx1 total 400 -> icx0.
        assert_eq!(opt.choice(nexit_routing::FlowId(0)), IcxId(0));
        // Flow a2->b2 (id 8): icx1 total 0.
        assert_eq!(opt.choice(nexit_routing::FlowId(8)), IcxId(1));
        // Flow a0->b2 (id 2): 200 either way; tie -> icx0.
        assert_eq!(opt.choice(nexit_routing::FlowId(2)), IcxId(0));
    }

    #[test]
    fn optimal_never_worse_than_any_assignment() {
        let a = line(0, 4);
        let b = line(1, 4);
        let pair = IspPair::new(
            &a,
            &b,
            vec![
                Interconnection {
                    pop_a: PopId(0),
                    pop_b: PopId(0),
                    length_km: 3.0,
                },
                Interconnection {
                    pop_a: PopId(3),
                    pop_b: PopId(3),
                    length_km: 3.0,
                },
            ],
        )
        .unwrap();
        let view = PairView::new(&a, &b, &pair);
        let sp_a = ShortestPaths::compute(&a);
        let sp_b = ShortestPaths::compute(&b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |s, d| {
            1.0 + (s.index() + d.index()) as f64
        });
        let opt = optimal_distance(&flows);
        let opt_total = assignment::total_distance_km(&flows, &opt);
        for icx in 0..2 {
            let uniform = Assignment::uniform(flows.len(), IcxId::new(icx));
            assert!(opt_total <= assignment::total_distance_km(&flows, &uniform) + 1e-9);
        }
        let early = Assignment::early_exit(&view, &sp_a, &flows);
        assert!(opt_total <= assignment::total_distance_km(&flows, &early) + 1e-9);
    }
}
