//! Baseline and reference routing strategies.
//!
//! Everything the paper's evaluation compares Nexit against:
//!
//! * **default** — early-exit routing (lives in [`nexit_routing::exits`];
//!   re-exported here for discoverability),
//! * [`optimal_distance()`](optimal_distance::optimal_distance) — the globally optimal distance routing: each
//!   flow independently uses the total-distance-minimizing
//!   interconnection (§5.1),
//! * [`optimal_bandwidth()`](optimal_bandwidth::optimal_bandwidth) — the globally optimal overload routing: the
//!   fractional LP that minimizes the maximum post-failure link-load
//!   ratio across both ISPs (§5.2); an upper bound on unsplittable
//!   routing quality, exactly as in the paper. Failure sweeps hold a
//!   [`BandwidthLp`](optimal_bandwidth::BandwidthLp) session instead:
//!   per-scenario skeletons built once, re-solves warm-started,
//! * [`flow_filters`] — the flow-Pareto and flow-both-better strategies
//!   of Figure 5, which discard obviously bad paths per opposite-flow
//!   pair but do not negotiate,
//! * [`grouped`] — negotiation restricted to separate flow groups (the
//!   §5.1 scope-of-negotiation ablation),
//! * [`unilateral`] — upstream-centric optimization without consulting
//!   the downstream (Figure 8).

pub mod flow_filters;
pub mod grouped;
pub mod optimal_bandwidth;
pub mod optimal_distance;
pub mod unilateral;

pub use flow_filters::{flow_both_better, flow_pareto};
pub use grouped::negotiate_in_groups;
pub use optimal_bandwidth::{
    optimal_bandwidth, BandwidthLp, BandwidthOptimum, OptimalBandwidthError,
};
pub use optimal_distance::optimal_distance;
pub use unilateral::unilateral_upstream;
