//! Grouped negotiation (the §5.1 scope-of-optimization ablation).
//!
//! The paper: *"We also experimented with breaking down the set of flows
//! into several groups and negotiating within each group separately. We
//! find that this does not provide as much benefit as negotiating over the
//! entire set."* Each group is a fresh negotiation session — cumulative
//! gains do not carry across groups, so large gains in one group cannot
//! pay for small losses in another, shrinking the space of mutual
//! compromises.
//!
//! ## Setup cost
//!
//! A naive sweep allocates every session structure per group: three
//! preference tables, the gain scratch and the candidate index's heaps
//! and trees, making the sweep's setup O(groups × group-size) fresh
//! allocations (and the index's threshold rows per-group-quadratic in
//! the worst case). This driver instead threads **one**
//! [`nexit_core::TableArena`] through all groups: each session draws its
//! tables and index buffers from the arena and retires them back on
//! completion, so exactly one set of backing buffers is allocated for
//! the whole sweep and every group after the first constructs its
//! machines allocation-free. Decisions are unchanged — the arena
//! recycles capacity, never content (pinned by the decision-identity
//! proptest below).

use nexit_core::{negotiate_in, NegotiationOutcome, NexitConfig, Party, SessionInput, TableArena};
use nexit_routing::Assignment;

/// Negotiate `input`'s flows in `num_groups` separate sessions
/// (round-robin partition by position, preserving determinism) and return
/// the stitched assignment plus each group's outcome.
///
/// All sessions share one arena: the sweep allocates one set of backing
/// tables and index buffers total, regardless of the group count.
pub fn negotiate_in_groups<'b>(
    input: &SessionInput,
    default_assignment: &Assignment,
    party_a: &mut Party<'b>,
    party_b: &mut Party<'b>,
    config: &NexitConfig,
    num_groups: usize,
) -> (Assignment, Vec<NegotiationOutcome>) {
    assert!(num_groups > 0, "need at least one group");
    let mut arena = TableArena::new();
    let mut assignment = default_assignment.clone();
    let mut outcomes = Vec::with_capacity(num_groups);
    for g in 0..num_groups {
        let idx: Vec<usize> = (0..input.len()).filter(|i| i % num_groups == g).collect();
        if idx.is_empty() {
            continue;
        }
        let sub = SessionInput {
            flow_ids: idx.iter().map(|&i| input.flow_ids[i]).collect(),
            defaults: idx.iter().map(|&i| input.defaults[i]).collect(),
            volumes: idx.iter().map(|&i| input.volumes[i]).collect(),
            num_alternatives: input.num_alternatives,
        };
        // Later groups see earlier groups' accepted moves through the
        // evolving assignment (mappers read the expected network state).
        let outcome = negotiate_in(&mut arena, &sub, &assignment, party_a, party_b, config);
        assignment = outcome.assignment.clone();
        outcomes.push(outcome);
    }
    (assignment, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexit_core::{negotiate, GainTable, PreferenceMapper, StopPolicy};
    use nexit_routing::FlowId;
    use nexit_topology::IcxId;

    /// Projects a global gain table onto whatever sub-session is being
    /// negotiated (groups see only their flows' rows).
    struct FixedMapper {
        gains: GainTable,
    }

    impl FixedMapper {
        fn new<R: AsRef<[f64]>>(rows: &[R]) -> Self {
            Self {
                gains: GainTable::from_rows(rows),
            }
        }
    }

    impl PreferenceMapper for FixedMapper {
        fn gains(&mut self, input: &SessionInput, _c: &Assignment, out: &mut GainTable) {
            for (i, f) in input.flow_ids.iter().enumerate() {
                out.row_mut(i).copy_from_slice(self.gains.row(f.index()));
            }
        }
    }

    fn input(n: usize, k: usize) -> SessionInput {
        SessionInput {
            flow_ids: (0..n).map(FlowId::new).collect(),
            defaults: vec![IcxId(0); n],
            volumes: vec![1.0; n],
            num_alternatives: k,
        }
    }

    #[test]
    fn one_group_equals_whole_set() {
        let ga = [[0.0, 10.0], [0.0, -2.0], [0.0, 6.0]];
        let gb = [[0.0, -2.0], [0.0, 10.0], [0.0, 6.0]];
        let inp = input(3, 2);
        let default = Assignment::uniform(3, IcxId(0));
        let config = NexitConfig::default();

        let mut a1 = Party::honest("A", FixedMapper::new(&ga));
        let mut b1 = Party::honest("B", FixedMapper::new(&gb));
        let whole = negotiate(&inp, &default, &mut a1, &mut b1, &config);

        let mut a2 = Party::honest("A", FixedMapper::new(&ga));
        let mut b2 = Party::honest("B", FixedMapper::new(&gb));
        let (grouped, outcomes) = negotiate_in_groups(&inp, &default, &mut a2, &mut b2, &config, 1);
        assert_eq!(grouped.choices(), whole.assignment.choices());
        assert_eq!(outcomes.len(), 1);
    }

    #[test]
    fn splitting_reduces_total_gain_and_can_break_win_win() {
        // Flows 0 and 1 form a trade (A wins big on 0, B wins big on 1,
        // each at a small cost to the other). Negotiating the whole set
        // completes the trade: both sides gain. Split into two
        // single-flow groups, the cross-group compensation disappears —
        // the paper's core claim about the scope of optimization.
        let ga = [[0.0, 10.0], [0.0, -4.0]];
        let gb = [[0.0, -4.0], [0.0, 10.0]];
        let inp = input(2, 2);
        let default = Assignment::uniform(2, IcxId(0));
        let config = NexitConfig {
            stop: StopPolicy::NegotiateAll,
            ..NexitConfig::default()
        };

        // Raw-gain evaluation of an assignment against the tables above.
        let raw = |asg: &Assignment, table: &[[f64; 2]]| -> f64 {
            (0..2)
                .map(|f| table[f][asg.choice(FlowId::new(f)).index()])
                .sum()
        };

        let mut a1 = Party::honest("A", FixedMapper::new(&ga));
        let mut b1 = Party::honest("B", FixedMapper::new(&gb));
        let whole = negotiate(&inp, &default, &mut a1, &mut b1, &config);
        assert_eq!(whole.assignment.choice(FlowId(0)), IcxId(1));
        assert_eq!(whole.assignment.choice(FlowId(1)), IcxId(1));
        let whole_a = raw(&whole.assignment, &ga);
        let whole_b = raw(&whole.assignment, &gb);
        assert!(whole_a > 0.0 && whole_b > 0.0, "whole set is win-win");

        let mut a2 = Party::honest("A", FixedMapper::new(&ga));
        let mut b2 = Party::honest("B", FixedMapper::new(&gb));
        let (grouped, _) = negotiate_in_groups(&inp, &default, &mut a2, &mut b2, &config, 2);
        let grouped_total = raw(&grouped, &ga) + raw(&grouped, &gb);
        assert!(
            grouped_total < whole_a + whole_b,
            "grouped total {grouped_total} must trail whole-set {}",
            whole_a + whole_b
        );
    }

    #[test]
    fn more_groups_than_flows_is_fine() {
        let inp = input(1, 2);
        let default = Assignment::uniform(1, IcxId(0));
        let mut a = Party::honest("A", FixedMapper::new(&[[0.0, 5.0]]));
        let mut b = Party::honest("B", FixedMapper::new(&[[0.0, 5.0]]));
        let (asg, outcomes) =
            negotiate_in_groups(&inp, &default, &mut a, &mut b, &NexitConfig::default(), 5);
        assert_eq!(asg.choice(FlowId(0)), IcxId(1));
        assert_eq!(outcomes.len(), 1, "empty groups are skipped");
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn arb_gains(n: usize, k: usize) -> impl Strategy<Value = GainTable> {
            proptest::collection::vec(proptest::collection::vec(-10.0f64..10.0, k), n).prop_map(
                move |mut rows| {
                    for row in &mut rows {
                        row[0] = 0.0; // default column
                    }
                    GainTable::from_rows(&rows)
                },
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            /// The arena-backed sweep must be **decision-identical** to
            /// running each group through a completely fresh `negotiate`
            /// (fresh machines, fresh tables, fresh index): recycled
            /// buffers may only ever change where bytes live, not what
            /// they say.
            #[test]
            fn arena_sweep_matches_fresh_machines_per_group(
                (n, k, ga, gb) in (2usize..10, 2usize..4).prop_flat_map(|(n, k)| (
                    Just(n),
                    Just(k),
                    arb_gains(n, k),
                    arb_gains(n, k),
                )),
                num_groups in 1usize..5,
                stop_all in 0u8..2,
            ) {
                let inp = input(n, k);
                let default = Assignment::uniform(n, IcxId(0));
                let config = NexitConfig {
                    stop: if stop_all == 1 { StopPolicy::NegotiateAll } else { StopPolicy::Early },
                    ..NexitConfig::default()
                };

                // Arena path (the production sweep).
                let mut a = Party::honest("A", FixedMapper { gains: ga.clone() });
                let mut b = Party::honest("B", FixedMapper { gains: gb.clone() });
                let (swept, swept_outcomes) =
                    negotiate_in_groups(&inp, &default, &mut a, &mut b, &config, num_groups);

                // Reference: fresh machines per group, same partition.
                let mut a = Party::honest("A", FixedMapper { gains: ga });
                let mut b = Party::honest("B", FixedMapper { gains: gb });
                let mut assignment = default.clone();
                let mut fresh_outcomes = Vec::new();
                for g in 0..num_groups {
                    let idx: Vec<usize> =
                        (0..inp.len()).filter(|i| i % num_groups == g).collect();
                    if idx.is_empty() {
                        continue;
                    }
                    let sub = SessionInput {
                        flow_ids: idx.iter().map(|&i| inp.flow_ids[i]).collect(),
                        defaults: idx.iter().map(|&i| inp.defaults[i]).collect(),
                        volumes: idx.iter().map(|&i| inp.volumes[i]).collect(),
                        num_alternatives: inp.num_alternatives,
                    };
                    let outcome = negotiate(&sub, &assignment, &mut a, &mut b, &config);
                    assignment = outcome.assignment.clone();
                    fresh_outcomes.push(outcome);
                }

                prop_assert_eq!(swept.choices(), assignment.choices());
                prop_assert_eq!(swept_outcomes.len(), fresh_outcomes.len());
                for (s, f) in swept_outcomes.iter().zip(&fresh_outcomes) {
                    prop_assert_eq!(s.gain_a, f.gain_a);
                    prop_assert_eq!(s.gain_b, f.gain_b);
                    prop_assert_eq!(&s.transcript, &f.transcript);
                    prop_assert_eq!(s.termination, f.termination);
                }
            }
        }
    }
}
