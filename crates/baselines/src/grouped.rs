//! Grouped negotiation (the §5.1 scope-of-optimization ablation).
//!
//! The paper: *"We also experimented with breaking down the set of flows
//! into several groups and negotiating within each group separately. We
//! find that this does not provide as much benefit as negotiating over the
//! entire set."* Each group is a fresh negotiation session — cumulative
//! gains do not carry across groups, so large gains in one group cannot
//! pay for small losses in another, shrinking the space of mutual
//! compromises.

use nexit_core::{negotiate, NegotiationOutcome, NexitConfig, Party, SessionInput};
use nexit_routing::Assignment;

/// Negotiate `input`'s flows in `num_groups` separate sessions
/// (round-robin partition by position, preserving determinism) and return
/// the stitched assignment plus each group's outcome.
pub fn negotiate_in_groups<'b>(
    input: &SessionInput,
    default_assignment: &Assignment,
    party_a: &mut Party<'b>,
    party_b: &mut Party<'b>,
    config: &NexitConfig,
    num_groups: usize,
) -> (Assignment, Vec<NegotiationOutcome>) {
    assert!(num_groups > 0, "need at least one group");
    let mut assignment = default_assignment.clone();
    let mut outcomes = Vec::with_capacity(num_groups);
    for g in 0..num_groups {
        let idx: Vec<usize> = (0..input.len()).filter(|i| i % num_groups == g).collect();
        if idx.is_empty() {
            continue;
        }
        let sub = SessionInput {
            flow_ids: idx.iter().map(|&i| input.flow_ids[i]).collect(),
            defaults: idx.iter().map(|&i| input.defaults[i]).collect(),
            volumes: idx.iter().map(|&i| input.volumes[i]).collect(),
            num_alternatives: input.num_alternatives,
        };
        // Later groups see earlier groups' accepted moves through the
        // evolving assignment (mappers read the expected network state).
        let outcome = negotiate(&sub, &assignment, party_a, party_b, config);
        assignment = outcome.assignment.clone();
        outcomes.push(outcome);
    }
    (assignment, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexit_core::{PreferenceMapper, StopPolicy};
    use nexit_routing::FlowId;
    use nexit_topology::IcxId;

    struct FixedMapper {
        gains: Vec<Vec<f64>>,
    }

    impl PreferenceMapper for FixedMapper {
        fn gains(&mut self, input: &SessionInput, _c: &Assignment) -> Vec<Vec<f64>> {
            // Project the global gain table onto the session's flows.
            input
                .flow_ids
                .iter()
                .map(|f| self.gains[f.index()].clone())
                .collect()
        }
    }

    fn input(n: usize, k: usize) -> SessionInput {
        SessionInput {
            flow_ids: (0..n).map(FlowId::new).collect(),
            defaults: vec![IcxId(0); n],
            volumes: vec![1.0; n],
            num_alternatives: k,
        }
    }

    #[test]
    fn one_group_equals_whole_set() {
        let ga = vec![vec![0.0, 10.0], vec![0.0, -2.0], vec![0.0, 6.0]];
        let gb = vec![vec![0.0, -2.0], vec![0.0, 10.0], vec![0.0, 6.0]];
        let inp = input(3, 2);
        let default = Assignment::uniform(3, IcxId(0));
        let config = NexitConfig::default();

        let mut a1 = Party::honest("A", FixedMapper { gains: ga.clone() });
        let mut b1 = Party::honest("B", FixedMapper { gains: gb.clone() });
        let whole = negotiate(&inp, &default, &mut a1, &mut b1, &config);

        let mut a2 = Party::honest("A", FixedMapper { gains: ga });
        let mut b2 = Party::honest("B", FixedMapper { gains: gb });
        let (grouped, outcomes) = negotiate_in_groups(&inp, &default, &mut a2, &mut b2, &config, 1);
        assert_eq!(grouped.choices(), whole.assignment.choices());
        assert_eq!(outcomes.len(), 1);
    }

    #[test]
    fn splitting_reduces_total_gain_and_can_break_win_win() {
        // Flows 0 and 1 form a trade (A wins big on 0, B wins big on 1,
        // each at a small cost to the other). Negotiating the whole set
        // completes the trade: both sides gain. Split into two
        // single-flow groups, the cross-group compensation disappears —
        // the paper's core claim about the scope of optimization.
        let ga = vec![vec![0.0, 10.0], vec![0.0, -4.0]];
        let gb = vec![vec![0.0, -4.0], vec![0.0, 10.0]];
        let inp = input(2, 2);
        let default = Assignment::uniform(2, IcxId(0));
        let config = NexitConfig {
            stop: StopPolicy::NegotiateAll,
            ..NexitConfig::default()
        };

        // Raw-gain evaluation of an assignment against the tables above.
        let raw = |asg: &Assignment, table: &[Vec<f64>]| -> f64 {
            (0..2)
                .map(|f| table[f][asg.choice(FlowId::new(f)).index()])
                .sum()
        };

        let mut a1 = Party::honest("A", FixedMapper { gains: ga.clone() });
        let mut b1 = Party::honest("B", FixedMapper { gains: gb.clone() });
        let whole = negotiate(&inp, &default, &mut a1, &mut b1, &config);
        assert_eq!(whole.assignment.choice(FlowId(0)), IcxId(1));
        assert_eq!(whole.assignment.choice(FlowId(1)), IcxId(1));
        let whole_a = raw(&whole.assignment, &ga);
        let whole_b = raw(&whole.assignment, &gb);
        assert!(whole_a > 0.0 && whole_b > 0.0, "whole set is win-win");

        let mut a2 = Party::honest("A", FixedMapper { gains: ga.clone() });
        let mut b2 = Party::honest("B", FixedMapper { gains: gb.clone() });
        let (grouped, _) = negotiate_in_groups(&inp, &default, &mut a2, &mut b2, &config, 2);
        let grouped_total = raw(&grouped, &ga) + raw(&grouped, &gb);
        assert!(
            grouped_total < whole_a + whole_b,
            "grouped total {grouped_total} must trail whole-set {}",
            whole_a + whole_b
        );
    }

    #[test]
    fn more_groups_than_flows_is_fine() {
        let ga = vec![vec![0.0, 5.0]];
        let gb = vec![vec![0.0, 5.0]];
        let inp = input(1, 2);
        let default = Assignment::uniform(1, IcxId(0));
        let mut a = Party::honest("A", FixedMapper { gains: ga });
        let mut b = Party::honest("B", FixedMapper { gains: gb });
        let (asg, outcomes) =
            negotiate_in_groups(&inp, &default, &mut a, &mut b, &NexitConfig::default(), 5);
        assert_eq!(asg.choice(FlowId(0)), IcxId(1));
        assert_eq!(outcomes.len(), 1, "empty groups are skipped");
    }
}
